"""Body locations of the wearable sensor nodes.

The paper's deployment places one energy-harvesting IMU at the chest,
one on the left ankle and one on the right wrist (§III, §IV-A); PAMAP2's
hand sensor is mapped onto the wrist location.
"""

from __future__ import annotations

import enum
from typing import Tuple


class BodyLocation(enum.Enum):
    """Sensor placement on the body."""

    CHEST = "chest"
    LEFT_ANKLE = "left_ankle"
    RIGHT_WRIST = "right_wrist"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def label(self) -> str:
        """Display name matching the paper's figures."""
        return {
            BodyLocation.CHEST: "Chest",
            BodyLocation.LEFT_ANKLE: "Left Ankle",
            BodyLocation.RIGHT_WRIST: "Right Wrist",
        }[self]


#: Deployment order used everywhere (matches Fig. 3's cycle order).
DEPLOYMENT_ORDER: Tuple[BodyLocation, ...] = (
    BodyLocation.CHEST,
    BodyLocation.RIGHT_WRIST,
    BodyLocation.LEFT_ANKLE,
)
