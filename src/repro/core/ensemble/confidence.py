"""The adaptive confidence matrix (paper §III-C).

Confidence of one classification = variance of the softmax output
vector: one-hot (certain) maximizes it, uniform (confused) zeroes it.
The matrix holds, per (sensor, class), the expected confidence of that
sensor when it predicts that class — seeded by averaging over validation
outputs, then adapted online with a moving average as each successful
classification's confidence score arrives from the sensor.  It weights
majority voting and resolves ties.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.model import Sequential
from repro.utils.stats import confidence_from_softmax
from repro.utils.validation import check_fraction


class ConfidenceMatrix:
    """``(sensor, class) -> expected confidence`` with online adaptation.

    Parameters
    ----------
    weights:
        ``{node id: confidence per class}``; every node must cover the
        same number of classes.
    adaptation_alpha:
        Moving-average weight of each new observation (0 freezes the
        matrix, reproducing a *static* confidence-weighted ensemble).
    """

    def __init__(
        self,
        weights: Mapping[int, Sequence[float]],
        *,
        adaptation_alpha: float = 0.05,
        normalize: bool = False,
    ) -> None:
        if not weights:
            raise ConfigurationError("weights must be non-empty")
        check_fraction("adaptation_alpha", adaptation_alpha)
        self.normalize = bool(normalize)
        self._weights: Dict[int, np.ndarray] = {}
        n_classes = None
        for node_id, row in weights.items():
            array = np.asarray(row, dtype=np.float64)
            if array.ndim != 1 or array.size < 2:
                raise ConfigurationError(
                    f"confidence row for node {node_id} must be 1-D with >= 2 classes"
                )
            if np.any(array < 0):
                raise ConfigurationError("confidence values must be >= 0")
            if n_classes is None:
                n_classes = array.size
            elif array.size != n_classes:
                raise ConfigurationError("all nodes must cover the same classes")
            self._weights[int(node_id)] = array.copy()
        self.n_classes = int(n_classes)
        self.adaptation_alpha = float(adaptation_alpha)
        self._updates = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def seed_from_validation(
        cls,
        models: Mapping[int, Sequential],
        validation: Mapping[int, tuple],
        *,
        adaptation_alpha: float = 0.05,
        normalize: bool = False,
        floor: float = 1e-4,
    ) -> "ConfidenceMatrix":
        """Seed from per-node validation data.

        For every node, runs its model on its ``(X, y)`` validation set
        and averages the softmax variance over the samples *predicted*
        as each class (prediction-conditioned, because at run time only
        the predicted class is known).  Classes a node never predicts
        get ``floor``.
        """
        weights = {}
        for node_id, model in models.items():
            if node_id not in validation:
                raise ConfigurationError(f"no validation data for node {node_id}")
            X, _ = validation[node_id]
            probabilities = model.predict_proba(X)
            predicted = probabilities.argmax(axis=1)
            n_classes = probabilities.shape[1]
            row = np.full(n_classes, floor, dtype=np.float64)
            for label in range(n_classes):
                mask = predicted == label
                if mask.any():
                    row[label] = float(
                        np.mean([confidence_from_softmax(p) for p in probabilities[mask]])
                    )
            weights[node_id] = row
        return cls(weights, adaptation_alpha=adaptation_alpha, normalize=normalize)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    @property
    def node_ids(self) -> list:
        """Covered node ids."""
        return sorted(self._weights)

    @property
    def updates(self) -> int:
        """Online updates applied so far."""
        return self._updates

    def weight(self, node_id: int, label: int) -> float:
        """Voting weight of ``node_id`` predicting class ``label``.

        With ``normalize=False`` (the default, and what the paper's
        variance weighting amounts to) this is the raw stored expected
        confidence: a sensor that is genuinely confused about a class —
        a flat softmax, low variance — contributes little weight for it.
        ``normalize=True`` divides by the node's row mean instead, so
        every node contributes ~1 on average (majority-like behavior
        with confidence used for swings and ties).
        """
        try:
            row = self._weights[int(node_id)]
        except KeyError as error:
            raise ConfigurationError(f"unknown node {node_id}") from error
        if not 0 <= label < self.n_classes:
            raise ConfigurationError(f"label {label} out of range")
        if not self.normalize:
            return float(row[label])
        mean = float(row.mean())
        if mean <= 0:
            return 1.0
        return float(row[label]) / mean

    def raw_weight(self, node_id: int, label: int) -> float:
        """Unnormalized stored confidence (what :meth:`update` adapts)."""
        self.weight(node_id, label)  # validates arguments
        return float(self._weights[int(node_id)][label])

    def row(self, node_id: int) -> np.ndarray:
        """Copy of one node's confidence row."""
        self.weight(node_id, 0)  # validates node id
        return self._weights[int(node_id)].copy()

    def as_array(self) -> np.ndarray:
        """``(n_nodes, n_classes)`` matrix, rows ordered by node id."""
        return np.stack([self._weights[node_id] for node_id in self.node_ids])

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------

    def update(self, node_id: int, label: int, confidence: float) -> float:
        """Fold one observed confidence score into the matrix.

        Called after each successful classification with the confidence
        the sensor transmitted alongside its result; returns the new
        *raw* stored value (the same scale as the transmitted variance —
        voting weights remain row-normalized via :meth:`weight`).  A
        zero ``adaptation_alpha`` makes this a no-op.
        """
        # Validate the observation before the lookup, so a bad
        # confidence reports itself instead of an unrelated node error.
        if confidence < 0:
            raise ConfigurationError(f"confidence must be >= 0, got {confidence}")
        current = self.raw_weight(node_id, label)
        if self.adaptation_alpha == 0.0:
            return current
        updated = current + self.adaptation_alpha * (float(confidence) - current)
        self._weights[int(node_id)][label] = updated
        self._updates += 1
        return updated

    def copy(self, *, adaptation_alpha: Optional[float] = None) -> "ConfidenceMatrix":
        """Independent copy (optionally with a different alpha)."""
        alpha = self.adaptation_alpha if adaptation_alpha is None else adaptation_alpha
        return ConfidenceMatrix(
            {node_id: row.copy() for node_id, row in self._weights.items()},
            adaptation_alpha=alpha,
            normalize=self.normalize,
        )
