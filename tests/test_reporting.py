"""Tests for the figure/table renderers."""

import numpy as np
import pytest

from repro.datasets.activities import Activity
from repro.reporting import (
    render_fig1_completion,
    render_fig2_sensor_accuracy,
    render_fig3_schedules,
    render_fig4_aas,
    render_fig5_policies,
    render_fig6_personalization,
    render_table1,
)
from repro.reporting.figures import render_completion_vs_rr
from repro.sim.baselines import BaselineResult
from repro.sim.completion import CompletionStudyResult
from repro.sim.personalization import PersonalizationResult
from repro.sim.results import CompletionBreakdown, ExperimentResult, SlotRecord
from repro.sim.sweep import SweepResult

ACTIVITIES = [Activity.WALKING, Activity.RUNNING]


def make_result(name, labels):
    result = ExperimentResult(policy_name=name, activities=ACTIVITIES)
    for slot, (true, pred) in enumerate(labels):
        result.records.append(
            SlotRecord(slot, true, pred, active_nodes=(0,), completions=1, attempts=1)
        )
    return result


def make_sweep():
    sweep = SweepResult(activities=ACTIVITIES)
    sweep.policies["RR12 Origin"] = make_result(
        "RR12 Origin", [(0, 0), (1, 1), (0, 0), (1, 0)]
    )
    for name in ("Baseline-1", "Baseline-2"):
        sweep.baselines[name] = BaselineResult(
            baseline_name=name,
            activities=ACTIVITIES,
            true_labels=np.array([0, 1, 0, 1]),
            predicted_labels=np.array([0, 1, 1, 1]),
        )
    return sweep


class TestRenderers:
    def test_fig1(self):
        study = CompletionStudyResult(
            naive=CompletionBreakdown(100, 1, 9, 90),
            round_robin=CompletionBreakdown(100, 28, 0, 72),
        )
        text = render_fig1_completion(study)
        assert "naive" in text
        assert "RR3" in text
        assert "90.00%" in text

    def test_fig2(self):
        per_sensor = {
            "Chest": {a: 0.8 for a in ACTIVITIES},
            "Left Ankle": {a: 0.9 for a in ACTIVITIES},
        }
        majority = {a: 0.92 for a in ACTIVITIES}
        text = render_fig2_sensor_accuracy(ACTIVITIES, per_sensor, majority)
        assert "Majority Voting" in text
        assert "Walking" in text

    def test_fig3(self):
        text = render_fig3_schedules([0, 1, 2], (3, 12))
        assert "RR3" in text and "RR12" in text
        assert "No Op" in text

    def test_fig4(self):
        columns = {"RR3": {a: 0.5 for a in ACTIVITIES}}
        overall = {"RR3": 0.5}
        text = render_fig4_aas(ACTIVITIES, columns, overall)
        assert "Fig. 4" in text
        assert "Overall" in text

    def test_fig5(self):
        text = render_fig5_policies("MHEALTH", make_sweep())
        assert "MHEALTH" in text
        assert "Baseline-2" in text

    def test_table1(self):
        text = render_table1(make_sweep())
        assert "vs BL-2" in text
        assert "Average" in text

    def test_fig6(self):
        result = PersonalizationResult(
            checkpoints=[1, 10],
            per_user_accuracy={1000: [0.7, 0.85]},
            base_accuracy=0.82,
        )
        text = render_fig6_personalization(result)
        assert "base" in text
        assert "85.00%" in text

    def test_completion_vs_rr(self):
        text = render_completion_vs_rr({"RR3": 0.3, "RR12": 0.95})
        assert "RR12" in text
