"""The Fig. 6 adaptation study.

The paper tests the adaptive ensemble on "3 different previously unseen
users over 1000 iterations (10000 successful classifications; each
iteration has 10 classifications)", with Gaussian noise (maximum SNR of
20 dB) added to the unseen test data.  Only the confidence matrix
adapts — the DNNs are frozen.  The expected shape: accuracy starts
*below* the base model's (the noise and the unseen gait hurt), then
recovers to base level within ~100 iterations as the matrix
personalizes.

Because the study counts *successful* classifications, it is run at the
ensemble layer (every sensor's result arrives, as on a well-charged
deployment): each iteration draws a short temporally-continuous activity
segment, all three sensors classify each window, Origin's
confidence-weighted vote produces the output, and each sensor's
transmitted confidence updates the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.datasets.markov import MarkovActivityModel
from repro.datasets.noise import add_gaussian_noise_snr
from repro.datasets.synthesis import StyleWobble
from repro.datasets.subjects import SubjectProfile, sample_subjects
from repro.errors import ConfigurationError
from repro.sim.experiment import HARExperiment
from repro.utils.rng import SeedSequenceFactory
from repro.utils.stats import confidence_from_softmax


@dataclass
class PersonalizationResult:
    """Per-user accuracy trajectory over adaptation iterations."""

    checkpoints: List[int]
    per_user_accuracy: Dict[int, List[float]]
    base_accuracy: float

    def user_final_accuracy(self, user_id: int) -> float:
        """Accuracy at the last checkpoint for one user."""
        return self.per_user_accuracy[user_id][-1]

    def user_initial_accuracy(self, user_id: int) -> float:
        """Accuracy at the first checkpoint (before adaptation bites)."""
        return self.per_user_accuracy[user_id][0]

    def summary(self) -> str:
        """Fig. 6-style table of accuracy over iterations."""
        header = "iteration   " + "".join(
            f"{f'user {uid}':>10}" for uid in self.per_user_accuracy
        )
        lines = [header]
        for row, checkpoint in enumerate(self.checkpoints):
            cells = "".join(
                f"{self.per_user_accuracy[uid][row] * 100:9.2f}%"
                for uid in self.per_user_accuracy
            )
            lines.append(f"{checkpoint:<12}{cells}")
        lines.append(f"base model accuracy: {self.base_accuracy * 100:.2f}%")
        return "\n".join(lines)


class PersonalizationExperiment:
    """Adapts one confidence matrix per unseen user and tracks accuracy.

    Parameters
    ----------
    experiment:
        Supplies the dataset, trained (pruned) models and seed matrix.
    snr_db:
        Maximum SNR of the injected Gaussian noise (paper: 20 dB); each
        window draws an SNR at or below this ceiling.
    windows_per_iteration:
        Classifications per iteration (paper: 10).
    checkpoints:
        Iteration indices to report (paper: 1, 10, 100, 1000).
    measure_window_iters:
        Checkpoint accuracy is averaged over this many trailing
        iterations to de-noise the estimate.
    """

    def __init__(
        self,
        experiment: HARExperiment,
        *,
        snr_db: float = 20.0,
        windows_per_iteration: int = 10,
        checkpoints: Sequence[int] = (1, 10, 100, 1000),
        measure_window_iters: int = 10,
    ) -> None:
        if windows_per_iteration < 1:
            raise ConfigurationError("windows_per_iteration must be >= 1")
        if not checkpoints or sorted(checkpoints) != list(checkpoints):
            raise ConfigurationError("checkpoints must be non-empty and ascending")
        self.experiment = experiment
        self.snr_db = float(snr_db)
        self.windows_per_iteration = int(windows_per_iteration)
        self.checkpoints = list(checkpoints)
        self.measure_window_iters = max(int(measure_window_iters), 1)

    # ------------------------------------------------------------------

    def run(
        self,
        *,
        n_users: int = 3,
        seed: int = 0,
        user_variability: float = 2.0,
        adaptive: bool = True,
    ) -> PersonalizationResult:
        """Run the study for ``n_users`` unseen users.

        ``adaptive=False`` freezes the matrix — the ablation showing the
        recovery really comes from adaptation.
        """
        factory = SeedSequenceFactory(seed)
        users = sample_subjects(
            n_users,
            factory.generator("unseen-users"),
            variability=user_variability,
            first_id=1000,
        )
        base_accuracy = self._base_accuracy(factory)
        per_user = {
            user.subject_id: self._run_user(user, factory, adaptive) for user in users
        }
        return PersonalizationResult(
            checkpoints=list(self.checkpoints),
            per_user_accuracy=per_user,
            base_accuracy=base_accuracy,
        )

    # ------------------------------------------------------------------

    def _base_accuracy(self, factory: SeedSequenceFactory, n_windows: int = 400) -> float:
        """The models' claimed accuracy: clean data, known subject.

        This is the reference line of Fig. 6 — the ensemble's accuracy
        before unseen-user variation and sensor noise are introduced.
        """
        bundle = self.experiment.bundle
        dataset = self.experiment.dataset
        spec = dataset.spec
        models = bundle.models(pruned=True)
        matrix = bundle.confidence_matrix.copy(adaptation_alpha=0.0)
        markov = MarkovActivityModel(
            list(spec.activities), window_duration_s=spec.window_duration_s
        )
        rng = factory.generator("base-accuracy")
        subject = (
            dataset.eval_subjects[0] if dataset.eval_subjects else SubjectProfile.canonical()
        )
        labels = markov.sample_labels(n_windows, rng)
        true = np.array([spec.label_of(activity) for activity in labels])
        styles = [StyleWobble.sample(rng) for _ in range(n_windows)]
        votes = {}
        for node_id in sorted(models):
            location = bundle.location_of(node_id)
            batch = np.stack(
                [
                    dataset.synthesizer.window(activity, location, subject, rng, style=style)
                    for activity, style in zip(labels, styles)
                ]
            )
            votes[node_id] = models[node_id].predict_proba(batch)
        correct = 0
        for index in range(n_windows):
            scores = np.zeros(spec.n_classes)
            for node_id in votes:
                probs = votes[node_id][index]
                vote = int(probs.argmax())
                weight = 0.5 * confidence_from_softmax(probs) + 0.5 * matrix.weight(
                    node_id, vote
                )
                scores[vote] += weight
            if int(scores.argmax()) == true[index]:
                correct += 1
        return correct / n_windows

    def _run_user(
        self,
        user: SubjectProfile,
        factory: SeedSequenceFactory,
        adaptive: bool,
    ) -> List[float]:
        bundle = self.experiment.bundle
        dataset = self.experiment.dataset
        spec = dataset.spec
        synthesizer = dataset.synthesizer
        models = bundle.models(pruned=True)
        node_ids = sorted(models)
        locations = {node_id: bundle.location_of(node_id) for node_id in node_ids}

        matrix: ConfidenceMatrix = bundle.confidence_matrix.copy(
            adaptation_alpha=bundle.confidence_matrix.adaptation_alpha if adaptive else 0.0
        )
        markov = MarkovActivityModel(
            list(spec.activities), window_duration_s=spec.window_duration_s
        )
        rng = factory.generator(f"user/{user.subject_id}")

        iteration_accuracy: List[float] = []
        checkpoint_values: List[float] = []
        total_iterations = self.checkpoints[-1]

        for iteration in range(1, total_iterations + 1):
            labels = markov.sample_labels(self.windows_per_iteration, rng)
            true = np.array([spec.label_of(activity) for activity in labels])

            # Shared execution style per window, then per-node batches.
            styles = [
                StyleWobble.sample(rng) for _ in range(self.windows_per_iteration)
            ]
            probabilities = {}
            for node_id in node_ids:
                location = locations[node_id]
                batch = np.stack(
                    [
                        synthesizer.window(activity, location, user, rng, style=style)
                        for activity, style in zip(labels, styles)
                    ]
                )
                snr = self.snr_db - float(rng.uniform(0.0, 6.0))
                batch = add_gaussian_noise_snr(batch, snr, rng)
                probabilities[node_id] = models[node_id].predict_proba(batch)

            correct = 0
            for index in range(self.windows_per_iteration):
                scores = np.zeros(spec.n_classes)
                for node_id in node_ids:
                    probs = probabilities[node_id][index]
                    vote = int(probs.argmax())
                    transmitted = confidence_from_softmax(probs)
                    # Same blended weight Origin's host vote uses.
                    scores[vote] += 0.5 * transmitted + 0.5 * matrix.weight(
                        node_id, vote
                    )
                    matrix.update(node_id, vote, transmitted)
                if int(scores.argmax()) == true[index]:
                    correct += 1
            iteration_accuracy.append(correct / self.windows_per_iteration)

            if iteration in self.checkpoints:
                window = iteration_accuracy[-self.measure_window_iters :]
                checkpoint_values.append(float(np.mean(window)))
        return checkpoint_values
