"""Content-addressed artifact store for trained bundles.

``HARExperiment.standard_mhealth/standard_pamap2`` retrain six
per-location CNNs (~10 s) on every process start, and parallel sweeps
used to pickle the whole experiment into each worker.  This package
makes trained bundles cheap to reuse instead:

``repro.store.keys``
    Content-addressed key derivation: SHA-256 over dataset content
    digests, seed, :class:`~repro.sim.training.TrainingConfig`,
    pruning budget, cost model, per-location architecture
    hyperparameters and the store schema version.
``repro.store.core``
    :class:`ArtifactStore` — atomic temp-dir-and-rename writes,
    per-entry cross-process locks, per-file SHA-256 integrity checks
    (corruption is evicted and treated as a miss), size/age garbage
    collection, ``REPRO_STORE_DIR`` root override and the
    ``REPRO_STORE=off`` kill switch.
``repro.store.bundles``
    Pack/unpack of :class:`~repro.sim.training.TrainedSensorBundle`
    (weight checkpoints via :mod:`repro.nn.serialization` + a JSON
    manifest) and :func:`load_or_train_bundle`, the hit-or-train entry
    point used by ``standard_*`` and the parallel sweep's worker
    rehydration.
``python -m repro.store``
    ``ls`` / ``info`` / ``verify`` / ``gc`` management CLI.

Quickstart::

    from repro.sim import HARExperiment

    exp = HARExperiment.standard_mhealth(seed=7)   # first call trains + publishes
    exp = HARExperiment.standard_mhealth(seed=7)   # later processes rehydrate (~10x faster)
"""

from repro.store.core import (
    ENV_STORE_DIR,
    ENV_STORE_SWITCH,
    ArtifactStore,
    EntryStatus,
    StoreEntry,
    default_store,
    default_store_root,
    store_enabled_by_env,
)
from repro.store.bundles import (
    load_or_train_bundle,
    load_trained_bundle,
    resolve_store,
    save_trained_bundle,
)
from repro.store.keys import (
    KEY_HEX_CHARS,
    STORE_SCHEMA_VERSION,
    dataset_fingerprint,
    trained_bundle_key,
)
from repro.store.locks import FileLock

__all__ = [
    "ENV_STORE_DIR",
    "ENV_STORE_SWITCH",
    "ArtifactStore",
    "EntryStatus",
    "FileLock",
    "KEY_HEX_CHARS",
    "STORE_SCHEMA_VERSION",
    "StoreEntry",
    "dataset_fingerprint",
    "default_store",
    "default_store_root",
    "load_or_train_bundle",
    "load_trained_bundle",
    "resolve_store",
    "save_trained_bundle",
    "store_enabled_by_env",
    "trained_bundle_key",
]
