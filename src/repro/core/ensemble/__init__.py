"""Ensemble aggregation: majority voting and the confidence matrix."""

from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.core.ensemble.voting import MajorityVote, WeightedMajorityVote

__all__ = ["ConfidenceMatrix", "MajorityVote", "WeightedMajorityVote"]
