"""Window bookkeeping helpers.

The whole system is discretized into fixed-length windows: the IMU
buffers one window of samples, then (if scheduled and energized) the node
runs one inference on it.  These helpers convert between continuous time
and window indices.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import check_positive, check_positive_int


def window_count(duration_s: float, window_duration_s: float) -> int:
    """How many whole windows fit in ``duration_s``."""
    check_positive("duration_s", duration_s)
    check_positive("window_duration_s", window_duration_s)
    return int(duration_s // window_duration_s)


def window_start_times(n_windows: int, window_duration_s: float) -> np.ndarray:
    """Start time (seconds) of each of ``n_windows`` windows."""
    check_positive_int("n_windows", n_windows)
    check_positive("window_duration_s", window_duration_s)
    return np.arange(n_windows) * window_duration_s


def window_index_at(time_s: float, window_duration_s: float) -> int:
    """The window index containing time ``time_s`` (>= 0)."""
    check_positive("window_duration_s", window_duration_s)
    if time_s < 0:
        raise ValueError(f"time_s must be >= 0, got {time_s}")
    return int(time_s // window_duration_s)


def slice_windows(samples: np.ndarray, window_size: int, hop: int) -> List[np.ndarray]:
    """Slice a long (channels, time) recording into windows.

    Returns every full window starting at multiples of ``hop``.
    """
    check_positive_int("window_size", window_size)
    check_positive_int("hop", hop)
    if samples.ndim != 2:
        raise ValueError(f"samples must be (channels, time), got shape {samples.shape}")
    total = samples.shape[1]
    return [
        samples[:, start : start + window_size]
        for start in range(0, total - window_size + 1, hop)
    ]
