"""Extended round-robin (ER-r) scheduling.

Fig. 3 of the paper: the basic 3-node round robin (RR3) is stretched by
inserting no-op slots after each node's turn so every node harvests
longer before its next attempt.  The policy is named after the cycle
length: RR3 has no no-ops, RR6 one per node, RR9 two, RR12 three.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.errors import SchedulingError


class ExtendedRoundRobin(SchedulingPolicy):
    """RR-*n* cycle over the deployment's nodes.

    Parameters
    ----------
    node_ids:
        Nodes in cycle order (the paper uses chest, right wrist, left
        ankle).
    noops_per_node:
        No-op slots inserted after each node's turn (0 = plain RR).
    """

    def __init__(self, node_ids: Sequence[int], noops_per_node: int = 0) -> None:
        if not node_ids:
            raise SchedulingError("node_ids must be non-empty")
        if noops_per_node < 0:
            raise SchedulingError(f"noops_per_node must be >= 0, got {noops_per_node}")
        self.node_ids = list(node_ids)
        self.noops_per_node = int(noops_per_node)
        self._cycle: List[Optional[int]] = []
        for node_id in self.node_ids:
            self._cycle.append(node_id)
            self._cycle.extend([None] * self.noops_per_node)
        self.name = f"RR{len(self._cycle)}"

    # ------------------------------------------------------------------

    @classmethod
    def from_rr_length(
        cls, node_ids: Sequence[int], rr_length: int
    ) -> "ExtendedRoundRobin":
        """Build the paper's ``RR{rr_length}`` for these nodes.

        ``rr_length`` must be a multiple of the node count (RR3, RR6,
        RR9, RR12 for three nodes).
        """
        n = len(node_ids)
        if n == 0:
            raise SchedulingError("node_ids must be non-empty")
        if rr_length < n or rr_length % n != 0:
            raise SchedulingError(
                f"rr_length {rr_length} must be a positive multiple of the node "
                f"count {n}"
            )
        return cls(node_ids, noops_per_node=rr_length // n - 1)

    # ------------------------------------------------------------------

    @property
    def cycle_length(self) -> int:
        """Slots per full cycle."""
        return len(self._cycle)

    @property
    def cycle(self) -> List[Optional[int]]:
        """The slot pattern: node id or ``None`` (no-op)."""
        return list(self._cycle)

    def slot_owner(self, slot_index: int) -> Optional[int]:
        """Which node (if any) owns slot ``slot_index``."""
        if slot_index < 0:
            raise SchedulingError(f"slot_index must be >= 0, got {slot_index}")
        return self._cycle[slot_index % len(self._cycle)]

    def is_compute_slot(self, slot_index: int) -> bool:
        """True when some node is scheduled in this slot."""
        return self.slot_owner(slot_index) is not None

    def harvest_slots_per_attempt(self) -> int:
        """Slots a node accumulates between consecutive attempts."""
        return self.cycle_length

    def active_nodes(self, slot_index: int, context: SchedulingContext) -> List[int]:
        owner = self.slot_owner(slot_index)
        return [] if owner is None else [owner]

    def describe(self) -> str:
        """Fig. 3-style rendering of the cycle."""
        cells = [
            "No Op" if owner is None else f"node {owner}" for owner in self._cycle
        ]
        return f"{self.name}: " + " | ".join(cells)
