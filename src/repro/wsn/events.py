"""Minimal discrete-event engine.

The HAR simulation is slot-synchronous, but message delivery, node
wake-ups and trace playback are naturally event-driven; this engine
provides deterministic time ordering for them.  Events at equal times
fire in (priority, insertion order).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


@dataclass(frozen=True, order=True)
class _QueueEntry:
    time_s: float
    priority: int
    sequence: int
    event: "Event" = field(compare=False)


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence."""

    time_s: float
    action: Callable[[], Any]
    label: str = ""
    priority: int = 0


class EventScheduler:
    """Deterministic future-event list."""

    def __init__(self) -> None:
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Events not yet fired."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Events fired so far."""
        return self._processed

    def schedule(
        self,
        time_s: float,
        action: Callable[[], Any],
        *,
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Enqueue ``action`` at absolute time ``time_s`` (>= now)."""
        if time_s < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time_s} (now is {self._now})"
            )
        event = Event(time_s, action, label, priority)
        heapq.heappush(
            self._queue,
            _QueueEntry(time_s, priority, next(self._sequence), event),
        )
        return event

    def schedule_in(self, delay_s: float, action: Callable[[], Any], **kwargs) -> Event:
        """Enqueue ``action`` ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise SimulationError(f"delay_s must be >= 0, got {delay_s}")
        return self.schedule(self._now + delay_s, action, **kwargs)

    def step(self) -> Optional[Event]:
        """Fire the next event; returns it (or None when empty)."""
        if not self._queue:
            return None
        entry = heapq.heappop(self._queue)
        self._now = entry.time_s
        entry.event.action()
        self._processed += 1
        return entry.event

    def run_until(self, time_s: float) -> int:
        """Fire everything scheduled up to and including ``time_s``."""
        fired = 0
        while self._queue and self._queue[0].time_s <= time_s:
            self.step()
            fired += 1
        self._now = max(self._now, time_s)
        return fired

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; guards against runaway self-scheduling."""
        fired = 0
        while self._queue:
            if fired >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            self.step()
            fired += 1
        return fired
