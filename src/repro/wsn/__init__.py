"""Body-area wireless sensor network substrate.

Models the paper's deployment (§IV-A): three energy-harvesting sensor
nodes (IMU + harvester + NVP compute + radio) and a battery-backed host
device (phone) that aggregates classifications.  A small discrete-event
engine underpins time ordering; the HAR experiments drive everything in
fixed scheduling slots (one IMU window per slot).
"""

from repro.wsn.comm import CommLink, Delivery, RadioProfile, TransmitResult
from repro.wsn.events import Event, EventScheduler
from repro.wsn.host import HostDevice, ReceivedVote
from repro.wsn.node import InferenceOutcome, NodeCosts, NodeStats, SensorNode
from repro.wsn.network import BodyAreaNetwork

__all__ = [
    "CommLink",
    "Delivery",
    "TransmitResult",
    "RadioProfile",
    "Event",
    "EventScheduler",
    "HostDevice",
    "ReceivedVote",
    "InferenceOutcome",
    "NodeCosts",
    "NodeStats",
    "SensorNode",
    "BodyAreaNetwork",
]
