"""Measurement-noise injection.

Fig. 6 of the paper perturbs unseen-user test data with Gaussian noise at
"maximum SNR of 20 dB"; :func:`add_gaussian_noise_snr` reproduces exactly
that operation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.stats import signal_power


def add_gaussian_noise_snr(
    windows: np.ndarray,
    snr_db: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Return ``windows`` plus white Gaussian noise at the given SNR.

    The noise power is set per input so that
    ``10*log10(P_signal / P_noise) == snr_db`` for the whole array.
    The input is not modified.

    Parameters
    ----------
    windows:
        Any-shaped float array of signal samples.
    snr_db:
        Target signal-to-noise ratio in decibels (20 dB = noise power
        1% of signal power; lower = noisier).
    """
    array = np.asarray(windows, dtype=np.float64)
    if array.size == 0:
        raise DatasetError("windows must be non-empty")
    if not np.isfinite(snr_db):
        raise DatasetError(f"snr_db must be finite, got {snr_db}")
    rng = as_generator(seed)
    p_signal = signal_power(array)
    p_noise = p_signal / (10.0 ** (snr_db / 10.0))
    noisy = array + rng.normal(0.0, np.sqrt(p_noise), size=array.shape)
    return noisy.astype(windows.dtype if hasattr(windows, "dtype") else np.float32)
