"""Tests for trained-bundle (de)hydration and the simulation wiring.

The expensive guarantees live here: a store hit reproduces a fresh
training run byte for byte, corruption degrades to a rebuild, and the
parallel sweep's worker rehydration matches the sequential sweep
exactly.  Training is kept cheap with a one-epoch recipe on a
module-scoped micro dataset.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.datasets.mhealth import make_mhealth
from repro.errors import ConfigurationError
from repro.obs.observer import Observability
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.sweep import PolicySweep, _BundleRecipe, _worker_bundle
from repro.sim.training import TrainedSensorBundle, TrainingConfig
from repro.store import (
    ENV_STORE_DIR,
    ENV_STORE_SWITCH,
    ArtifactStore,
    load_or_train_bundle,
    load_trained_bundle,
    resolve_store,
    save_trained_bundle,
    trained_bundle_key,
)
from repro.store.core import MANIFEST_NAME

#: One-epoch recipe: fast enough to train several times in this module.
FAST = TrainingConfig(
    epochs=1,
    batch_size=32,
    early_stopping_patience=1,
    finetune_epochs=1,
    final_finetune_epochs=1,
    finetune_every=8,
)
BUDGET_J = 160e-6


@pytest.fixture(scope="module")
def micro_dataset():
    return make_mhealth(
        seed=11,
        train_windows_per_activity=6,
        val_windows_per_activity=4,
        test_windows_per_activity=4,
        n_train_subjects=2,
        n_eval_subjects=1,
    )


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    """Point the default store at a private root for this test."""
    root = str(tmp_path / "store")
    monkeypatch.setenv(ENV_STORE_DIR, root)
    monkeypatch.delenv(ENV_STORE_SWITCH, raising=False)
    return root


def _states_equal(a: TrainedSensorBundle, b: TrainedSensorBundle) -> None:
    assert a.budget_j == b.budget_j
    assert a.cost_model == b.cost_model
    for location in a.dataset.spec.locations:
        ea, eb = a.by_location[location], b.by_location[location]
        assert ea.node_id == eb.node_id
        for key, array in ea.model.state_dict().items():
            assert np.array_equal(array, eb.model.state_dict()[key])
        for key, array in ea.pruned_model.state_dict().items():
            assert np.array_equal(array, eb.pruned_model.state_dict()[key])
        assert ea.inference_energy_j == eb.inference_energy_j
        assert ea.pruned_inference_energy_j == eb.pruned_inference_energy_j
        assert ea.val_accuracy == eb.val_accuracy
        assert ea.pruned_val_accuracy == eb.pruned_val_accuracy
        assert np.array_equal(ea.val_per_class, eb.val_per_class)
        assert np.array_equal(ea.pruned_val_per_class, eb.pruned_val_per_class)
    for label in range(a.dataset.spec.n_classes):
        assert a.rank_table.ranked_nodes(label) == b.rank_table.ranked_nodes(label)
    assert np.array_equal(
        a.confidence_matrix.as_array(), b.confidence_matrix.as_array()
    )
    assert a.confidence_matrix.adaptation_alpha == b.confidence_matrix.adaptation_alpha


def _run_signature(experiment: HARExperiment, policy, seed=3):
    result = experiment.run(policy, seed=seed)
    return (
        [
            (r.true_label, r.predicted_label, r.active_nodes, r.completions)
            for r in result.records
        ],
        result.comm_energy_j,
        result.confidence_updates,
    )


class TestRoundTrip:
    def test_saved_bundle_rehydrates_byte_identical(
        self, tiny_dataset, tiny_bundle, tmp_path
    ):
        store = ArtifactStore(str(tmp_path / "store"))
        key = trained_bundle_key(
            tiny_dataset,
            tiny_bundle.budget_j,
            seed=tiny_bundle.train_seed,
            config=tiny_bundle.train_config,
            cost_model=tiny_bundle.cost_model,
        )
        save_trained_bundle(store, key, tiny_bundle)
        loaded = load_trained_bundle(store, key, tiny_dataset)
        assert loaded is not None
        assert loaded.store_key == key
        assert loaded.train_seed == tiny_bundle.train_seed
        assert loaded.train_config == tiny_bundle.train_config
        _states_equal(tiny_bundle, loaded)
        # Downstream simulation results are byte-identical too.
        config = SimulationConfig(n_windows=40)
        fresh = HARExperiment(tiny_dataset, tiny_bundle, config=config, seed=3)
        hydrated = HARExperiment(tiny_dataset, loaded, config=config, seed=3)
        for policy in (rr_policy(3), origin_policy(3)):
            assert _run_signature(fresh, policy) == _run_signature(hydrated, policy)

    def test_wrong_dataset_payload_is_evicted(
        self, tiny_dataset, tiny_bundle, tmp_path
    ):
        store = ArtifactStore(str(tmp_path / "store"))
        key = "c" * 32
        save_trained_bundle(store, key, tiny_bundle)
        manifest_path = os.path.join(store.entry_path(key), MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["payload"]["dataset"] = "SOMETHING-ELSE"
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        # Checksums still pass (payload files untouched) but the
        # semantic unpack fails → miss + eviction.
        assert load_trained_bundle(store, key, tiny_dataset) is None
        assert not store.contains(key)


class TestLoadOrTrain:
    def test_miss_hit_and_corrupt_rebuild(self, micro_dataset, store_env):
        obs = Observability()
        first = load_or_train_bundle(
            micro_dataset, BUDGET_J, seed=5, config=FAST, obs=obs
        )
        counters = obs.metrics.to_dict()["counters"]
        assert counters["store.miss"] == 1
        assert counters["store.put"] == 1
        assert "store.hit" not in counters
        assert first.store_key is not None
        assert "store.build" in obs.metrics.to_dict()["timers"]

        obs_hit = Observability()
        again = load_or_train_bundle(
            micro_dataset, BUDGET_J, seed=5, config=FAST, obs=obs_hit
        )
        counters = obs_hit.metrics.to_dict()["counters"]
        assert counters["store.hit"] == 1
        assert "store.miss" not in counters
        assert "store.load" in obs_hit.metrics.to_dict()["timers"]
        _states_equal(first, again)

        # Corrupt one checkpoint: next load is a miss that rebuilds.
        store = ArtifactStore(store_env)
        entry = store.get(first.store_key)
        victim = entry.file_path(sorted(entry.manifest["files"])[0])
        with open(victim, "r+b") as handle:
            handle.write(b"\x00" * 64)
        obs_rebuild = Observability()
        rebuilt = load_or_train_bundle(
            micro_dataset, BUDGET_J, seed=5, config=FAST, obs=obs_rebuild
        )
        counters = obs_rebuild.metrics.to_dict()["counters"]
        assert counters["store.corrupt"] == 1
        assert counters["store.miss"] == 1
        assert counters["store.rebuild"] == 1
        _states_equal(first, rebuilt)
        assert store.status(first.store_key).ok  # republished healthy

    def test_disabled_store_bypasses_disk(self, micro_dataset, store_env, monkeypatch):
        monkeypatch.setenv(ENV_STORE_SWITCH, "off")
        assert resolve_store(None) is None
        bundle = load_or_train_bundle(micro_dataset, BUDGET_J, seed=5, config=FAST)
        assert bundle.store_key is None
        assert not os.path.isdir(store_env)

    def test_store_false_bypasses_even_when_enabled(self):
        assert resolve_store(False) is None


class TestSweepRehydration:
    @pytest.fixture
    def stored_experiment(self, tiny_dataset, tiny_bundle, store_env):
        """An experiment whose bundle carries a live store key."""
        store = ArtifactStore(store_env)
        key = trained_bundle_key(
            tiny_dataset,
            tiny_bundle.budget_j,
            seed=tiny_bundle.train_seed,
            config=tiny_bundle.train_config,
            cost_model=tiny_bundle.cost_model,
        )
        save_trained_bundle(store, key, tiny_bundle)
        bundle = load_trained_bundle(store, key, tiny_dataset)
        return HARExperiment(
            tiny_dataset, bundle, config=SimulationConfig(n_windows=30), seed=3
        )

    def test_initargs_prefer_rehydration(self, stored_experiment, monkeypatch):
        sweep = PolicySweep(stored_experiment, n_seeds=2, include_baselines=False)
        experiment, use_cache, key, recipe, _ = sweep._worker_initargs()
        assert key == stored_experiment.bundle.store_key
        assert experiment.bundle is None  # the stub ships without weights
        assert stored_experiment.bundle is not None  # original untouched
        assert recipe.seed == stored_experiment.bundle.train_seed
        assert recipe.config == stored_experiment.bundle.train_config
        # Disabled store → full pickle fallback.
        monkeypatch.setenv(ENV_STORE_SWITCH, "off")
        experiment, _, key, recipe, _ = sweep._worker_initargs()
        assert key is None and recipe is None
        assert experiment.bundle is not None

    def test_initargs_pickle_without_provenance(self, tiny_experiment):
        sweep = PolicySweep(tiny_experiment, n_seeds=1, include_baselines=False)
        experiment, _, key, recipe, _ = sweep._worker_initargs()
        assert key is None and recipe is None
        assert experiment is tiny_experiment
        # Forcing rehydration without a key still falls back safely.
        forced = PolicySweep(
            tiny_experiment, n_seeds=1, include_baselines=False, worker_rehydrate=True
        )
        assert forced._worker_initargs()[2] is None

    def test_parallel_rehydration_matches_sequential(self, stored_experiment):
        policies = [rr_policy(3), origin_policy(3)]
        sweep = PolicySweep(stored_experiment, n_seeds=2, include_baselines=False)
        sequential = sweep.run(policies, workers=1)
        parallel = sweep.run(policies, workers=2)
        for spec in policies:
            a = sequential.policies[spec.name]
            b = parallel.policies[spec.name]
            assert [
                (r.true_label, r.predicted_label, r.active_nodes) for r in a.records
            ] == [(r.true_label, r.predicted_label, r.active_nodes) for r in b.records]
            assert a.comm_energy_j == b.comm_energy_j

    def test_worker_bundle_retrains_on_vanished_entry(self, micro_dataset, store_env):
        trained = load_or_train_bundle(micro_dataset, BUDGET_J, seed=5, config=FAST)
        experiment = HARExperiment(
            micro_dataset, trained, config=SimulationConfig(n_windows=10), seed=3
        )
        recipe = _BundleRecipe(
            budget_j=trained.budget_j,
            seed=trained.train_seed,
            config=trained.train_config,
            cost_model=trained.cost_model,
        )
        ArtifactStore(store_env).invalidate(trained.store_key)
        rebuilt = _worker_bundle(experiment, trained.store_key, recipe)
        _states_equal(trained, rebuilt)

    def test_worker_bundle_without_recipe_fails_loudly(
        self, tiny_experiment, store_env
    ):
        with pytest.raises(ConfigurationError):
            _worker_bundle(tiny_experiment, "d" * 32, None)
