"""Package-surface sanity: public exports resolve and stay consistent."""

import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro.datasets",
    "repro.nn",
    "repro.energy",
    "repro.wsn",
    "repro.core",
    "repro.faults",
    "repro.sim",
    "repro.store",
    "repro.resilience",
    "repro.reporting",
    "repro.utils",
    "repro.errors",
]


class TestPackageSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_error_hierarchy(self):
        from repro.errors import (
            ConfigurationError,
            DatasetError,
            EnergyModelError,
            ModelError,
            ReproError,
            SchedulingError,
            SimulationError,
        )

        for error_type in (
            ConfigurationError,
            DatasetError,
            EnergyModelError,
            ModelError,
            SchedulingError,
            SimulationError,
        ):
            assert issubclass(error_type, ReproError)
        # Catchable as builtin categories too.
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(SimulationError, RuntimeError)

    def test_core_reexports_match_submodules(self):
        from repro.core import OriginPolicy, origin_policy
        from repro.core.policies import OriginPolicy as Direct

        assert OriginPolicy is Direct
        assert OriginPolicy.with_rr(12) == origin_policy(12)

    def test_no_import_cycles_on_fresh_import(self):
        # Re-importing top-level packages should be cheap and safe.
        for module_name in PUBLIC_MODULES:
            importlib.reload(importlib.import_module(module_name))
