"""Tests for the discrete-event engine and the radio cost model."""

import pytest

from repro.errors import SimulationError
from repro.wsn.comm import CommLink, RadioProfile
from repro.wsn.events import EventScheduler


class TestEventScheduler:
    def test_fires_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(2.0, lambda: fired.append("b"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.run_all()
        assert fired == ["a", "b"]

    def test_equal_time_uses_priority_then_fifo(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append("low"), priority=1)
        scheduler.schedule(1.0, lambda: fired.append("hi"), priority=0)
        scheduler.schedule(1.0, lambda: fired.append("low2"), priority=1)
        scheduler.run_all()
        assert fired == ["hi", "low", "low2"]

    def test_now_advances(self):
        scheduler = EventScheduler()
        scheduler.schedule(3.5, lambda: None)
        scheduler.run_all()
        assert scheduler.now_s == 3.5

    def test_schedule_in(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.step()
        event = scheduler.schedule_in(2.0, lambda: None)
        assert event.time_s == 3.0

    def test_past_scheduling_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(5.0, lambda: None)
        scheduler.step()
        with pytest.raises(SimulationError):
            scheduler.schedule(1.0, lambda: None)

    def test_run_until_partial(self):
        scheduler = EventScheduler()
        fired = []
        for t in (1.0, 2.0, 3.0):
            scheduler.schedule(t, lambda t=t: fired.append(t))
        assert scheduler.run_until(2.0) == 2
        assert fired == [1.0, 2.0]
        assert scheduler.pending == 1

    def test_self_scheduling_events(self):
        scheduler = EventScheduler()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5:
                scheduler.schedule_in(1.0, tick)

        scheduler.schedule(0.0, tick)
        scheduler.run_all()
        assert count[0] == 5
        assert scheduler.processed == 5

    def test_runaway_guard(self):
        scheduler = EventScheduler()

        def forever():
            scheduler.schedule_in(1.0, forever)

        scheduler.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            scheduler.run_all(max_events=100)

    def test_step_empty_returns_none(self):
        assert EventScheduler().step() is None

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_in(-1.0, lambda: None)


class TestRadioProfile:
    def test_ble_cheaper_per_message_than_wifi(self):
        ble, wifi = RadioProfile.ble(), RadioProfile.wifi()
        assert CommLink(ble).message_cost_j(8) < CommLink(wifi).message_cost_j(8)

    def test_negative_energy_rejected(self):
        with pytest.raises(Exception):
            RadioProfile("x", -1.0, 0.0, 0.0)


class TestCommLink:
    def test_send_accounts(self):
        link = CommLink(RadioProfile.ble())
        cost = link.send(6)
        assert cost == pytest.approx(1.5e-6 + 6 * 0.25e-6)
        assert link.messages_sent == 1
        assert link.bytes_sent == 6
        assert link.energy_spent_j == pytest.approx(cost)

    def test_cost_linear_in_bytes(self):
        link = CommLink(RadioProfile.ble())
        assert link.message_cost_j(10) > link.message_cost_j(5)

    def test_paper_assumption_messages_are_cheap(self):
        """The paper assumes comm cost negligible: a result message must
        cost far less than one pruned inference (~60 uJ)."""
        link = CommLink(RadioProfile.ble())
        assert link.message_cost_j(6) < 10e-6

    def test_invalid_bytes(self):
        with pytest.raises(Exception):
            CommLink(RadioProfile.ble()).send(0)

    def test_invalid_profile(self):
        with pytest.raises(Exception):
            CommLink("not a profile")
