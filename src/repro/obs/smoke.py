"""Generate a small traced run for CI artifacts and local tinkering.

Usage::

    python -m repro.obs.smoke [--outdir obs-smoke] [--n-windows 60]
        [--seed 3] [--quiet]

Trains a tiny MHEALTH-like bundle, runs the RR3 baseline and Origin-RR3
with a brownout fault under a live :class:`~repro.obs.Observability`,
and writes ``trace.jsonl`` + ``metrics.json`` into ``--outdir`` (then
prints the rendered summarize report, so CI exercises the whole
trace → export → summarize loop in one command).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.datasets.mhealth import make_mhealth
from repro.faults.models import Brownout
from repro.faults.plan import FaultPlan
from repro.obs.observer import Observability
from repro.obs.summarize import render_report
from repro.obs.trace import read_trace
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.training import TrainedSensorBundle, TrainingConfig


def build_smoke_experiment(seed: int, n_windows: int) -> HARExperiment:
    """A tiny but complete experiment (same recipe as the test suite)."""
    dataset = make_mhealth(
        seed=11,
        train_windows_per_activity=14,
        val_windows_per_activity=8,
        test_windows_per_activity=8,
        n_train_subjects=3,
        n_eval_subjects=1,
    )
    bundle = TrainedSensorBundle.train(
        dataset,
        budget_j=160e-6,
        seed=5,
        config=TrainingConfig(
            epochs=6,
            batch_size=16,
            early_stopping_patience=6,
            finetune_epochs=1,
            final_finetune_epochs=2,
            finetune_every=6,
        ),
    )
    return HARExperiment(
        dataset, bundle, config=SimulationConfig(n_windows=n_windows), seed=seed
    )


def run_smoke(
    outdir: Path, *, seed: int = 3, n_windows: int = 60
) -> str:
    """Run the traced smoke and return the rendered report."""
    from repro.core.policies import origin_policy, rr_policy

    experiment = build_smoke_experiment(seed, n_windows)
    obs = Observability()
    # A mid-run brownout on node 0 exercises the fault ledger.
    faults = FaultPlan(
        faults=(
            Brownout(
                node_id=0,
                start_slot=n_windows // 3,
                duration_slots=max(2, n_windows // 10),
            ),
        )
    )
    experiment.run(rr_policy(3), obs=obs)
    experiment.run(origin_policy(3), faults=faults, obs=obs)

    outdir.mkdir(parents=True, exist_ok=True)
    trace_path = outdir / "trace.jsonl"
    metrics_path = outdir / "metrics.json"
    obs.export(
        trace_path=trace_path,
        metrics_path=metrics_path,
        meta={"source": "repro.obs.smoke", "seed": seed, "n_windows": n_windows},
    )
    header, events = read_trace(trace_path)
    return render_report(header, events, metrics=obs.metrics)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--outdir", default="obs-smoke", help="directory for trace.jsonl/metrics.json"
    )
    parser.add_argument("--n-windows", type=int, default=60)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--quiet", action="store_true", help="skip printing the summarize report"
    )
    args = parser.parse_args(argv)

    report = run_smoke(Path(args.outdir), seed=args.seed, n_windows=args.n_windows)
    if not args.quiet:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
