"""Trace schema: event kinds, required payload fields, versioning.

Every trace record is typed — its ``kind`` must be registered here with
the payload fields it is required to carry — and every trace file opens
with a header stamped with :data:`TRACE_SCHEMA_VERSION`.  Consumers
(:mod:`repro.obs.summarize`, external tooling) key on the version, so
the version may only move together with an entry in
:data:`SCHEMA_CHANGELOG`; CI runs :func:`check_schema_changelog` to
enforce that a drift without a changelog entry fails the build.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ObservabilityError

#: Version of the on-disk trace format.  Bump it whenever an event kind
#: is added/removed/renamed or a required payload field changes, and add
#: a matching entry to :data:`SCHEMA_CHANGELOG`.
TRACE_SCHEMA_VERSION: int = 2

#: ``{version: what changed}`` — the schema's append-only history.
SCHEMA_CHANGELOG: Dict[int, str] = {
    1: (
        "initial schema: run lifecycle (run.started/run.finished), "
        "slot.scheduled, window.sensed, nvp.task_started/nvp.burst/"
        "nvp.task_aborted, inference.completed/inference.aborted, "
        "message.sent/message.dropped, vote.cast, confidence.updated, "
        "fault.fired"
    ),
    2: (
        "streaming time-series: timeseries.sample (periodic cumulative "
        "counter/gauge snapshot with per-interval deltas, emitted by "
        "repro.obs.timeline.TimeSeriesRecorder into timeseries.jsonl) "
        "and timeseries.mark (labelled lifecycle points: run/shard "
        "boundaries, retries, checkpoints); v1 trace files remain "
        "readable"
    ),
}

#: ``{kind: required payload field names}``.  An emit with a missing
#: required field (or an unregistered kind) raises, so traces cannot
#: silently drift away from the documented schema.
EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    # run lifecycle
    "run.started": ("policy", "seed", "n_windows", "n_nodes"),
    "run.finished": ("policy", "completions", "decisions"),
    # scheduling
    "slot.scheduled": ("active",),
    # node-side sensing and compute
    "window.sensed": (),
    "nvp.task_started": ("total_work_j",),
    "nvp.burst": ("consumed_j", "progressed_j", "completed"),
    "nvp.task_aborted": ("done_work_j",),
    "inference.completed": ("started_slot", "label", "confidence", "delivered"),
    "inference.aborted": ("reason",),
    # radio link
    "message.sent": ("bytes", "cost_j", "delivered"),
    "message.dropped": (),
    # host-side ensemble
    "vote.cast": ("label", "n_votes"),
    "confidence.updated": ("label", "confidence"),
    # fault machinery
    "fault.fired": ("fault",),
    # streaming time-series (repro.obs.timeline)
    "timeseries.sample": ("t_s", "counters"),
    "timeseries.mark": ("t_s", "label"),
}

#: Kind of the mandatory first record of a JSONL trace file.
HEADER_KIND = "trace.header"


def validate_event(kind: str, payload: Dict[str, object]) -> None:
    """Raise :class:`ObservabilityError` unless the event is well-typed."""
    required = EVENT_KINDS.get(kind)
    if required is None:
        raise ObservabilityError(
            f"unregistered trace event kind {kind!r}; register it in "
            f"repro.obs.schema.EVENT_KINDS (and bump TRACE_SCHEMA_VERSION)"
        )
    missing = [name for name in required if name not in payload]
    if missing:
        raise ObservabilityError(
            f"event {kind!r} is missing required payload fields {missing}"
        )


def check_schema_changelog() -> None:
    """Fail unless the current schema version has a changelog entry.

    Run by CI (and the test suite) so a schema bump cannot land without
    documenting what changed.
    """
    if TRACE_SCHEMA_VERSION not in SCHEMA_CHANGELOG:
        raise ObservabilityError(
            f"TRACE_SCHEMA_VERSION={TRACE_SCHEMA_VERSION} has no entry in "
            f"SCHEMA_CHANGELOG (have {sorted(SCHEMA_CHANGELOG)}); document "
            f"the change before shipping the new schema"
        )
    if max(SCHEMA_CHANGELOG) != TRACE_SCHEMA_VERSION:
        raise ObservabilityError(
            f"SCHEMA_CHANGELOG has entries beyond TRACE_SCHEMA_VERSION="
            f"{TRACE_SCHEMA_VERSION}: {sorted(SCHEMA_CHANGELOG)}"
        )
