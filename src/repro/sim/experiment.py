"""The slot-by-slot EH-WSN HAR simulation.

One scheduling slot = one IMU window (2.56 s by default).  Every slot:

1. the policy's scheduler picks which node (if any) attempts an
   inference, seeing each node's stored energy and readiness;
2. active nodes sense the *current* window and run/resume the inference
   on their NVP with whatever energy their capacitor holds;
3. completed results (label + variance-of-softmax confidence) go to the
   host, which recalls every node's last classification and votes;
4. adaptive runs fold the transmitted confidence into the matrix;
5. the system's output for the slot is compared against ground truth.

The same harness runs every configuration of the paper's ladder (plain
ER-r, AAS, AASR, Origin) — only the :class:`~repro.core.policies.PolicySpec`
changes.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.engine import DecisionEngine, NodeSlotState, make_vote
from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.core.policies import PolicySpec
from repro.datasets.base import HARDataset
from repro.datasets.body import BodyLocation
from repro.datasets.subjects import SubjectProfile
from repro.energy.harvester import Harvester
from repro.energy.nvp import NonVolatileProcessor
from repro.energy.storage import Capacitor
from repro.energy.traces import PowerTraceGenerator
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.obs.observer import NULL_OBS, Observability
from repro.sim.predcache import RunMaterial, build_run_material, default_subject
from repro.sim.results import ExperimentResult, SlotRecord
from repro.sim.training import TrainedSensorBundle, TrainingConfig
from repro.utils.rng import SeedSequenceFactory
from repro.wsn.comm import CommLink, RadioProfile
from repro.wsn.host import HostDevice
from repro.wsn.network import BodyAreaNetwork
from repro.wsn.node import NodeCosts, SensorNode

WindowTransform = Callable[[np.ndarray], np.ndarray]

logger = logging.getLogger(__name__)

#: Calibrated default: uniform RF gain across placements.  The trace
#: generator already injects per-node variation through independent
#: fading (see PowerTraceGenerator.generate_correlated), and the paper's
#: completion operating points were matched with equal gains.  Placement
#: asymmetry (an exposed wrist, a furniture-shadowed ankle) is modelled
#: explicitly instead: statically via ``SimulationConfig.node_gains``,
#: or dynamically with a ``repro.faults.HarvesterDropout`` window.
DEFAULT_NODE_GAINS: Dict[BodyLocation, float] = {
    BodyLocation.CHEST: 1.0,
    BodyLocation.RIGHT_WRIST: 1.0,
    BodyLocation.LEFT_ANKLE: 1.0,
}


@dataclass(frozen=True)
class SimulationConfig:
    """Deployment-level knobs of the EH-WSN simulation."""

    n_windows: int = 600
    #: EH nodes use tiny storage: a couple of inferences' worth.  This
    #: is what makes the scheduling problem real — nodes cannot bank a
    #: whole burst and coast through quiet periods.
    capacitor_capacity_j: float = 100e-6
    capacitor_initial_j: float = 0.0
    capacitor_leakage_w: float = 1e-6
    checkpoint_overhead: float = 0.05
    volatile: bool = False
    use_pruned_models: bool = True
    node_gains: Optional[Dict[BodyLocation, float]] = None
    radio: RadioProfile = field(default_factory=RadioProfile.ble)
    costs: NodeCosts = field(default_factory=NodeCosts)
    max_task_age_slots: Optional[int] = None
    #: Host-side recall expiry: drop remembered votes older than this
    #: many slots (None = the paper's never-expiring recall).
    max_recall_age_slots: Optional[int] = None
    #: Hybrid operation (paper Discussion): a constant battery trickle
    #: added to every node's harvest.  0 = pure energy harvesting.
    battery_supplement_w: float = 0.0
    #: Activity bouts in the deployment scenario last a few minutes
    #: (the catalog's dwell times model lab-protocol bouts; day-to-day
    #: activities persist longer, which is the continuity Origin banks on).
    dwell_scale: float = 3.5
    trace_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_windows < 1:
            raise ConfigurationError(f"n_windows must be >= 1, got {self.n_windows}")
        if self.trace_scale <= 0:
            raise ConfigurationError(f"trace_scale must be positive, got {self.trace_scale}")
        if self.dwell_scale <= 0:
            raise ConfigurationError(f"dwell_scale must be positive, got {self.dwell_scale}")
        if self.battery_supplement_w < 0:
            raise ConfigurationError(
                f"battery_supplement_w must be >= 0, got {self.battery_supplement_w}"
            )

    def gain_for(self, location: BodyLocation) -> float:
        """RF gain at ``location``."""
        gains = self.node_gains or DEFAULT_NODE_GAINS
        return gains.get(location, 1.0)


class HARExperiment:
    """Runs policy specs against one dataset + trained bundle.

    Parameters
    ----------
    dataset / bundle:
        The data and trained models (see :class:`TrainedSensorBundle`).
    trace_generator:
        RF environment; defaults to the calibrated office generator.
    config:
        Deployment knobs.
    seed:
        Root seed; per-run seeds derive from it unless overridden.
    """

    def __init__(
        self,
        dataset: HARDataset,
        bundle: TrainedSensorBundle,
        *,
        trace_generator: Optional[PowerTraceGenerator] = None,
        config: SimulationConfig = SimulationConfig(),
        seed: int = 0,
    ) -> None:
        if bundle.dataset is not dataset:
            # Allow equal-spec bundles trained elsewhere, but catch
            # outright mismatches early.
            if bundle.dataset.spec.name != dataset.spec.name:
                raise ConfigurationError(
                    f"bundle was trained on {bundle.dataset.spec.name}, "
                    f"not {dataset.spec.name}"
                )
        self.dataset = dataset
        self.bundle = bundle
        self.trace_generator = trace_generator or PowerTraceGenerator()
        self.config = config
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def standard_mhealth(
        cls,
        seed: int = 7,
        *,
        config: SimulationConfig = SimulationConfig(),
        training: TrainingConfig = TrainingConfig(),
        store=None,
        obs: Optional[Observability] = None,
    ) -> "HARExperiment":
        """Train-and-build the full MHEALTH setup.

        The first build for a given ``(seed, training)`` trains the six
        CNNs (~10 s) and publishes them to the trained-bundle artifact
        store; later processes rehydrate from disk in a fraction of the
        time with byte-identical results.  ``store`` follows the
        :func:`repro.store.resolve_store` convention (``None`` =
        environment default, ``False`` = always retrain); ``obs``
        accumulates the store hit/miss/build metrics.
        """
        from repro.datasets.mhealth import make_mhealth

        return cls._standard(make_mhealth(seed=seed), seed, config, training, store, obs)

    @classmethod
    def standard_pamap2(
        cls,
        seed: int = 7,
        *,
        config: SimulationConfig = SimulationConfig(),
        training: TrainingConfig = TrainingConfig(),
        store=None,
        obs: Optional[Observability] = None,
    ) -> "HARExperiment":
        """Train-and-build the full PAMAP2 setup (store-backed, see
        :meth:`standard_mhealth`)."""
        from repro.datasets.pamap2 import make_pamap2

        return cls._standard(make_pamap2(seed=seed), seed, config, training, store, obs)

    @classmethod
    def _standard(
        cls, dataset, seed, config, training, store=None, obs=None
    ) -> "HARExperiment":
        generator = PowerTraceGenerator()
        budget = (
            generator.expected_average_power_w()
            * dataset.spec.window_duration_s
            * config.trace_scale
        )
        bundle = TrainedSensorBundle.train_or_load(
            dataset, budget, seed=seed, config=training, store=store, obs=obs
        )
        return cls(
            dataset, bundle, trace_generator=generator, config=config, seed=seed
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_nodes(
        self, factory: SeedSequenceFactory, config: SimulationConfig
    ) -> List[SensorNode]:
        spec = self.dataset.spec
        duration = config.n_windows * spec.window_duration_s
        locations = list(spec.locations)
        gains = [config.gain_for(location) for location in locations]
        traces = self.trace_generator.generate_correlated(
            duration, gains, factory.generator("traces")
        )
        models = self.bundle.models(pruned=config.use_pruned_models)
        energies = self.bundle.inference_energies(pruned=config.use_pruned_models)

        nodes = []
        for location, trace in zip(locations, traces):
            node_id = self.bundle.node_id_of(location)
            nodes.append(
                SensorNode(
                    node_id=node_id,
                    location=location,
                    model=models[node_id],
                    inference_energy_j=energies[node_id],
                    harvester=Harvester(
                        trace.scaled(config.trace_scale),
                        supplemental_w=config.battery_supplement_w,
                    ),
                    capacitor=Capacitor(
                        config.capacitor_capacity_j,
                        config.capacitor_initial_j,
                        config.capacitor_leakage_w,
                    ),
                    nvp=NonVolatileProcessor(
                        config.checkpoint_overhead, volatile=config.volatile
                    ),
                    comm=CommLink(config.radio),
                    costs=config.costs,
                    slot_duration_s=spec.window_duration_s,
                    max_task_age_slots=config.max_task_age_slots,
                )
            )
        return nodes

    def _make_vote(self, spec: PolicySpec, confidence: ConfidenceMatrix):
        # Kept for back-compat: the vote factory moved to the decision
        # core (repro.core.engine.make_vote) with the serving split.
        return make_vote(spec, confidence)

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(
        self,
        policy: PolicySpec,
        *,
        subject: Optional[SubjectProfile] = None,
        seed: Optional[int] = None,
        n_windows: Optional[int] = None,
        confidence_matrix: Optional[ConfidenceMatrix] = None,
        window_transform: Optional[WindowTransform] = None,
        failures: Optional[Dict[int, int]] = None,
        faults: Optional[FaultPlan] = None,
        material: Optional[RunMaterial] = None,
        obs: Optional[Observability] = None,
        kernel: Optional[bool] = None,
    ) -> ExperimentResult:
        """Simulate ``policy`` and return the full result.

        Parameters
        ----------
        subject:
            Whose movement to simulate (defaults to the first held-out
            evaluation subject).
        seed:
            Per-run seed (defaults to the experiment seed).
        n_windows:
            Override the configured slot count.
        confidence_matrix:
            Use (and mutate!) this matrix instead of a fresh copy of the
            bundle's — the personalization study threads one matrix
            through many runs this way.
        window_transform:
            Applied to every sensed window (e.g. Gaussian noise).
        failures:
            Removed.  Passing it raises :class:`TypeError`; build a
            ``faults=FaultPlan.from_failures({node_id: slot})`` plan
            instead.
        faults:
            A :class:`~repro.faults.FaultPlan` of node deaths,
            brownouts, lossy links, harvester shadowing and host
            restarts.  An empty plan reproduces the fault-free run bit
            for bit; a non-empty plan attaches
            :class:`~repro.faults.FaultStats` degradation accounting to
            the result.
        material:
            Precomputed :class:`~repro.sim.predcache.RunMaterial` for
            this exact ``(seed, subject, config)`` — typically served by
            a :class:`~repro.sim.predcache.PredictionCache` so one
            seed's timeline/windows/softmax are shared by every policy
            of a sweep.  ``None`` (the default) builds fresh material
            for this run; either way the run consumes identical arrays,
            so results are byte-identical with and without sharing.
        obs:
            An :class:`~repro.obs.Observability` bundle.  When given,
            the run emits a typed trace (scheduling decisions, NVP
            bursts, inference completions, message drops, votes, fault
            firings), accumulates metrics (slots/attempts/completions,
            joules harvested and spent, recall staleness) and records
            wall-time profiles of the hot paths.  The default is the
            zero-overhead :data:`~repro.obs.NULL_OBS`: untraced runs
            are bit-identical to pre-instrumentation output.
        kernel:
            Route the run through the vectorized
            :mod:`repro.sim.kernel` slot engine.  ``None`` (default)
            and ``True`` take the kernel whenever the run is eligible
            (precomputed softmax, no window transform, no observability,
            no effective faults — see
            :func:`repro.sim.kernel.kernel_eligible`); ineligible runs
            fall back to the scalar loop either way, whose output the
            kernel is byte-identical to.  ``False`` forces the scalar
            path (the bisection/benchmark baseline).
        """
        if failures is not None:
            raise TypeError(
                "HARExperiment.run(failures={node_id: slot}) was removed; "
                "pass faults=FaultPlan.from_failures({node_id: slot}) "
                "(or compose repro.faults.NodeDeath models into a FaultPlan)"
            )
        config = self.config
        if n_windows is not None:
            config = replace(config, n_windows=n_windows)
        run_seed = self.seed if seed is None else int(seed)
        factory = SeedSequenceFactory(run_seed)
        spec = self.dataset.spec
        subject = subject or default_subject(self.dataset)
        obs = obs if obs is not None else NULL_OBS
        trace = obs.tracer
        run_clock_start = time.perf_counter() if obs.enabled else 0.0
        logger.debug(
            "run start: policy=%s seed=%d n_windows=%d", policy.name, run_seed,
            config.n_windows,
        )

        # The policy-independent precompute: timeline, styles, windows
        # and (unless the windows will be transformed) batched softmax
        # outputs.  A caller-provided material is validated, then
        # consumed exactly like a fresh one.
        if material is None:
            material = build_run_material(
                self.dataset,
                self.bundle,
                run_seed,
                n_windows=config.n_windows,
                dwell_scale=config.dwell_scale,
                use_pruned_models=config.use_pruned_models,
                subject=subject,
                with_predictions=window_transform is None,
                obs=obs,
            )
        else:
            material.check_compatible(
                seed=run_seed,
                n_windows=config.n_windows,
                dwell_scale=config.dwell_scale,
                use_pruned_models=config.use_pruned_models,
                subject=subject,
            )
        labels = material.labels

        # Vectorized fast path: when the run needs nothing the kernel
        # cannot model (see repro.sim.kernel's scalar-fallback rules),
        # a batch of one replaces the python slot loop — byte-identical
        # results, measured in BENCH_kernel.json.
        if kernel is not False:
            from repro.sim.kernel import kernel_ineligibility_reason, run_policy_batch

            fallback_reason = kernel_ineligibility_reason(
                material=material,
                window_transform=window_transform,
                faults=faults,
                obs=obs,
            )
            if fallback_reason is None:
                logger.debug(
                    "run via kernel: policy=%s seed=%d", policy.name, run_seed
                )
                return run_policy_batch(
                    self,
                    [policy],
                    run_seed,
                    material=material,
                    subject=subject,
                    config=config,
                    confidence_matrices=[confidence_matrix],
                )[0]
            # A kernel-capable run took the scalar loop: count it, tagged
            # with the blocking feature, so sweeps that quietly lose the
            # vectorized speedup show up in summarize reports.
            if obs.enabled:
                obs.metrics.inc("kernel.fallback")
                obs.metrics.inc(f"kernel.fallback.{fallback_reason}")
            logger.debug(
                "scalar fallback (%s): policy=%s seed=%d",
                fallback_reason, policy.name, run_seed,
            )

        # Network.
        nodes = self._build_nodes(factory, config)
        if obs.enabled:
            for node in nodes:
                node.attach_obs(obs)
        if confidence_matrix is not None:
            confidence = confidence_matrix
        else:
            alpha = (
                self.bundle.confidence_matrix.adaptation_alpha
                if policy.adaptive_confidence
                else 0.0
            )
            confidence = self.bundle.confidence_matrix.copy(adaptation_alpha=alpha)
        # The shared decision core: scheduler + host recall/vote +
        # confidence adaptation (also what repro.serve sessions run).
        core = DecisionEngine(
            policy,
            [node.node_id for node in nodes],
            self.bundle.rank_table,
            confidence,
            max_recall_age_slots=config.max_recall_age_slots,
            staleness_half_life_slots=(
                faults.recall_staleness_half_life_slots if faults is not None else None
            ),
            obs=obs,
        )
        host = core.host
        network = BodyAreaNetwork(nodes, host)

        # Compile the fault plan into this run's engine and install the
        # per-node hooks.  An empty plan leaves everything untouched, so
        # the fault-free path (and its RNG streams) is bit-identical.
        engine = None
        unresponsive_after = None
        if faults is not None:
            unresponsive_after = faults.unresponsive_after_slots
            if faults.faults:
                engine = faults.compile(
                    node_ids=[node.node_id for node in nodes],
                    n_slots=config.n_windows,
                    n_classes=len(spec.activities),
                    rng=(
                        factory.generator("faults")
                        if faults.has_link_faults
                        else None
                    ),
                )
                for node in nodes:
                    node.comm.delivery_hook = engine.link_hook(node.node_id)
                    node.harvest_gate = engine.harvest_gate(node.node_id)
                if obs.enabled:
                    engine.obs = obs
                logger.debug(
                    "fault engine compiled: %d fault(s) over %d slots",
                    len(faults.faults), config.n_windows,
                )
        # Cached softmax consumption: a transform changes the sensed
        # window after synthesis, so transformed runs fall back to the
        # node's own per-window inference.
        if material.probabilities is not None and window_transform is None:
            for node in nodes:
                node.prediction_cache = material.probabilities[node.node_id]
        elif window_transform is not None:
            logger.debug(
                "window transform active: falling back to per-slot model "
                "inference (no batched softmax reuse)"
            )

        if trace.enabled:
            trace.emit(
                "run.started",
                policy=policy.name,
                seed=run_seed,
                n_windows=config.n_windows,
                n_nodes=len(nodes),
            )
        result = ExperimentResult(policy_name=policy.name, activities=list(spec.activities))
        nodes_by_id = {node.node_id: node for node in nodes}

        for slot in range(config.n_windows):
            if engine is not None:
                engine.begin_slot(slot, nodes_by_id, host)
            online = {
                n.node_id: (engine is None or engine.node_online(n.node_id))
                for n in nodes
            }
            responsive: Dict[int, bool] = {}
            if engine is not None or unresponsive_after is not None:
                for n in nodes:
                    flag = online[n.node_id]
                    if flag and unresponsive_after is not None:
                        flag = host.quiet_slots(n.node_id, slot) <= unresponsive_after
                    responsive[n.node_id] = flag

            true_label = spec.label_of(labels[slot])
            states = {
                n.node_id: NodeSlotState(
                    energy_j=n.stored_energy_j,
                    ready=n.can_start_inference(),
                    online=online[n.node_id],
                )
                for n in nodes
            }
            active = core.begin_slot(slot, states, node_responsive=responsive)

            windows: Dict[int, np.ndarray] = {}
            for node_id in active:
                window = material.windows[node_id][slot]
                if window_transform is not None:
                    window = window_transform(window)
                windows[node_id] = window

            outcomes = network.step_slot(
                slot,
                active,
                windows,
                offline_node_ids=[
                    node_id for node_id, up in online.items() if not up
                ],
            )

            final = core.finish_slot(
                slot,
                outcomes,
                on_completion=(
                    (lambda o: engine.note_completion(o.node_id, slot))
                    if engine is not None
                    else None
                ),
            )
            result.records.append(
                SlotRecord(
                    slot_index=slot,
                    true_label=true_label,
                    predicted_label=final,
                    active_nodes=tuple(active),
                    completions=sum(1 for o in outcomes if o.completed),
                    attempts=len(outcomes),
                    dropped_messages=sum(
                        1 for o in outcomes if o.completed and not o.delivered
                    ),
                )
            )

        result.node_stats = {node.node_id: node.stats for node in nodes}
        result.comm_energy_j = sum(node.comm.energy_spent_j for node in nodes)
        result.confidence_updates = core.confidence_updates
        if engine is not None:
            result.fault_stats = engine.finalize(nodes)
        if obs.enabled:
            self._account_run_metrics(obs, result, nodes, host)
            if trace.enabled:
                trace.emit(
                    "run.finished",
                    policy=policy.name,
                    completions=result.total_completions,
                    decisions=host.decisions_made,
                )
            obs.metrics.timer("experiment.run").record(
                time.perf_counter() - run_clock_start
            )
        logger.debug(
            "run done: policy=%s seed=%d completions=%d/%d", policy.name, run_seed,
            result.total_completions, result.total_attempts,
        )
        return result

    @staticmethod
    def _account_run_metrics(
        obs: Observability,
        result: ExperimentResult,
        nodes: List[SensorNode],
        host: HostDevice,
    ) -> None:
        """Fold one run's counters into the metrics registry.

        Everything here is a pure function of the simulated run, so
        sequential and parallel sweeps merge to identical values (the
        determinism contract of :mod:`repro.obs.metrics`).
        """
        metrics = obs.metrics
        attempts = completions = dropped = correct = 0
        for record in result.records:  # one pass over the run's records
            attempts += record.attempts
            completions += record.completions
            dropped += record.dropped_messages
            correct += record.predicted_label == record.true_label
        metrics.inc("sim.runs")
        metrics.inc("sim.slots", result.n_slots)
        metrics.inc("sim.attempts", attempts)
        metrics.inc("sim.completions", completions)
        metrics.inc("sim.messages_dropped", dropped)
        metrics.inc("sim.confidence_updates", result.confidence_updates)
        metrics.inc("sim.decisions", host.decisions_made)
        metrics.inc("sim.messages_received", host.messages_received)
        metrics.inc("sim.correct_slots", correct)
        metrics.inc("sim.comm_energy_j", result.comm_energy_j)
        for node in nodes:
            stats = node.stats
            prefix = f"node.{node.node_id}"
            metrics.inc(f"{prefix}.slots", stats.slots)
            metrics.inc(f"{prefix}.active_slots", stats.active_slots)
            metrics.inc(f"{prefix}.attempts_started", stats.attempts_started)
            metrics.inc(f"{prefix}.completions", stats.completions)
            metrics.inc(f"{prefix}.failed_active_slots", stats.failed_active_slots)
            metrics.inc(f"{prefix}.harvested_j", stats.harvested_j)
            metrics.inc(f"{prefix}.consumed_j", stats.consumed_j)
            metrics.inc(f"{prefix}.comm_j", stats.comm_j)
            metrics.inc(f"{prefix}.leaked_j", stats.leaked_j)
