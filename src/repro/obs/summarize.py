"""Render a per-run report from a JSONL trace (+ optional metrics).

Usage::

    python -m repro.obs.summarize trace.jsonl [--metrics metrics.json]
        [--run N] [--width 100] [--output report.txt]
        [--fleet-journal fleet.journal] [--timeseries timeseries.jsonl]

The report shows, per run in the trace: a per-node slot timeline (who
was scheduled, who completed, where messages were dropped, where faults
fired), the host's vote row, the fault ledger, and — when a metrics
snapshot is given — the top wall-time timers and headline counters.

``--fleet-journal`` adds a fleet progress/aggregate line read from a
fleet run's shard journal, and ``--timeseries`` a stream summary from a
:mod:`repro.obs.timeline` recording; with either (or ``--metrics``) the
trace argument is optional — ``summarize`` then reports on the run
artifacts alone.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, read_trace

#: Timeline glyphs, in increasing display priority: a slot shows the
#: highest-priority thing that happened to the node in it.
_GLYPHS = (
    (".", "idle"),
    ("a", "active (burst, no completion)"),
    ("x", "inference aborted"),
    ("C", "inference completed"),
    ("d", "result message dropped"),
    ("!", "fault fired"),
)
_PRIORITY = {glyph: rank for rank, (glyph, _) in enumerate(_GLYPHS)}

_EVENT_GLYPH = {
    "window.sensed": "a",
    "nvp.burst": "a",
    "inference.aborted": "x",
    "inference.completed": "C",
    "message.dropped": "d",
    "fault.fired": "!",
}


def split_runs(events: Sequence[TraceEvent]) -> List[List[TraceEvent]]:
    """Partition a trace into runs at ``run.started`` boundaries.

    Events before the first ``run.started`` (if any) are attached to the
    first run.
    """
    runs: List[List[TraceEvent]] = []
    current: List[TraceEvent] = []
    for event in events:
        if event.kind == "run.started" and current:
            runs.append(current)
            current = []
        current.append(event)
    if current:
        runs.append(current)
    return runs


def _run_header(run_events: Sequence[TraceEvent]) -> Dict[str, Any]:
    for event in run_events:
        if event.kind == "run.started":
            return dict(event.payload)
    return {}


def _timeline_rows(
    run_events: Sequence[TraceEvent], n_slots: int, width: int
) -> List[str]:
    """Per-node (plus host-vote) timeline strips, downsampled to width."""
    node_ids = sorted(
        {e.node_id for e in run_events if e.node_id is not None}
    )
    grid: Dict[int, List[str]] = {nid: ["."] * n_slots for nid in node_ids}
    votes = [" "] * n_slots
    for event in run_events:
        if event.slot is None or not (0 <= event.slot < n_slots):
            continue
        if event.kind == "vote.cast":
            votes[event.slot] = "V"
            continue
        glyph = _EVENT_GLYPH.get(event.kind)
        if glyph is None or event.node_id is None:
            continue
        row = grid[event.node_id]
        if _PRIORITY[glyph] > _PRIORITY[row[event.slot]]:
            row[event.slot] = glyph

    def compress(cells: List[str]) -> str:
        if n_slots <= width:
            return "".join(cells)
        # Downsample: each output column shows the highest-priority
        # glyph of its slot bucket.
        out = []
        for col in range(width):
            lo = col * n_slots // width
            hi = max(lo + 1, (col + 1) * n_slots // width)
            bucket = cells[lo:hi]
            out.append(max(bucket, key=lambda c: _PRIORITY.get(c, -1)))
        return "".join(out)

    rows = [f"  node {nid:<3d} |{compress(grid[nid])}|" for nid in node_ids]
    if any(cell != " " for cell in votes):
        rows.append(f"  host     |{compress(votes)}|")
    return rows


def _fault_ledger(run_events: Sequence[TraceEvent]) -> List[str]:
    lines = []
    for event in run_events:
        if event.kind != "fault.fired":
            continue
        where = f"node {event.node_id}" if event.node_id is not None else "host"
        lines.append(
            f"  slot {event.slot:>5}  {where:<8}  {event.payload.get('fault')}"
        )
    return lines


def _store_line(exported: Dict[str, Any]) -> Optional[str]:
    """One-line artifact-store summary, or ``None`` if no store traffic."""
    counters = exported["counters"]
    hits = int(counters.get("store.hit", 0))
    misses = int(counters.get("store.miss", 0))
    if not hits and not misses:
        return None
    parts = [f"artifact store: {hits} hit(s), {misses} miss(es)"]
    rebuilds = int(counters.get("store.rebuild", 0))
    if rebuilds:
        parts.append(f"{rebuilds} corrupt rebuild(s)")
    timers = exported["timers"]
    for timer_name, label in (("store.load", "load"), ("store.build", "build")):
        stat = timers.get(timer_name)
        if stat and stat["calls"]:
            parts.append(f"{label} {stat['total_s']:.2f} s")
    return ", ".join(parts)


def _resilience_line(exported: Dict[str, Any]) -> Optional[str]:
    """One-line supervision summary, or ``None`` for an incident-free run."""
    counters = exported["counters"]
    parts = []
    for name, label in (
        ("resilience.crashes", "crash(es)"),
        ("resilience.timeouts", "timeout(s)"),
        ("resilience.task_errors", "task error(s)"),
        ("resilience.retries", "retry(ies)"),
        ("resilience.requeued", "requeue(s)"),
        ("resilience.pool_restarts", "pool restart(s)"),
        ("resilience.giveups", "giveup(s)"),
        ("resilience.journal.hit", "journal hit(s)"),
    ):
        value = int(counters.get(name, 0))
        if value:
            parts.append(f"{value} {label}")
    if not parts:
        return None
    return "resilience: " + ", ".join(parts)


def _kernel_line(exported: Dict[str, Any]) -> Optional[str]:
    """One-line scalar-fallback summary, or ``None`` if the kernel took
    every eligible run.

    ``kernel.fallback`` counts kernel-capable runs that fell back to
    the scalar slot loop; the reason-tagged children say why (tracing /
    window transform / missing softmax / fault plan) so a sweep that
    quietly lost the vectorized speedup is visible here.
    """
    counters = exported["counters"]
    total = int(counters.get("kernel.fallback", 0))
    if not total:
        return None
    prefix = "kernel.fallback."
    reasons = ", ".join(
        f"{int(value)} {name[len(prefix):]}"
        for name, value in sorted(counters.items())
        if name.startswith(prefix) and int(value)
    )
    line = f"kernel: {total} scalar fallback(s)"
    return f"{line} ({reasons})" if reasons else line


def _fleet_line(exported: Dict[str, Any]) -> Optional[str]:
    """One-line fleet summary, or ``None`` if no fleet ran."""
    counters = exported["counters"]
    users = int(counters.get("fleet.users", 0))
    shards = int(counters.get("fleet.shards", 0))
    if not users and not shards:
        return None
    parts = [f"fleet: {users} user(s) over {shards} shard(s)"]
    hits = int(counters.get("fleet.journal.hit", 0))
    if hits:
        parts.append(f"{hits} journal hit(s)")
    lost = int(counters.get("fleet.failed_shards", 0))
    if lost:
        parts.append(f"{lost} failed shard(s)")
    timer = exported["timers"].get("fleet.run")
    if timer and timer["total_s"] > 0:
        parts.append(f"{users / timer['total_s']:,.0f} users/s")
    return ", ".join(parts)


def fleet_journal_lines(path: str) -> List[str]:
    """Fleet progress read straight from a shard journal (read-only).

    Works mid-flight: the journal is parsed tolerantly (torn tails
    skipped), so this is also the watcher's progress source.
    """
    from repro.obs.watch import _read_journal_cells, _shard_span

    cells = _read_journal_cells(path)
    spans = [span for span in map(_shard_span, cells) if span is not None]
    users = sum(hi - lo for lo, hi in spans)
    lines = [
        f"fleet journal: {len(spans)} shard(s) checkpointed, {users} user(s)"
    ]
    other = len(cells) - len(spans)
    if other:
        lines.append(f"  plus {other} non-shard cell(s) (sweep journal?)")
    return lines


def timeseries_lines(path: str) -> List[str]:
    """Summary of a :mod:`repro.obs.timeline` stream."""
    from repro.obs.timeline import _rate_from_samples, read_timeseries

    header, samples, marks = read_timeseries(path)
    span = float(samples[-1]["t_s"]) - float(samples[0]["t_s"]) if samples else 0.0
    lines = [
        f"timeseries: {len(samples)} sample(s), {len(marks)} mark(s) "
        f"over {span:.1f} s"
    ]
    if samples:
        final = samples[-1]["counters"]
        for name, label in (
            ("fleet.progress.users", "users/s"),
            ("sweep.progress.cells", "cells/s"),
        ):
            if name in final:
                rate = _rate_from_samples(samples, name)
                lines.append(f"  {name}: {final[name]:g} total, {rate:.1f} {label}")
    for mark in marks[-3:]:
        lines.append(f"  mark {mark['t_s']:.1f}s: {mark['label']}")
    return lines


def _metrics_section(metrics: MetricsRegistry, top: int = 10) -> List[str]:
    exported = metrics.to_dict()
    lines: List[str] = []
    store = _store_line(exported)
    if store is not None:
        lines.append(store)
    resilience = _resilience_line(exported)
    if resilience is not None:
        lines.append(resilience)
    kernel = _kernel_line(exported)
    if kernel is not None:
        lines.append(kernel)
    fleet = _fleet_line(exported)
    if fleet is not None:
        lines.append(fleet)
    timers = exported["timers"]
    if timers:
        lines.append("top timers (by total wall time):")
        ranked = sorted(timers.items(), key=lambda kv: -kv[1]["total_s"])[:top]
        for name, stat in ranked:
            mean_ms = stat["total_s"] / stat["calls"] * 1e3 if stat["calls"] else 0.0
            lines.append(
                f"  {name:<28} {stat['calls']:>8} calls  "
                f"{stat['total_s']:>9.3f} s total  {mean_ms:>8.3f} ms/call"
            )
    counters = exported["counters"]
    headline = {
        name: value
        for name, value in counters.items()
        if name.startswith(("sim.", "faults.", "store.", "resilience.", "kernel.", "fleet."))
    }
    if headline:
        lines.append("counters:")
        for name, value in headline.items():
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<28} {rendered}")
    histograms = exported["histograms"]
    if histograms:
        lines.append("histograms:")
        for name, spec in histograms.items():
            lines.append(
                f"  {name:<28} n={spec['count']} mean="
                f"{(spec['total'] / spec['count']) if spec['count'] else 0.0:.2f} "
                f"min={spec['min']} max={spec['max']}"
            )
    return lines


def render_report(
    header: Dict[str, Any],
    events: Sequence[TraceEvent],
    *,
    metrics: Optional[MetricsRegistry] = None,
    run_index: Optional[int] = None,
    width: int = 100,
) -> str:
    """The full text report for one trace."""
    lines = [
        f"trace report — schema v{header.get('schema_version')}, "
        f"{len(events)} events"
    ]
    meta = header.get("meta") or {}
    if meta:
        lines.append("meta: " + json.dumps(meta, sort_keys=True))

    runs = split_runs(list(events))
    if runs:
        lines.append("")
        lines.append(f"runs in trace: {len(runs)}")
        for index, run_events in enumerate(runs):
            info = _run_header(run_events)
            lines.append(
                f"  #{index}  policy={info.get('policy', '?'):<14} "
                f"seed={info.get('seed', '?')}  "
                f"n_windows={info.get('n_windows', '?')}"
            )
        selected = range(len(runs)) if run_index is None else [run_index]
        for index in selected:
            if not 0 <= index < len(runs):
                raise IndexError(
                    f"trace has {len(runs)} run(s); --run {index} is out of range"
                )
            run_events = runs[index]
            info = _run_header(run_events)
            n_slots = int(info.get("n_windows") or 0)
            if not n_slots:
                n_slots = 1 + max(
                    (e.slot for e in run_events if e.slot is not None), default=0
                )
            lines.append("")
            lines.append(
                f"run #{index}: {info.get('policy', '?')} "
                f"(seed {info.get('seed', '?')}, {n_slots} slots)"
            )
            lines.extend(_timeline_rows(run_events, n_slots, width))
            lines.append(
                "  legend: "
                + "  ".join(f"{glyph}={label}" for glyph, label in _GLYPHS[1:])
                + "  V=vote cast"
            )
            ledger = _fault_ledger(run_events)
            if ledger:
                lines.append("fault ledger:")
                lines.extend(ledger)
    else:
        lines.append("(no events)")

    if metrics is not None:
        lines.append("")
        lines.extend(_metrics_section(metrics))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="JSONL trace written by Tracer.write_jsonl (optional with "
        "--metrics/--fleet-journal/--timeseries)",
    )
    parser.add_argument(
        "--metrics", default=None, help="metrics snapshot JSON (Observability.export)"
    )
    parser.add_argument(
        "--run", type=int, default=None, help="render only this run's timeline"
    )
    parser.add_argument("--width", type=int, default=100, help="timeline columns")
    parser.add_argument(
        "--fleet-journal", default=None, help="fleet shard journal to report on"
    )
    parser.add_argument(
        "--timeseries", default=None, help="timeseries.jsonl stream to report on"
    )
    parser.add_argument(
        "--output", default=None, help="also write the report to this file"
    )
    args = parser.parse_args(argv)
    if args.trace is None and not (
        args.metrics or args.fleet_journal or args.timeseries
    ):
        parser.error(
            "give a trace, or at least one of "
            "--metrics/--fleet-journal/--timeseries"
        )

    metrics = None
    if args.metrics is not None:
        with open(args.metrics) as handle:
            metrics = MetricsRegistry.from_dict(json.load(handle))
    sections: List[str] = []
    if args.trace is not None:
        header, events = read_trace(args.trace)
        sections.append(
            render_report(
                header, events, metrics=metrics, run_index=args.run,
                width=args.width,
            )
        )
    elif metrics is not None:
        sections.append("metrics report\n" + "\n".join(_metrics_section(metrics)))
    if args.fleet_journal is not None:
        sections.append("\n".join(fleet_journal_lines(args.fleet_journal)))
    if args.timeseries is not None:
        sections.append("\n".join(timeseries_lines(args.timeseries)))
    report = "\n\n".join(sections)
    print(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
