"""Model training + table seeding for one dataset.

Produces everything the scheduling/ensemble layers consume:

* one trained CNN per body location (Baseline-1),
* its energy-aware pruned counterpart fine-tuned to the harvested-power
  budget (Baseline-2, which Origin also deploys),
* the per-activity :class:`~repro.core.scheduling.rank_table.RankTable`
  (from the *pruned* models' validation accuracy — those are the models
  that actually run on the nodes), and
* the seeded :class:`~repro.core.ensemble.confidence.ConfidenceMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.core.scheduling.rank_table import RankTable
from repro.datasets.base import HARDataset
from repro.datasets.body import BodyLocation
from repro.errors import ConfigurationError
from repro.nn.architectures import build_har_cnn, har_architecture_for
from repro.nn.energy_model import EnergyCostModel, estimate_inference_energy
from repro.nn.metrics import accuracy, per_class_accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.pruning import EnergyAwarePruner, PruningResult
from repro.nn.training import Trainer
from repro.utils.rng import SeedSequenceFactory


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters for per-location training and pruning."""

    epochs: int = 60
    batch_size: int = 32
    learning_rate: float = 1.2e-3
    early_stopping_patience: int = 12
    finetune_epochs: int = 4
    final_finetune_epochs: int = 6
    finetune_every: int = 4
    finetune_lr: float = 5e-4
    adaptation_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ConfigurationError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0 or self.finetune_lr <= 0:
            raise ConfigurationError("learning rates must be positive")


@dataclass
class TrainedLocationModel:
    """Everything trained for one body location."""

    location: BodyLocation
    node_id: int
    model: Sequential  # unpruned (Baseline-1)
    pruned_model: Sequential  # energy-aware pruned (Baseline-2 / Origin)
    inference_energy_j: float
    pruned_inference_energy_j: float
    val_accuracy: float
    pruned_val_accuracy: float
    val_per_class: np.ndarray
    pruned_val_per_class: np.ndarray
    pruning: Optional[PruningResult] = None


class TrainedSensorBundle:
    """All per-location models and seeded tables for one dataset.

    Build with :meth:`train`; node ids follow the dataset's location
    order (chest=0, right wrist=1, left ankle=2 by default).
    """

    def __init__(
        self,
        dataset: HARDataset,
        by_location: Dict[BodyLocation, TrainedLocationModel],
        rank_table: RankTable,
        confidence_matrix: ConfidenceMatrix,
        cost_model: EnergyCostModel,
        budget_j: float,
    ) -> None:
        self.dataset = dataset
        self.by_location = by_location
        self.rank_table = rank_table
        self.confidence_matrix = confidence_matrix
        self.cost_model = cost_model
        self.budget_j = budget_j
        #: Artifact-store provenance: the content-addressed key this
        #: bundle was loaded from / published under (``None`` when the
        #: store never saw it), and the training recipe retained so
        #: sweep workers that cannot rehydrate can fall back to a
        #: deterministic retrain.  See :mod:`repro.store.bundles`.
        self.store_key: Optional[str] = None
        self.train_seed: Optional[int] = None
        self.train_config: Optional[TrainingConfig] = None

    # ------------------------------------------------------------------

    @classmethod
    def train(
        cls,
        dataset: HARDataset,
        budget_j: float,
        *,
        seed: int = 0,
        config: TrainingConfig = TrainingConfig(),
        cost_model: EnergyCostModel = EnergyCostModel(),
    ) -> "TrainedSensorBundle":
        """Train, prune and seed everything for ``dataset``.

        ``budget_j`` is the per-inference energy budget for Baseline-2
        pruning (average harvested power x window duration).
        """
        if budget_j <= 0:
            raise ConfigurationError(f"budget_j must be positive, got {budget_j}")
        factory = SeedSequenceFactory(seed)
        spec = dataset.spec
        by_location: Dict[BodyLocation, TrainedLocationModel] = {}

        for node_id, location in enumerate(spec.locations):
            train = dataset.train[location]
            val = dataset.val[location]
            model = build_har_cnn(
                n_channels=train.X.shape[1],
                window=train.X.shape[2],
                n_classes=spec.n_classes,
                architecture=har_architecture_for(location),
                seed=factory.generator(f"init/{location.value}"),
                name=f"{spec.name.lower()}-{location.value}",
            )
            trainer = Trainer(model, optimizer=Adam(config.learning_rate))
            trainer.fit(
                train.X,
                train.y,
                epochs=config.epochs,
                batch_size=config.batch_size,
                seed=factory.generator(f"fit/{location.value}"),
                validation=(val.X, val.y),
                early_stopping_patience=config.early_stopping_patience,
            )

            pruner = EnergyAwarePruner(
                cost_model,
                finetune_epochs=config.finetune_epochs,
                final_finetune_epochs=config.final_finetune_epochs,
                finetune_every=config.finetune_every,
                finetune_lr=config.finetune_lr,
            )
            pruning = pruner.prune_to_budget(
                model,
                budget_j,
                finetune_data=(train.X, train.y),
                seed=factory.generator(f"finetune/{location.value}"),
            )

            val_pred = model.predict(val.X)
            pruned_pred = pruning.model.predict(val.X)
            by_location[location] = TrainedLocationModel(
                location=location,
                node_id=node_id,
                model=model,
                pruned_model=pruning.model,
                inference_energy_j=estimate_inference_energy(model, cost_model),
                pruned_inference_energy_j=pruning.energy_after_j,
                val_accuracy=accuracy(val.y, val_pred),
                pruned_val_accuracy=accuracy(val.y, pruned_pred),
                val_per_class=per_class_accuracy(val.y, val_pred, spec.n_classes),
                pruned_val_per_class=per_class_accuracy(
                    val.y, pruned_pred, spec.n_classes
                ),
                pruning=pruning,
            )

        rank_table = cls._build_rank_table(by_location, spec.n_classes)
        confidence = ConfidenceMatrix.seed_from_validation(
            models={entry.node_id: entry.pruned_model for entry in by_location.values()},
            validation={
                entry.node_id: (dataset.val[location].X, dataset.val[location].y)
                for location, entry in by_location.items()
            },
            adaptation_alpha=config.adaptation_alpha,
        )
        bundle = cls(dataset, by_location, rank_table, confidence, cost_model, budget_j)
        bundle.train_seed = int(seed)
        bundle.train_config = config
        return bundle

    @classmethod
    def train_or_load(
        cls,
        dataset: HARDataset,
        budget_j: float,
        *,
        seed: int = 0,
        config: TrainingConfig = TrainingConfig(),
        cost_model: EnergyCostModel = EnergyCostModel(),
        store=None,
        obs=None,
    ) -> "TrainedSensorBundle":
        """:meth:`train`, consulting the artifact store first.

        ``store`` follows the :func:`repro.store.resolve_store`
        convention: ``None`` uses the environment-configured default
        store (``REPRO_STORE_DIR`` root, ``REPRO_STORE=off`` kill
        switch), ``False`` bypasses the store entirely, and an explicit
        :class:`~repro.store.ArtifactStore` is used as given.  A store
        hit rehydrates the exact trained bundle from disk
        (byte-identical downstream results); a miss trains and
        publishes.  ``obs`` accumulates ``store.hit``/``store.miss``/
        ``store.rebuild`` counters plus ``store.load``/``store.build``
        timers.
        """
        from repro.store.bundles import load_or_train_bundle

        return load_or_train_bundle(
            dataset,
            budget_j,
            seed=seed,
            config=config,
            cost_model=cost_model,
            store=store,
            obs=obs,
        )

    @staticmethod
    def _build_rank_table(
        by_location: Dict[BodyLocation, TrainedLocationModel], n_classes: int
    ) -> RankTable:
        per_class: Dict[int, Dict[int, float]] = {
            label: {} for label in range(n_classes)
        }
        for entry in by_location.values():
            for label in range(n_classes):
                per_class[label][entry.node_id] = float(
                    entry.pruned_val_per_class[label]
                )
        return RankTable.from_accuracy(per_class)

    # ------------------------------------------------------------------

    @property
    def locations(self) -> List[BodyLocation]:
        """Locations in node-id order."""
        return sorted(self.by_location, key=lambda loc: self.by_location[loc].node_id)

    def entry(self, location: BodyLocation) -> TrainedLocationModel:
        """The trained bundle entry for one location."""
        try:
            return self.by_location[location]
        except KeyError as error:
            raise ConfigurationError(f"no trained model for {location}") from error

    def node_id_of(self, location: BodyLocation) -> int:
        """Node id assigned to ``location``."""
        return self.entry(location).node_id

    def location_of(self, node_id: int) -> BodyLocation:
        """Inverse of :meth:`node_id_of`."""
        for location, entry in self.by_location.items():
            if entry.node_id == node_id:
                return location
        raise ConfigurationError(f"unknown node id {node_id}")

    def models(self, *, pruned: bool) -> Dict[int, Sequential]:
        """``node id -> model`` for the requested variant."""
        return {
            entry.node_id: (entry.pruned_model if pruned else entry.model)
            for entry in self.by_location.values()
        }

    def inference_energies(self, *, pruned: bool) -> Dict[int, float]:
        """``node id -> joules per inference`` for the variant."""
        return {
            entry.node_id: (
                entry.pruned_inference_energy_j if pruned else entry.inference_energy_j
            )
            for entry in self.by_location.values()
        }
