"""Structure-of-arrays vectorized per-slot simulation kernel.

The ROADMAP's hot path is the per-slot energy/harvest/progress update:
``SensorNode.harvest`` + ``SensorNode._active_slot`` +
``NonVolatileProcessor.execute_burst``, stepped slot by slot in python
for every run of a sweep.  This module rewrites that physics as a
structure-of-arrays scan: one *lane* per (run, node) pair, one numpy
statement per capacitor/NVP rule, advancing every lane of a batch in
lockstep over a shared ``(n_lanes, n_slots)`` harvest timeline.

Two stages:

* :func:`run_node_schedule` (stage 1) drives a single node through a
  fixed activation schedule — the python slot loop replaced by the
  kernel, producing the same :class:`~repro.wsn.node.InferenceOutcome`
  stream and :class:`~repro.wsn.node.NodeStats`.
* :func:`run_policy_batch` (stage 2) advances *many runs at once*: every
  policy of a sweep cell shares one batched timeline, while the
  schedulers, host devices, voting and confidence matrices remain the
  real python objects, fed per-run from the lane state.

Byte-identity contract
----------------------
The kernel performs **elementwise-identical IEEE float64 operations in
the same per-lane order** as the scalar path (deposit → leak → idle →
stale-abort → sense → burst → complete/wipe → comm draw), so results are
byte-identical — not merely close — to ``HARExperiment.run``'s scalar
loop.  This is asserted by tests and the ``bench_perf_sweep --kernel``
gate.  Two consequences shape the design:

* The slot loop itself stays in python: capacitor clamping makes each
  slot's state a two-sided ``min``/``max`` function of the previous
  slot's, which has no closed form that reproduces float ordering.
  Vectorization happens across *lanes*, not slots.
* Everything with cross-node or cross-slot feedback (scheduling, host
  recall, voting, confidence adaptation, link accounting) is executed by
  the unmodified python objects, so identity holds by construction.

Scalar-fallback rules
---------------------
The kernel only takes runs it can reproduce exactly; everything else
falls back to the scalar path (see :func:`kernel_eligible`): runs with
observability enabled (per-slot timers/traces instrument the scalar
objects), a window transform (per-slot model inference), no precomputed
softmax, or a non-empty fault plan (fault engines drive node state
imperatively).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.engine import DecisionEngine, NodeSlotState
from repro.core.policies import PolicySpec
from repro.errors import ConfigurationError, SimulationError
from repro.sim.predcache import RunMaterial, build_run_material, default_subject
from repro.sim.results import ExperimentResult, SlotRecord
from repro.utils.rng import SeedSequenceFactory
from repro.wsn.comm import CommLink
from repro.wsn.node import InferenceOutcome, NodeStats, SensorNode

logger = logging.getLogger(__name__)


def kernel_ineligibility_reason(
    *,
    material: Optional[RunMaterial],
    window_transform,
    faults,
    obs,
) -> Optional[str]:
    """Why a run cannot take the vectorized path, or ``None`` if it can.

    The rules mirror the scalar features the kernel does not model (see
    module docstring); the returned tag feeds the ``kernel.fallback.*``
    observability counters so sweeps that quietly lose the kernel
    speedup are visible in ``repro.obs.summarize`` reports.
    """
    # Most specific first: an observed run with a fault plan reports
    # "fault_plan", not the always-true-under-obs "tracing".
    if window_transform is not None:
        return "window_transform"
    if faults is not None and not faults.is_empty:
        return "fault_plan"
    if material is None or material.probabilities is None:
        return "missing_probs"
    if obs is not None and obs.enabled:
        return "tracing"
    return None


def kernel_eligible(
    *,
    material: Optional[RunMaterial],
    window_transform,
    faults,
    obs,
) -> bool:
    """Whether a run with these inputs can take the vectorized path.

    Any ``False`` here routes the run through the scalar loop, whose
    output the kernel is byte-identical to whenever both are possible;
    :func:`kernel_ineligibility_reason` names the blocking feature.
    """
    return (
        kernel_ineligibility_reason(
            material=material,
            window_transform=window_transform,
            faults=faults,
            obs=obs,
        )
        is None
    )


@dataclass(frozen=True)
class SlotEvents:
    """What one :meth:`SlotKernel.advance` call did, per lane.

    Boolean masks select lanes; the float arrays are zero outside their
    mask.  ``started`` is only meaningful for lanes in ``active``.
    """

    active: np.ndarray  # bool: attempted an inference this slot
    sense_fail: np.ndarray  # bool: could not afford the IMU sample
    completed: np.ndarray  # bool: inference finished this slot
    started: np.ndarray  # int64: slot whose window the attempt classifies
    sense_paid: np.ndarray  # float64: IMU draw actually paid
    burst_consumed: np.ndarray  # float64: NVP burst energy drawn
    comm_paid: np.ndarray  # float64: radio draw actually paid


class SlotKernel:
    """Lane-parallel node physics over a shared slot timeline.

    One lane = one (run, node) pair.  All per-lane parameters are
    float64/bool/int64 arrays of shape ``(n_lanes,)``;
    ``slot_energies`` is ``(n_lanes, n_slots)``.  Every update in
    :meth:`advance` is the elementwise image of one scalar-path
    statement, in the same order — see the module docstring's
    byte-identity contract.
    """

    def __init__(
        self,
        *,
        slot_energies: np.ndarray,
        capacity_j: np.ndarray,
        initial_j: np.ndarray,
        leak_j: np.ndarray,
        idle_j: np.ndarray,
        sense_j: np.ndarray,
        task_work_j: np.ndarray,
        useful_fraction: np.ndarray,
        volatile: np.ndarray,
        comm_cost_j: np.ndarray,
        max_task_age_slots: np.ndarray,
    ) -> None:
        self.slot_energies = np.ascontiguousarray(slot_energies, dtype=np.float64)
        if self.slot_energies.ndim != 2:
            raise SimulationError("slot_energies must be (n_lanes, n_slots)")
        n_lanes = self.slot_energies.shape[0]

        def lane_array(name: str, values, dtype=np.float64) -> np.ndarray:
            array = np.ascontiguousarray(values, dtype=dtype)
            if array.shape != (n_lanes,):
                raise SimulationError(
                    f"{name} must have shape ({n_lanes},), got {array.shape}"
                )
            return array

        self.capacity_j = lane_array("capacity_j", capacity_j)
        self.leak_j = lane_array("leak_j", leak_j)
        self.idle_j = lane_array("idle_j", idle_j)
        self.sense_j = lane_array("sense_j", sense_j)
        self.task_work_j = lane_array("task_work_j", task_work_j)
        self.useful_fraction = lane_array("useful_fraction", useful_fraction)
        self.volatile = lane_array("volatile", volatile, dtype=bool)
        self.comm_cost_j = lane_array("comm_cost_j", comm_cost_j)
        self.max_task_age_slots = lane_array("max_task_age_slots", max_task_age_slots)
        # Same expressions as Capacitor.__init__ clamping and
        # SensorNode.can_start_inference / NVP's completion check.
        self.stored = np.minimum(lane_array("initial_j", initial_j), self.capacity_j)
        self.ready_threshold = self.sense_j + self.task_work_j / self.useful_fraction
        self._complete_at = self.task_work_j - 1e-15

        self.n_lanes = n_lanes
        self.n_slots = self.slot_energies.shape[1]
        self.done_work = np.zeros(n_lanes, dtype=np.float64)
        self.pending_slot = np.full(n_lanes, -1, dtype=np.int64)
        self.in_progress = np.zeros(n_lanes, dtype=bool)

        # NodeStats counters, accumulated in the scalar path's per-slot
        # addition order so float sums match bit for bit.
        self.slots = np.zeros(n_lanes, dtype=np.int64)
        self.active_slots = np.zeros(n_lanes, dtype=np.int64)
        self.attempts_started = np.zeros(n_lanes, dtype=np.int64)
        self.completions = np.zeros(n_lanes, dtype=np.int64)
        self.failed_active_slots = np.zeros(n_lanes, dtype=np.int64)
        self.harvested_j = np.zeros(n_lanes, dtype=np.float64)
        self.consumed_j = np.zeros(n_lanes, dtype=np.float64)
        self.comm_j = np.zeros(n_lanes, dtype=np.float64)
        self.leaked_j = np.zeros(n_lanes, dtype=np.float64)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_nodes(
        cls, nodes: Sequence[SensorNode], *, n_runs: int, n_slots: int
    ) -> "SlotKernel":
        """Lanes for ``n_runs`` identical runs over freshly built nodes.

        Lane ``r * len(nodes) + k`` is run ``r``'s copy of ``nodes[k]``.
        The nodes must be untouched templates (e.g. fresh from
        ``HARExperiment._build_nodes``): their current capacitor charge
        seeds every run's initial state.
        """
        if n_runs < 1:
            raise SimulationError(f"n_runs must be >= 1, got {n_runs}")
        base = np.stack([node.slot_energy_vector(n_slots) for node in nodes])

        def tiled(values, dtype=np.float64) -> np.ndarray:
            return np.tile(np.asarray(values, dtype=dtype), n_runs)

        return cls(
            slot_energies=np.tile(base, (n_runs, 1)),
            capacity_j=tiled([n.capacitor.capacity_j for n in nodes]),
            initial_j=tiled([n.capacitor.stored_j for n in nodes]),
            leak_j=tiled([n.capacitor.leakage_w * n.slot_duration_s for n in nodes]),
            idle_j=tiled([n.costs.idle_j for n in nodes]),
            sense_j=tiled([n.costs.sense_j for n in nodes]),
            task_work_j=tiled([n.inference_energy_j for n in nodes]),
            useful_fraction=tiled([n.nvp.useful_fraction for n in nodes]),
            volatile=tiled([n.nvp.volatile for n in nodes], dtype=bool),
            comm_cost_j=tiled(
                [n.comm.message_cost_j(n.costs.result_message_bytes) for n in nodes]
            ),
            max_task_age_slots=tiled(
                [
                    np.inf if n.max_task_age_slots is None else float(n.max_task_age_slots)
                    for n in nodes
                ]
            ),
        )

    @classmethod
    def stack(cls, kernels: Sequence["SlotKernel"]) -> "SlotKernel":
        """Concatenate fresh kernels' lanes into one mega-batch kernel.

        The fleet layer's lane packing: each input kernel holds one
        homogeneous slice (e.g. one user's ``policies x nodes`` lanes
        from :meth:`from_nodes`) and the stacked kernel advances every
        slice in a single ``advance`` per slot.  Per-lane physics is
        elementwise, so lane ``i`` of a stacked kernel is byte-identical
        to the same lane advanced in its own kernel.  Inputs must be
        fresh (no slot advanced yet); a single input is returned as-is.
        """
        kernels = list(kernels)
        if not kernels:
            raise SimulationError("stack needs at least one kernel")
        if len(kernels) == 1:
            return kernels[0]
        slot_counts = {kernel.n_slots for kernel in kernels}
        if len(slot_counts) != 1:
            raise SimulationError(
                f"stacked kernels must share one slot count, got {sorted(slot_counts)}"
            )
        for kernel in kernels:
            if kernel.slots.any() or kernel.in_progress.any():
                raise SimulationError("stack needs fresh kernels (no slots advanced)")

        def cat(name: str) -> np.ndarray:
            return np.concatenate([getattr(kernel, name) for kernel in kernels])

        return cls(
            slot_energies=np.concatenate(
                [kernel.slot_energies for kernel in kernels], axis=0
            ),
            capacity_j=cat("capacity_j"),
            # A fresh kernel's ``stored`` is its (already clamped)
            # initial charge, so it seeds the stacked lanes exactly.
            initial_j=cat("stored"),
            leak_j=cat("leak_j"),
            idle_j=cat("idle_j"),
            sense_j=cat("sense_j"),
            task_work_j=cat("task_work_j"),
            useful_fraction=cat("useful_fraction"),
            volatile=cat("volatile"),
            comm_cost_j=cat("comm_cost_j"),
            max_task_age_slots=cat("max_task_age_slots"),
        )

    # ------------------------------------------------------------------
    # per-slot scan
    # ------------------------------------------------------------------

    def ready_mask(self) -> np.ndarray:
        """Per-lane ``SensorNode.can_start_inference()``."""
        return self.stored >= self.ready_threshold

    def advance(self, slot: int, active: np.ndarray) -> SlotEvents:
        """Advance every lane one slot; ``active`` lanes attempt work.

        Each block below is the vectorized image of one scalar-path
        statement (cited in comments), applied in the same order.
        """
        stored = self.stored

        # SensorNode.harvest: deposit -> leak -> idle draw.
        energy = self.slot_energies[:, slot]
        accepted = np.minimum(energy, self.capacity_j - stored)
        stored += accepted
        lost = np.minimum(self.leak_j, stored)
        stored -= lost
        idle = np.minimum(self.idle_j, stored)
        stored -= idle
        self.harvested_j += accepted
        self.consumed_j += idle
        self.leaked_j += lost
        self.slots += 1

        self.active_slots += active

        # Stale in-flight tasks expire before anything runs
        # (SensorNode._active_slot's max_task_age_slots check); the lane
        # then falls through to a fresh sense like the scalar path.
        stale = active & self.in_progress & (
            (slot - self.pending_slot) >= self.max_task_age_slots
        )
        if stale.any():
            self.in_progress &= ~stale
            self.done_work[stale] = 0.0
            self.pending_slot[stale] = -1

        # Fresh inference: sense the current window first.
        fresh = active & ~self.in_progress
        sense_paid = np.where(fresh, np.minimum(self.sense_j, stored), 0.0)
        stored -= sense_paid
        self.consumed_j += sense_paid
        sense_fail = fresh & (sense_paid < self.sense_j)
        started_ok = fresh & ~sense_fail
        self.pending_slot[started_ok] = slot
        self.done_work[started_ok] = 0.0
        self.in_progress |= started_ok
        self.attempts_started += started_ok

        # NVP.execute_burst: consume up to what remaining work (plus
        # checkpoint overhead) requires, bank the useful fraction.
        bursting = active & self.in_progress
        needed = (self.task_work_j - self.done_work) / self.useful_fraction
        burst = np.where(bursting, np.minimum(stored, needed), 0.0)
        stored -= burst
        self.consumed_j += burst
        self.done_work += np.where(bursting, burst * self.useful_fraction, 0.0)

        completed = bursting & (self.done_work >= self._complete_at)
        incomplete = bursting & ~completed
        self.failed_active_slots += sense_fail
        self.failed_active_slots += incomplete

        # Outcome provenance before state is finalized: the slot whose
        # window each attempt classifies.
        started = np.where(sense_fail, slot, self.pending_slot)

        # Volatile MCUs lose an unfinished burst's progress entirely.
        wiped = incomplete & self.volatile
        if wiped.any():
            self.done_work[wiped] = 0.0
            self.in_progress &= ~wiped
            self.pending_slot[wiped] = -1

        # Completion: acknowledge, then pay for the result message.
        self.completions += completed
        self.in_progress &= ~completed
        self.done_work[completed] = 0.0
        self.pending_slot[completed] = -1
        comm_paid = np.where(completed, np.minimum(self.comm_cost_j, stored), 0.0)
        stored -= comm_paid
        self.comm_j += comm_paid
        self.consumed_j += comm_paid

        return SlotEvents(
            active=active,
            sense_fail=sense_fail,
            completed=completed,
            started=started,
            sense_paid=sense_paid,
            burst_consumed=burst,
            comm_paid=comm_paid,
        )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def lane_stats(self, lane: int) -> NodeStats:
        """One lane's counters as a plain-python :class:`NodeStats`."""
        return NodeStats(
            slots=int(self.slots[lane]),
            active_slots=int(self.active_slots[lane]),
            attempts_started=int(self.attempts_started[lane]),
            completions=int(self.completions[lane]),
            failed_active_slots=int(self.failed_active_slots[lane]),
            harvested_j=float(self.harvested_j[lane]),
            consumed_j=float(self.consumed_j[lane]),
            comm_j=float(self.comm_j[lane]),
            leaked_j=float(self.leaked_j[lane]),
        )


# ---------------------------------------------------------------------------
# stage 1: one node, fixed schedule
# ---------------------------------------------------------------------------


def run_node_schedule(
    node: SensorNode,
    schedule: Sequence[bool],
    *,
    mutate_comm: bool = True,
):
    """Drive one node through a fixed activation schedule via the kernel.

    The vectorized replacement for::

        for slot in range(n_slots):
            if schedule[slot]:
                outcomes.append(node.active_slot(slot, window))
            else:
                node.idle_slot(slot)

    ``node`` must be freshly built (its capacitor charge seeds the lane)
    and must carry a ``prediction_cache`` — the kernel never runs the
    model.  Returns ``(outcomes, stats)``; the node's own capacitor/NVP
    state is left untouched.  With ``mutate_comm`` (default) completed
    results go through ``node.comm.transmit`` so the link's message and
    energy counters advance exactly as in the scalar loop.
    """
    if node.prediction_cache is None:
        raise ConfigurationError(
            "run_node_schedule needs node.prediction_cache (the kernel "
            "does not run models); install the run material's softmax first"
        )
    mask = np.asarray(schedule, dtype=bool)
    n_slots = mask.size
    kernel = SlotKernel.from_nodes([node], n_runs=1, n_slots=n_slots)
    probabilities = node.prediction_cache
    predicted = probabilities.argmax(axis=1)
    confidences = np.var(probabilities, axis=1)

    outcomes: List[InferenceOutcome] = []
    active = np.zeros(1, dtype=bool)
    for slot in range(n_slots):
        active[0] = mask[slot]
        events = kernel.advance(slot, active)
        if not active[0]:
            continue
        outcomes.append(
            _lane_outcome(
                events,
                0,
                node_id=node.node_id,
                location=node.location,
                slot=slot,
                probabilities=probabilities,
                predicted=predicted,
                confidences=confidences,
                comm=node.comm if mutate_comm else CommLink(node.comm.profile),
                result_message_bytes=node.costs.result_message_bytes,
            )
        )
    return outcomes, kernel.lane_stats(0)


def _lane_outcome(
    events: SlotEvents,
    lane: int,
    *,
    node_id: int,
    location,
    slot: int,
    probabilities: np.ndarray,
    predicted: np.ndarray,
    confidences: np.ndarray,
    comm: CommLink,
    result_message_bytes: int,
) -> InferenceOutcome:
    """Materialize one active lane's slot outcome (scalar field order)."""
    if events.sense_fail[lane]:
        return InferenceOutcome(
            node_id, location, slot, slot, False,
            energy_consumed_j=float(events.sense_paid[lane]),
        )
    if not events.completed[lane]:
        return InferenceOutcome(
            node_id, location, slot, int(events.started[lane]), False,
            energy_consumed_j=float(events.burst_consumed[lane]),
        )
    started_slot = int(events.started[lane])
    label = int(predicted[started_slot])
    # The real link transmits, so message/energy counters (and any
    # delivery hook, though eligible runs have none) match the scalar
    # path; the capacitor-side draw already happened in advance().
    sent = comm.transmit(result_message_bytes, slot, label)
    return InferenceOutcome(
        node_id=node_id,
        location=location,
        slot_index=slot,
        started_slot=started_slot,
        completed=True,
        predicted_label=label,
        probabilities=probabilities[started_slot],
        confidence=float(confidences[started_slot]),
        energy_consumed_j=float(events.burst_consumed[lane] + events.comm_paid[lane]),
        delivered=sent.delivery.delivered,
        reported_label=(sent.delivery.label if sent.delivery.corrupted else None),
    )


# ---------------------------------------------------------------------------
# stage 2: batched policy runs (and stage 3: heterogeneous groups)
# ---------------------------------------------------------------------------


@dataclass
class _RunState:
    """The real python objects of one policy run, fed from lane state.

    ``core`` is the shared :class:`~repro.core.engine.DecisionEngine`
    (scheduler + host recall/vote + confidence adaptation) — the same
    object the scalar loop and the serving path drive, fed here from
    the lane arrays.
    """

    spec: PolicySpec
    core: DecisionEngine
    comms: List[CommLink]
    result: ExperimentResult
    active_ids: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class BatchGroup:
    """One homogeneous slice of a (possibly heterogeneous) mega-batch.

    A group is everything that shares a seed, deployment config and run
    material: ``len(policies)`` runs over one set of node templates.
    :func:`run_policy_batch` is a single group; the fleet layer packs
    one group per simulated user — each with its *own* traces,
    capacitor sizing, gains and timeline — into one
    :func:`run_group_batch` call.

    ``config`` (a :class:`~repro.sim.experiment.SimulationConfig`)
    defaults to the experiment's; ``material`` is built on demand when
    omitted; ``confidence_matrices`` optionally supplies (and mutates!)
    one matrix per policy, ``None`` entries meaning fresh copies.
    """

    policies: Sequence[PolicySpec]
    seed: int
    config: Optional[object] = None
    material: Optional[RunMaterial] = None
    subject: Optional[object] = None
    confidence_matrices: Optional[Sequence] = None


@dataclass
class _GroupState:
    """One group's prepared objects plus its lane offset in the batch."""

    nodes: List[SensorNode]
    node_ids: List[int]
    material: RunMaterial
    true_labels: List[int]
    class_predictions: dict
    runs: List[_RunState]
    n_slots: int
    base: int = 0

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)


def _prepare_group(experiment, group: BatchGroup) -> tuple:
    """Materialize one group's nodes, material and run objects.

    Returns ``(_GroupState, SlotKernel)`` — the kernel holds the
    group's ``len(policies) * len(nodes)`` fresh lanes, ready to be
    stacked with other groups'.
    """
    policies = list(group.policies)
    if not policies:
        raise ConfigurationError("a batch group needs at least one policy")
    config = group.config if group.config is not None else experiment.config
    run_seed = int(group.seed)
    dataset_spec = experiment.dataset.spec
    subject = group.subject or default_subject(experiment.dataset)
    confidence_matrices = group.confidence_matrices
    if confidence_matrices is None:
        confidence_matrices = [None] * len(policies)
    elif len(confidence_matrices) != len(policies):
        raise ConfigurationError(
            f"confidence_matrices must match policies "
            f"({len(confidence_matrices)} != {len(policies)})"
        )

    material = group.material
    if material is None:
        material = build_run_material(
            experiment.dataset,
            experiment.bundle,
            run_seed,
            n_windows=config.n_windows,
            dwell_scale=config.dwell_scale,
            use_pruned_models=config.use_pruned_models,
            subject=subject,
            with_predictions=True,
        )
    else:
        material.check_compatible(
            seed=run_seed,
            n_windows=config.n_windows,
            dwell_scale=config.dwell_scale,
            use_pruned_models=config.use_pruned_models,
            subject=subject,
        )
    if material.probabilities is None:
        raise ConfigurationError(
            "the kernel needs material with precomputed softmax "
            "(build_run_material(with_predictions=True))"
        )

    # The seed's node templates: same factory stream as the scalar path,
    # so traces/capacitors/NVPs carry identical parameters.
    factory = SeedSequenceFactory(run_seed)
    nodes = experiment._build_nodes(factory, config)
    node_ids = [node.node_id for node in nodes]
    n_slots = config.n_windows
    kernel = SlotKernel.from_nodes(nodes, n_runs=len(policies), n_slots=n_slots)
    class_predictions = material.class_predictions()
    true_labels = [dataset_spec.label_of(label) for label in material.labels]

    runs: List[_RunState] = []
    for spec, matrix in zip(policies, confidence_matrices):
        if matrix is not None:
            confidence = matrix
        else:
            alpha = (
                experiment.bundle.confidence_matrix.adaptation_alpha
                if spec.adaptive_confidence
                else 0.0
            )
            confidence = experiment.bundle.confidence_matrix.copy(
                adaptation_alpha=alpha
            )
        core = DecisionEngine(
            spec,
            node_ids,
            experiment.bundle.rank_table,
            confidence,
            max_recall_age_slots=config.max_recall_age_slots,
            staleness_half_life_slots=None,
        )
        runs.append(
            _RunState(
                spec=spec,
                core=core,
                comms=[CommLink(config.radio) for _ in nodes],
                result=ExperimentResult(
                    policy_name=spec.name,
                    activities=list(dataset_spec.activities),
                ),
            )
        )

    state = _GroupState(
        nodes=nodes,
        node_ids=node_ids,
        material=material,
        true_labels=true_labels,
        class_predictions=class_predictions,
        runs=runs,
        n_slots=n_slots,
    )
    return state, kernel


def run_group_batch(
    experiment,
    groups: Sequence[BatchGroup],
) -> List[List[ExperimentResult]]:
    """Advance every run of every group in lockstep on one kernel.

    The mega-batch entry point: groups may differ in seed, traces,
    capacitor sizing, gains, dwell and material — each contributes its
    own ``policies x nodes`` lane block to one stacked
    :class:`SlotKernel`, so the whole cohort's physics advances with
    one numpy statement per rule per slot instead of one kernel
    invocation per user.  Schedulers, hosts, voting and confidence
    matrices remain per-run python objects fed from their lanes.

    Returns one ``List[ExperimentResult]`` per group (one entry per
    policy, in order).  Every result is byte-identical to running that
    group's ``(policy, seed, config)`` alone through
    ``HARExperiment.run`` — per-lane physics is elementwise, and the
    per-run epilogue executes the same statements in the same order.

    All groups must share one slot count (``config.n_windows``).
    """
    groups = list(groups)
    if not groups:
        return []

    states: List[_GroupState] = []
    kernels: List[SlotKernel] = []
    base = 0
    for group in groups:
        state, group_kernel = _prepare_group(experiment, group)
        state.base = base
        base += group_kernel.n_lanes
        states.append(state)
        kernels.append(group_kernel)
    n_slots = states[0].n_slots
    for state in states[1:]:
        if state.n_slots != n_slots:
            raise ConfigurationError(
                f"all groups of a batch must share n_windows "
                f"({state.n_slots} != {n_slots})"
            )
    kernel = SlotKernel.stack(kernels)

    logger.debug(
        "kernel batch: %d group(s), %d lanes x %d slots",
        len(states), kernel.n_lanes, n_slots,
    )

    stored = kernel.stored
    active_mask = np.zeros(kernel.n_lanes, dtype=bool)
    lane_of = {}
    for g, state in enumerate(states):
        for r in range(len(state.runs)):
            for k, node_id in enumerate(state.node_ids):
                lane_of[g, r, node_id] = state.base + r * state.n_nodes + k

    for slot in range(n_slots):
        # Scheduling: the real scheduler objects, fed per-run contexts
        # assembled from the lane arrays (the scalar path's dicts).
        ready = kernel.ready_mask()
        active_mask[:] = False
        for g, state in enumerate(states):
            node_ids = state.node_ids
            n_nodes = state.n_nodes
            for r, run in enumerate(state.runs):
                run_base = state.base + r * n_nodes
                run.active_ids = run.core.begin_slot(
                    slot,
                    {
                        node_ids[k]: NodeSlotState(
                            energy_j=float(stored[run_base + k]),
                            ready=bool(ready[run_base + k]),
                        )
                        for k in range(n_nodes)
                    },
                )
                for node_id in run.active_ids:
                    active_mask[lane_of[g, r, node_id]] = True

        events = kernel.advance(slot, active_mask)

        # Epilogue: per run, materialize outcomes in node (construction)
        # order and drive host/confidence/scheduler exactly as the
        # scalar loop does.
        for state in states:
            material = state.material
            true_label = state.true_labels[slot]
            n_nodes = state.n_nodes
            for r, run in enumerate(state.runs):
                run_base = state.base + r * n_nodes
                outcomes: List[InferenceOutcome] = []
                for k, node in enumerate(state.nodes):
                    lane = run_base + k
                    if not active_mask[lane]:
                        continue
                    predicted, confidences = state.class_predictions[node.node_id]
                    outcome = _lane_outcome(
                        events,
                        lane,
                        node_id=node.node_id,
                        location=node.location,
                        slot=slot,
                        probabilities=material.probabilities[node.node_id],
                        predicted=predicted,
                        confidences=confidences,
                        comm=run.comms[k],
                        result_message_bytes=node.costs.result_message_bytes,
                    )
                    outcomes.append(outcome)

                final = run.core.finish_slot(slot, outcomes, receive=True)
                run.result.records.append(
                    SlotRecord(
                        slot_index=slot,
                        true_label=true_label,
                        predicted_label=final,
                        active_nodes=tuple(run.active_ids),
                        completions=sum(1 for o in outcomes if o.completed),
                        attempts=len(outcomes),
                        dropped_messages=sum(
                            1 for o in outcomes if o.completed and not o.delivered
                        ),
                    )
                )

    results: List[List[ExperimentResult]] = []
    for state in states:
        group_results: List[ExperimentResult] = []
        for r, run in enumerate(state.runs):
            run_base = state.base + r * state.n_nodes
            run.result.node_stats = {
                state.node_ids[k]: kernel.lane_stats(run_base + k)
                for k in range(state.n_nodes)
            }
            run.result.comm_energy_j = sum(
                link.energy_spent_j for link in run.comms
            )
            run.result.confidence_updates = run.core.confidence_updates
            group_results.append(run.result)
        results.append(group_results)
    return results


def run_policy_batch(
    experiment,
    policies: Sequence[PolicySpec],
    seed: int,
    *,
    material: Optional[RunMaterial] = None,
    subject=None,
    config=None,
    confidence_matrices: Optional[Sequence] = None,
) -> List[ExperimentResult]:
    """Run every policy for one seed on a single batched timeline.

    The stage-2 entry point: ``len(policies)`` runs advance in lockstep
    as lanes of one :class:`SlotKernel` (they share the seed's traces
    and material), while each run keeps its own scheduler, host, voting,
    confidence matrix and comm links — the scalar objects, driven
    per-slot from the lane arrays.  Returns one
    :class:`~repro.sim.results.ExperimentResult` per policy, in order,
    byte-identical to ``experiment.run(policy, seed=seed, ...)``.

    This is :func:`run_group_batch` with a single :class:`BatchGroup`;
    ``confidence_matrices`` optionally supplies (and mutates!) one
    matrix per policy, mirroring ``run(confidence_matrix=...)``, with
    ``None`` entries for the default fresh copies.
    """
    policies = list(policies)
    if not policies:
        return []
    return run_group_batch(
        experiment,
        [
            BatchGroup(
                policies=policies,
                seed=seed,
                config=config,
                material=material,
                subject=subject,
                confidence_matrices=confidence_matrices,
            )
        ],
    )[0]
