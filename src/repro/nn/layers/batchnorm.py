"""Batch normalization over channels.

Works on both ``(B, C, L)`` conv activations (normalizing each channel
over batch and time) and ``(B, F)`` dense activations (normalizing each
feature over the batch).  Keeps running statistics for inference.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers.base import Layer, Shape


class BatchNorm1D(Layer):
    """Batch normalization with learnable scale/shift.

    Parameters
    ----------
    momentum:
        EMA weight of the *old* running statistic (Keras convention).
    epsilon:
        Variance floor for numerical stability.
    """

    def __init__(
        self,
        momentum: float = 0.9,
        epsilon: float = 1e-5,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if not 0.0 <= momentum < 1.0:
            raise ModelError(f"momentum must be in [0, 1), got {momentum}")
        if epsilon <= 0:
            raise ModelError(f"epsilon must be positive, got {epsilon}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.gamma: Optional[np.ndarray] = None
        self.beta: Optional[np.ndarray] = None
        self.dgamma: Optional[np.ndarray] = None
        self.dbeta: Optional[np.ndarray] = None
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None
        self._cache: Optional[tuple] = None

    def _build(self, input_shape: Shape) -> Shape:
        if len(input_shape) not in (1, 2):
            raise ModelError(f"BatchNorm1D expects (C, L) or (F,), got {input_shape}")
        width = input_shape[0]
        self.gamma = np.ones(width, dtype=np.float64)
        self.beta = np.zeros(width, dtype=np.float64)
        self.dgamma = np.zeros_like(self.gamma)
        self.dbeta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(width, dtype=np.float64)
        self.running_var = np.ones(width, dtype=np.float64)
        return tuple(input_shape)

    # ------------------------------------------------------------------

    def _axes(self, x: np.ndarray) -> tuple:
        return (0, 2) if x.ndim == 3 else (0,)

    def _expand(self, stat: np.ndarray, x: np.ndarray) -> np.ndarray:
        return stat[None, :, None] if x.ndim == 3 else stat[None, :]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
            inv_std = 1.0 / np.sqrt(var + self.epsilon)
            x_hat = (x - self._expand(mean, x)) * self._expand(inv_std, x)
            self._cache = (x_hat, inv_std, axes, x.shape)
        else:
            inv_std = 1.0 / np.sqrt(self.running_var + self.epsilon)
            x_hat = (x - self._expand(self.running_mean, x)) * self._expand(inv_std, x)
        return self._expand(self.gamma, x) * x_hat + self._expand(self.beta, x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        x_hat, inv_std, axes, shape = self._cache
        count = np.prod([shape[axis] for axis in axes])
        self.dgamma = (grad_output * x_hat).sum(axis=axes)
        self.dbeta = grad_output.sum(axis=axes)
        g = grad_output * self._expand(self.gamma, grad_output)
        term1 = g
        term2 = self._expand(g.sum(axis=axes) / count, grad_output)
        term3 = x_hat * self._expand((g * x_hat).sum(axis=axes) / count, grad_output)
        return self._expand(inv_std, grad_output) * (term1 - term2 - term3)

    @property
    def params(self) -> Dict[str, np.ndarray]:
        self._require_built()
        return {"gamma": self.gamma, "beta": self.beta}

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        self._require_built()
        return {"gamma": self.dgamma, "beta": self.dbeta}
