#!/usr/bin/env python
"""Serve live device sessions and verify them against the offline run.

Starts an in-process asyncio serving server (`repro.serve`) on the
standard MHEALTH deployment, then:

1. runs one lockstep device session per policy rung and checks the
   served decision stream is byte-identical to `HARExperiment.run`;
2. replays 25 concurrent prerecorded sessions through the same server
   and reports the sessions/core headline;
3. overloads a deliberately slow `shed`-mode server and shows the
   shed accounting (`decisions + shed == windows`).

Run:  python examples/serve_demo.py
"""

import asyncio

from repro.core import aas_policy, aasr_policy, origin_policy, rr_policy
from repro.serve import (
    EngineCatalog,
    ServeProfile,
    ServeServer,
    live_session,
    record_tape,
    replay_session,
    run_load,
)
from repro.sim import HARExperiment, SimulationConfig


async def demo(experiment) -> None:
    catalog = EngineCatalog([ServeProfile.from_experiment("default", experiment)])
    server = ServeServer(catalog)
    await server.start()
    print(f"serving profile 'default' on 127.0.0.1:{server.port}\n")
    try:
        print("Lockstep sessions vs offline runs (the identity anchor):")
        for policy in (rr_policy(3), aas_policy(6), aasr_policy(6), origin_policy(6)):
            served = await live_session(
                "127.0.0.1", server.port, experiment, policy, seed=9
            )
            offline = experiment.run(policy, seed=9)
            same = served.labels == [
                r.predicted_label for r in offline.records
            ] and served.actives == [list(r.active_nodes) for r in offline.records]
            decided = sum(1 for label in served.labels if label is not None)
            print(
                f"  {policy.name:<12} {'byte-identical' if same else 'DIVERGED'}"
                f" ({decided} decisions over {len(served.labels)} windows)"
            )

        print("\nConcurrent load (replay tapes, block backpressure):")
        tapes = [
            record_tape(experiment, origin_policy(6), seed=9 + index)
            for index in range(2)
        ]
        stats = await run_load("127.0.0.1", server.port, tapes, 25)
        print(
            f"  {stats.sessions} sessions · {stats.windows} windows · "
            f"{stats.windows_per_s:.0f} windows/s -> "
            f"{stats.sessions_per_core:.0f} sessions/core "
            f"({stats.mismatches} mismatches)"
        )
    finally:
        await server.stop()

    print("\nOverload shedding (slow worker, shed watermark 1):")
    shed_server = ServeServer(
        catalog, overload="shed", queue_size=4, shed_watermark=1, worker_pause_s=0.002
    )
    await shed_server.start()
    try:
        result = await replay_session(
            "127.0.0.1", shed_server.port, tapes[0], check=False
        )
    finally:
        await shed_server.stop()
    stats = result.stats
    print(
        f"  {stats['windows']} windows -> {stats['decisions']} decided + "
        f"{stats['shed']} shed (accounting exact: "
        f"{stats['decisions'] + stats['shed'] == stats['windows']})"
    )


def main() -> None:
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=80)
    )
    asyncio.run(demo(experiment))


if __name__ == "__main__":
    main()
