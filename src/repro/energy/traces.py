"""Synthetic WiFi RF harvesting power traces.

The paper uses "a real power trace harvested from a WiFi source while
doing various day to day tasks in an office environment" (§IV-A).  That
trace is not redistributable, so this module generates statistically
similar ones: a semi-Markov office model alternates between QUIET
(ambient beacons only), ACTIVE (normal traffic) and BURST (heavy
transfer nearby) states, and per-sample log-normal fading adds the fast
variation RF harvesting exhibits.  Multiple nodes in the same office
share the *state* sequence (their bursts coincide) but fade
independently and have location-dependent gains — exactly the
correlation structure that makes the paper's Fig. 1a "all three succeed"
case rare but not impossible.

Power levels are tens-of-microwatt scale, the published regime for
indoor WiFi energy harvesting, which puts one pruned CNN inference
(~100 uJ) at several harvesting slots — the operating point where
scheduling matters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, EnergyModelError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


class OfficeState(enum.Enum):
    """RF environment regimes."""

    QUIET = "quiet"
    ACTIVE = "active"
    BURST = "burst"


@dataclass(frozen=True)
class PowerTrace:
    """A uniformly sampled harvested-power series.

    Attributes
    ----------
    dt_s:
        Sampling interval in seconds.
    watts:
        Harvested power at each sample.
    """

    dt_s: float
    watts: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "watts", np.asarray(self.watts, dtype=np.float64))
        if self.dt_s <= 0:
            raise EnergyModelError(f"dt_s must be positive, got {self.dt_s}")
        if self.watts.ndim != 1 or self.watts.size == 0:
            raise EnergyModelError("watts must be a non-empty 1-D array")
        if np.any(self.watts < 0):
            raise EnergyModelError("power cannot be negative")

    @property
    def duration_s(self) -> float:
        """Total trace duration in seconds."""
        return self.dt_s * self.watts.size

    @property
    def average_power_w(self) -> float:
        """Mean harvested power over the whole trace."""
        return float(self.watts.mean())

    def energy_between(self, t0_s: float, t1_s: float) -> float:
        """Joules harvested in ``[t0, t1)`` (rectangle rule, clamped)."""
        if t1_s < t0_s:
            raise EnergyModelError(f"t1 ({t1_s}) must be >= t0 ({t0_s})")
        start = max(t0_s, 0.0)
        stop = min(t1_s, self.duration_s)
        if stop <= start:
            return 0.0
        first = int(start / self.dt_s)
        last = int(np.ceil(stop / self.dt_s))
        energy = 0.0
        for index in range(first, min(last, self.watts.size)):
            sample_start = index * self.dt_s
            sample_stop = sample_start + self.dt_s
            overlap = min(stop, sample_stop) - max(start, sample_start)
            if overlap > 0:
                energy += self.watts[index] * overlap
        return energy

    def slot_energy(self, slot_index: int, slot_duration_s: float) -> float:
        """Joules harvested during scheduling slot ``slot_index``."""
        if slot_index < 0:
            raise EnergyModelError(f"slot_index must be >= 0, got {slot_index}")
        start = slot_index * slot_duration_s
        return self.energy_between(start, start + slot_duration_s)

    def slot_energies(
        self, slot_duration_s: float, *, n_slots: Optional[int] = None
    ) -> np.ndarray:
        """Vector of per-slot harvested joules for the whole trace.

        Fast path used by the simulator: requires the slot duration to
        be an integer multiple of ``dt_s`` (within rounding).

        With ``n_slots`` the vector is truncated or zero-padded to
        exactly that length — the scan-friendly form the vectorized
        kernel consumes.  Slots beyond the trace harvest exactly 0.0 J,
        matching the scalar simulator's out-of-range fallback.
        """
        check_positive("slot_duration_s", slot_duration_s)
        samples_per_slot = slot_duration_s / self.dt_s
        rounded = int(round(samples_per_slot))
        if rounded < 1 or abs(samples_per_slot - rounded) > 1e-9:
            # Fall back to exact integration.
            covered = int(self.duration_s // slot_duration_s)
            vec = np.array(
                [self.slot_energy(index, slot_duration_s) for index in range(covered)]
            )
        else:
            covered = self.watts.size // rounded
            trimmed = self.watts[: covered * rounded].reshape(covered, rounded)
            vec = trimmed.sum(axis=1) * self.dt_s
        if n_slots is None:
            return vec
        if n_slots < 0:
            raise EnergyModelError(f"n_slots must be >= 0, got {n_slots}")
        if vec.size >= n_slots:
            return vec[:n_slots].copy()
        out = np.zeros(n_slots, dtype=np.float64)
        out[: vec.size] = vec
        return out

    def scaled(self, factor: float) -> "PowerTrace":
        """A copy with every sample multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise EnergyModelError(f"factor must be >= 0, got {factor}")
        return PowerTrace(self.dt_s, self.watts * factor)

    def segment(self, t0_s: float, t1_s: float) -> "PowerTrace":
        """The sub-trace covering ``[t0, t1)``."""
        first = int(max(t0_s, 0.0) / self.dt_s)
        last = int(min(t1_s, self.duration_s) / self.dt_s)
        if last <= first:
            raise EnergyModelError("empty segment requested")
        return PowerTrace(self.dt_s, self.watts[first:last].copy())


@dataclass(frozen=True)
class _StateParams:
    mean_power_w: float
    mean_dwell_s: float


class PowerTraceGenerator:
    """Office-environment WiFi RF trace generator.

    Parameters
    ----------
    state_power_w:
        Mean harvested power per office state.
    state_dwell_s:
        Mean dwell time per state (exponential).
    fading_sigma:
        Log-normal fading sigma per sample (mean-one fading).
    dt_s:
        Sample interval.

    Defaults give an average of roughly 30 uW with a heavily skewed
    distribution (median well below the mean), matching the published
    character of indoor WiFi harvesting.
    """

    DEFAULT_POWER_W: Dict[OfficeState, float] = {
        OfficeState.QUIET: 4e-6,
        OfficeState.ACTIVE: 30e-6,
        OfficeState.BURST: 120e-6,
    }
    DEFAULT_DWELL_S: Dict[OfficeState, float] = {
        OfficeState.QUIET: 40.0,
        OfficeState.ACTIVE: 18.0,
        OfficeState.BURST: 5.0,
    }

    def __init__(
        self,
        state_power_w: Optional[Dict[OfficeState, float]] = None,
        state_dwell_s: Optional[Dict[OfficeState, float]] = None,
        *,
        fading_sigma: float = 0.7,
        dt_s: float = 0.32,
    ) -> None:
        power = dict(self.DEFAULT_POWER_W)
        power.update(state_power_w or {})
        dwell = dict(self.DEFAULT_DWELL_S)
        dwell.update(state_dwell_s or {})
        for state in OfficeState:
            if power[state] < 0:
                raise ConfigurationError(f"power for {state} must be >= 0")
            check_positive(f"dwell for {state}", dwell[state])
        if fading_sigma < 0:
            raise ConfigurationError(f"fading_sigma must be >= 0, got {fading_sigma}")
        self._params = {
            state: _StateParams(power[state], dwell[state]) for state in OfficeState
        }
        self.fading_sigma = float(fading_sigma)
        self.dt_s = check_positive("dt_s", dt_s)

    # ------------------------------------------------------------------

    def state_sequence(self, duration_s: float, seed: SeedLike = None) -> List[OfficeState]:
        """Per-sample office state over ``duration_s`` seconds."""
        check_positive("duration_s", duration_s)
        rng = as_generator(seed)
        n_samples = int(np.ceil(duration_s / self.dt_s))
        states: List[OfficeState] = []
        all_states = list(OfficeState)
        current = OfficeState.QUIET
        while len(states) < n_samples:
            dwell_s = rng.exponential(self._params[current].mean_dwell_s)
            n_dwell = max(int(round(dwell_s / self.dt_s)), 1)
            states.extend([current] * n_dwell)
            others = [state for state in all_states if state is not current]
            current = others[int(rng.integers(len(others)))]
        return states[:n_samples]

    def _fade(self, rng: np.random.Generator, n_samples: int) -> np.ndarray:
        if self.fading_sigma == 0:
            return np.ones(n_samples)
        # Mean-one log-normal fading.
        mu = -0.5 * self.fading_sigma**2
        return rng.lognormal(mu, self.fading_sigma, size=n_samples)

    def generate(
        self, duration_s: float, seed: SeedLike = None, *, gain: float = 1.0
    ) -> PowerTrace:
        """One independent trace."""
        rng = as_generator(seed)
        states = self.state_sequence(duration_s, rng)
        base = np.array([self._params[state].mean_power_w for state in states])
        return PowerTrace(self.dt_s, base * self._fade(rng, base.size) * gain)

    def generate_correlated(
        self,
        duration_s: float,
        gains: Sequence[float],
        seed: SeedLike = None,
    ) -> List[PowerTrace]:
        """One trace per gain, sharing the office-state sequence.

        Nodes on the same body in the same office see the same bursts at
        the same times, but fade independently — the correlation that
        shapes the paper's Fig. 1a breakdown.
        """
        if not gains:
            raise ConfigurationError("gains must be non-empty")
        if any(g < 0 for g in gains):
            raise ConfigurationError("gains must be >= 0")
        rng = as_generator(seed)
        states = self.state_sequence(duration_s, rng)
        base = np.array([self._params[state].mean_power_w for state in states])
        return [
            PowerTrace(self.dt_s, base * self._fade(rng, base.size) * gain)
            for gain in gains
        ]

    def expected_average_power_w(self) -> float:
        """Analytic long-run mean power (fading is mean-one)."""
        total_dwell = sum(p.mean_dwell_s for p in self._params.values())
        return sum(
            p.mean_power_w * p.mean_dwell_s / total_dwell for p in self._params.values()
        )
