"""Activity-aware scheduling (AAS, paper §III-B).

AAS keeps the extended round-robin *cadence* (compute slots separated by
no-ops so nodes can harvest) but replaces "whoever's turn it is" with
"whoever is best at the anticipated activity":

1. the anticipated activity is simply the last classified activity
   (temporal continuity);
2. the rank table names the best sensor for it;
3. if that sensor cannot finish a fresh inference on its stored energy,
   it signals the next-best sensor instead (the paper's hand-off), and
   so on down the ranking;
4. before any classification exists, AAS falls back to plain
   round-robin over the cycle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.core.scheduling.rank_table import RankTable
from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.errors import SchedulingError
from repro.wsn.node import InferenceOutcome


class ActivityAwareScheduler(SchedulingPolicy):
    """ER-r cadence + rank-table sensor selection.

    Parameters
    ----------
    base:
        The extended round-robin defining the compute-slot cadence.
    rank_table:
        Per-activity sensor ranking (seeded from validation accuracy).
    """

    def __init__(
        self,
        base: ExtendedRoundRobin,
        rank_table: RankTable,
        *,
        cooldown_slots: Optional[int] = None,
        retry_budget: int = 2,
        backoff_slots: Optional[int] = None,
    ) -> None:
        if set(base.node_ids) != set(rank_table.node_ids):
            raise SchedulingError(
                f"rank table nodes {rank_table.node_ids} do not match "
                f"round-robin nodes {base.node_ids}"
            )
        self.base = base
        self.rank_table = rank_table
        # The paper's ER-r integration: a sensor that just ran must wait
        # before running again, so it re-harvests and other sensors get
        # turns.  The default rests a sensor for half a cycle, letting
        # the best sensor take every other compute slot — the right
        # trade when only the freshest inference matters (plain AAS).
        # Recall-based policies pass ``cooldown_for_recall`` instead:
        # two full compute periods, which keeps every sensor's recalled
        # vote within one ER-r cycle (see PolicySpec.make_scheduler).
        if cooldown_slots is None:
            cooldown_slots = base.cycle_length // 2 + 1
        if cooldown_slots < 0:
            raise SchedulingError(f"cooldown_slots must be >= 0, got {cooldown_slots}")
        self.cooldown_slots = int(cooldown_slots)
        # Fault handling: an unresponsive node is still retried up to
        # ``retry_budget`` activations (its radio may just be unlucky);
        # after that it backs off for ``backoff_slots`` and the ranking
        # falls through to the next-best sensor.  A completed inference
        # from the node clears both immediately.
        if retry_budget < 1:
            raise SchedulingError(f"retry_budget must be >= 1, got {retry_budget}")
        if backoff_slots is None:
            backoff_slots = base.cycle_length
        if backoff_slots < 1:
            raise SchedulingError(f"backoff_slots must be >= 1, got {backoff_slots}")
        self.retry_budget = int(retry_budget)
        self.backoff_slots = int(backoff_slots)
        self._anticipated: Optional[int] = None
        self._last_activated = {node_id: None for node_id in base.node_ids}
        self._strikes = {node_id: 0 for node_id in base.node_ids}
        self._backoff_until = {node_id: 0 for node_id in base.node_ids}
        self.name = f"{base.name}+AAS"

    # ------------------------------------------------------------------

    @property
    def anticipated_label(self) -> Optional[int]:
        """The activity the scheduler currently expects."""
        return self._anticipated

    @staticmethod
    def cooldown_for_recall(base: ExtendedRoundRobin) -> int:
        """Cooldown that keeps all recalled votes within one ER-r cycle.

        Two compute periods of rest forces full sensor rotation, so in a
        3-node deployment every node's most recent classification is at
        most one cycle old — what a recall ensemble needs to stay fresh.
        """
        compute_period = max(base.cycle_length // max(len(base.node_ids), 1), 1)
        return 2 * compute_period + 1

    def _off_cooldown(self, node_id: int, slot_index: int) -> bool:
        last = self._last_activated[node_id]
        return last is None or slot_index - last >= self.cooldown_slots

    def _backing_off(self, node_id: int, slot_index: int) -> bool:
        return slot_index < self._backoff_until[node_id]

    def active_nodes(self, slot_index: int, context: SchedulingContext) -> List[int]:
        if not self.base.is_compute_slot(slot_index):
            return []
        anticipated = (
            context.anticipated_label
            if context.anticipated_label is not None
            else self._anticipated
        )
        if anticipated is None:
            # No classification yet: plain round-robin turn.
            chosen = self.base.slot_owner(slot_index)
        else:
            ranked = self.rank_table.ranked_nodes(anticipated)
            # Nodes that exhausted their retry budget sit out a backoff
            # window; if literally everyone is backing off, try the
            # best-ranked sensor anyway rather than wasting the slot.
            reachable = [n for n in ranked if not self._backing_off(n, slot_index)]
            candidates = reachable or ranked
            rested = [n for n in candidates if self._off_cooldown(n, slot_index)]
            ready = [n for n in rested if context.node_ready.get(n, False)]
            if ready:
                chosen = ready[0]  # best-ranked sensor that can finish now
            elif rested:
                chosen = rested[0]  # partial progress is kept by the NVP
            else:
                chosen = candidates[0]
        self._last_activated[chosen] = slot_index
        if not context.is_responsive(chosen):
            self._strikes[chosen] += 1
            if self._strikes[chosen] >= self.retry_budget:
                self._backoff_until[chosen] = slot_index + self.backoff_slots
                self._strikes[chosen] = 0
        else:
            self._strikes[chosen] = 0
        return [chosen]

    def observe(
        self,
        slot_index: int,
        outcomes: Sequence[InferenceOutcome],
        final_label: Optional[int],
    ) -> None:
        for outcome in outcomes:
            if outcome.completed:
                # Evidence the node is alive again: stop backing off.
                self._strikes[outcome.node_id] = 0
                self._backoff_until[outcome.node_id] = 0
        if final_label is not None:
            self._anticipated = int(final_label)
            return
        for outcome in outcomes:
            if outcome.completed:
                self._anticipated = int(outcome.predicted_label)

    def reset(self) -> None:
        self._anticipated = None
        self._last_activated = {node_id: None for node_id in self.base.node_ids}
        self._strikes = {node_id: 0 for node_id in self.base.node_ids}
        self._backoff_until = {node_id: 0 for node_id in self.base.node_ids}
