"""CLI for the online serving path.

::

    python -m repro.serve run   --run-dir runs/serve-a          # a server
    python -m repro.serve load  --sessions 100 --policy origin6 # self-test load
    python -m repro.serve replay --port 9000 --policy origin6   # identity check

``run`` trains/loads the profile's bundle (store-backed, like every
experiment entry point), binds a server and serves until interrupted —
watch it live with ``python -m repro.obs.watch RUN_DIR``.  ``load``
spawns an in-process server, replays N concurrent prerecorded sessions
through it and prints throughput (the ``bench_serve`` measurement,
smoke-sized).  ``replay`` runs one lockstep device against an already
running server and verifies the served decision stream byte-for-byte
against the offline ``HARExperiment.run`` on the same timeline.
"""

from __future__ import annotations

import argparse
import asyncio
import re
import sys
from typing import List, Optional

from repro.core.policies import (
    PolicySpec,
    aas_policy,
    aasr_policy,
    naive_policy,
    origin_policy,
    rr_policy,
)
from repro.errors import ReproError
from repro.serve.client import live_session, record_tape, run_load
from repro.serve.server import ServeServer
from repro.serve.session import EngineCatalog, ServeProfile
from repro.sim.experiment import HARExperiment, SimulationConfig

_POLICY = re.compile(r"^(rr|aas|aasr|origin)(\d+)$")
_MAKERS = {
    "rr": rr_policy,
    "aas": aas_policy,
    "aasr": aasr_policy,
    "origin": origin_policy,
}


def parse_policy(text: str) -> PolicySpec:
    """``rr3`` / ``aas6`` / ``aasr6`` / ``origin12`` / ``naive``."""
    if text == "naive":
        return naive_policy()
    match = _POLICY.match(text)
    if match is None:
        raise SystemExit(
            f"unknown policy {text!r} (want rrN, aasN, aasrN, originN or naive)"
        )
    return _MAKERS[match.group(1)](int(match.group(2)))


def _build_experiment(args: argparse.Namespace) -> HARExperiment:
    config = SimulationConfig(n_windows=args.windows)
    if args.dataset == "mhealth":
        return HARExperiment.standard_mhealth(seed=args.seed, config=config)
    return HARExperiment.standard_pamap2(seed=args.seed, config=config)


def _make_server(
    args: argparse.Namespace, experiment: HARExperiment, **overrides
) -> ServeServer:
    registry = None
    if getattr(args, "register", False):
        from repro.obs.runs import RunRegistry

        registry = RunRegistry()
    catalog = EngineCatalog([ServeProfile.from_experiment(args.profile, experiment)])
    return ServeServer(
        catalog,
        host=args.host,
        port=args.port,
        overload=args.overload,
        queue_size=args.queue_size,
        run_dir=args.run_dir,
        session_traces=getattr(args, "session_traces", False),
        registry=registry,
        **overrides,
    )


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


async def _cmd_run(args: argparse.Namespace) -> int:
    experiment = _build_experiment(args)
    server = _make_server(args, experiment)
    await server.start()
    print(
        f"serving profile {args.profile!r} ({args.dataset}) on "
        f"{server.host}:{server.port}  overload={args.overload}"
        + (f"  run-dir={args.run_dir}" if args.run_dir else "")
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
        if server.run_id is not None:
            print(f"registered run {server.run_id}")
    return 0


async def _cmd_load(args: argparse.Namespace) -> int:
    experiment = _build_experiment(args)
    server = _make_server(args, experiment, worker_pause_s=args.worker_pause)
    await server.start()
    try:
        policy = parse_policy(args.policy)
        tapes = [
            record_tape(
                experiment,
                policy,
                profile=args.profile,
                seed=experiment.seed + index,
            )
            for index in range(args.tapes)
        ]
        print(
            f"replaying {args.sessions} concurrent sessions "
            f"({args.tapes} tape(s) x {args.windows} windows, {args.policy}) "
            f"over :{server.port} ..."
        )
        stats = await run_load(server.host, server.port, tapes, args.sessions)
    finally:
        await server.stop()
    print(
        f"sessions={stats.sessions} windows={stats.windows} "
        f"decisions={stats.decisions} shed={stats.shed} "
        f"wall={stats.wall_s:.2f}s"
    )
    print(
        f"throughput: {stats.windows_per_s:.0f} windows/s = "
        f"{stats.sessions_per_core:.0f} live sessions/core"
    )
    if server.run_id is not None:
        print(f"registered run {server.run_id}")
    if args.overload == "block" and stats.mismatches:
        print(f"DETERMINISM FAILURE: {stats.mismatches} mismatches vs tape")
        return 1
    return 0


async def _cmd_replay(args: argparse.Namespace) -> int:
    experiment = _build_experiment(args)
    policy = parse_policy(args.policy)
    served = await live_session(
        args.host,
        args.port,
        experiment,
        policy,
        profile=args.profile,
        seed=args.seed,
    )
    offline = experiment.run(policy, seed=args.seed)
    expected = [record.predicted_label for record in offline.records]
    matches = sum(1 for a, b in zip(served.labels, expected) if a == b)
    identical = served.labels == expected and not any(served.shed)
    print(
        f"served {len(served.labels)} decisions ({args.policy}); "
        f"{matches}/{len(expected)} match offline"
    )
    if identical:
        print("byte-identical to HARExperiment.run: OK")
        return 0
    print("MISMATCH against the offline decision stream")
    return 1


# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Online serving: session server, load generator, replay check.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--dataset", choices=("mhealth", "pamap2"), default="mhealth")
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument("--windows", type=int, default=120)
        sub.add_argument("--profile", default="default")
        sub.add_argument("--host", default="127.0.0.1")
        sub.add_argument("--port", type=int, default=0)

    def serverish(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--overload", choices=("block", "shed"), default="block")
        sub.add_argument("--queue-size", type=int, default=8)
        sub.add_argument("--run-dir", default=None)
        sub.add_argument(
            "--session-traces",
            action="store_true",
            help="write per-session decision traces under RUN_DIR/sessions/",
        )
        sub.add_argument(
            "--register",
            action="store_true",
            help="record the run in the RunRegistry ($REPRO_RUNS_DIR)",
        )

    run_p = commands.add_parser("run", help="serve until interrupted")
    common(run_p)
    serverish(run_p)

    load_p = commands.add_parser("load", help="spawn a server, load-test it")
    common(load_p)
    serverish(load_p)
    load_p.add_argument("--sessions", type=int, default=50)
    load_p.add_argument("--tapes", type=int, default=2)
    load_p.add_argument("--policy", default="origin6")
    load_p.add_argument(
        "--worker-pause",
        type=float,
        default=0.0,
        help="artificial per-frame decision delay (exercises the shed policy)",
    )

    replay_p = commands.add_parser(
        "replay", help="lockstep device vs offline run, byte-for-byte"
    )
    common(replay_p)
    replay_p.add_argument("--policy", default="origin6")
    replay_p.set_defaults(port=9000)

    args = parser.parse_args(argv)
    handlers = {"run": _cmd_run, "load": _cmd_load, "replay": _cmd_replay}
    try:
        return asyncio.run(handlers[args.command](args))
    except KeyboardInterrupt:
        print()
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
