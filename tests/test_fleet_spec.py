"""Cohort sampling: reproducibility, layout-independence, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.body import BodyLocation
from repro.errors import ConfigurationError
from repro.fleet.spec import CohortSpec, ParameterDist
from repro.sim.experiment import SimulationConfig


class TestParameterDist:
    def test_constant(self):
        dist = ParameterDist.constant(3.5)
        assert dist.sample(np.random.default_rng(0)) == 3.5
        assert dist.support == (3.5,)

    def test_uniform_bounds(self):
        dist = ParameterDist.uniform(1.0, 2.0)
        rng = np.random.default_rng(1)
        draws = [dist.sample(rng) for _ in range(100)]
        assert all(1.0 <= d < 2.0 for d in draws)
        assert dist.support is None

    def test_loguniform_positive(self):
        dist = ParameterDist.loguniform(1e-6, 1e-3)
        rng = np.random.default_rng(2)
        draws = [dist.sample(rng) for _ in range(100)]
        assert all(1e-6 <= d <= 1e-3 for d in draws)

    def test_normal_clipped(self):
        dist = ParameterDist.normal(0.0, 10.0, low=-1.0, high=1.0)
        rng = np.random.default_rng(3)
        draws = [dist.sample(rng) for _ in range(50)]
        assert all(-1.0 <= d <= 1.0 for d in draws)

    def test_lognormal_around_one(self):
        dist = ParameterDist.lognormal(0.0, 0.25)
        rng = np.random.default_rng(4)
        draws = [dist.sample(rng) for _ in range(500)]
        assert 0.8 < float(np.median(draws)) < 1.25

    def test_choice_weighted(self):
        dist = ParameterDist.choice((1.0, 2.0), weights=(0.0, 1.0))
        rng = np.random.default_rng(5)
        assert all(dist.sample(rng) == 2.0 for _ in range(20))
        assert dist.support == (1.0, 2.0)

    def test_same_stream_same_draws(self):
        dist = ParameterDist.uniform(0.0, 1.0)
        a = [dist.sample(np.random.default_rng(6)) for _ in range(3)]
        b = [dist.sample(np.random.default_rng(6)) for _ in range(3)]
        assert a == b

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: ParameterDist(kind="exotic"),
            lambda: ParameterDist.uniform(2.0, 1.0),
            lambda: ParameterDist.loguniform(0.0, 1.0),
            lambda: ParameterDist.choice(()),
            lambda: ParameterDist.choice((1.0,), weights=(1.0, 2.0)),
            lambda: ParameterDist.choice((1.0, 2.0), weights=(0.0, 0.0)),
            lambda: ParameterDist.normal(0.0, -1.0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            bad()


class TestCohortSpec:
    def test_user_is_pure_function_of_index(self):
        spec = CohortSpec(size=100, seed=17)
        assert spec.user(42) == spec.user(42)

    def test_users_independent_of_iteration_layout(self):
        # Shard-layout independence: sampling user i alone, in a full
        # sweep, or inside any [lo, hi) slice yields the same user.
        spec = CohortSpec(size=30, seed=23)
        full = list(spec.users())
        sliced = list(spec.users(0, 10)) + list(spec.users(10, 30))
        assert full == sliced
        assert spec.user(17) == full[17]

    def test_distinct_users_differ(self):
        spec = CohortSpec(size=10, seed=5)
        configs = [spec.user(i).config for i in range(10)]
        assert len({c.capacitor_capacity_j for c in configs}) > 1

    def test_sampled_knobs_land_in_config(self):
        spec = CohortSpec(size=4, seed=3)
        user = spec.user(0)
        config = user.config
        assert config.dwell_scale in spec.dwell_scale.support
        assert set(config.node_gains) == set(BodyLocation)
        assert all(gain > 0 for gain in config.node_gains.values())
        assert config.capacitor_capacity_j != spec.base.capacitor_capacity_j

    def test_unsampled_base_fields_preserved(self):
        base = SimulationConfig(n_windows=77, checkpoint_overhead=0.25)
        spec = CohortSpec(size=2, seed=1, base=base)
        user = spec.user(1)
        assert user.config.n_windows == 77
        assert user.config.checkpoint_overhead == 0.25

    def test_timeline_pool_cycles(self):
        spec = CohortSpec(size=10, seed=4, n_timelines=3)
        seeds = spec.timeline_seeds()
        assert len(seeds) == 3
        for index in range(10):
            assert spec.user(index).seed == seeds[index % 3]

    def test_material_group_bound(self):
        spec = CohortSpec(size=100, seed=0, n_timelines=4)
        assert spec.material_group_bound() == 4 * 3  # 3 dwell choices
        continuous = CohortSpec(
            size=100,
            seed=0,
            dwell_scale=ParameterDist.uniform(2.0, 5.0),
        )
        assert continuous.material_group_bound() is None

    def test_to_dict_is_json_safe_and_complete(self):
        import json

        spec = CohortSpec(size=5, seed=2)
        document = spec.to_dict()
        json.dumps(document, default=str)
        assert document["size"] == 5
        assert document["base"]["n_windows"] == spec.base.n_windows
        assert document["dwell_scale"]["kind"] == "choice"

    @pytest.mark.parametrize(
        "bad",
        [
            dict(size=0),
            dict(size=5, n_timelines=0),
            dict(size=5, dwell_scale=ParameterDist.choice((-1.0, 3.0))),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            CohortSpec(seed=0, **bad)

    def test_user_index_bounds(self):
        spec = CohortSpec(size=3, seed=0)
        with pytest.raises(ConfigurationError):
            spec.user(3)
        with pytest.raises(ConfigurationError):
            spec.user(-1)


class TestDwellValidation:
    def test_simulation_config_rejects_nonpositive_dwell(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(dwell_scale=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(dwell_scale=-2.0)

    def test_positive_dwell_accepted(self):
        assert SimulationConfig(dwell_scale=0.5).dwell_scale == 0.5
