"""Neural-network layers with analytic forward/backward passes."""

from repro.nn.layers.base import Layer
from repro.nn.layers.activations import ReLU
from repro.nn.layers.batchnorm import BatchNorm1D
from repro.nn.layers.conv import Conv1D
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.pooling import GlobalAvgPool1D, MaxPool1D

__all__ = [
    "Layer",
    "ReLU",
    "BatchNorm1D",
    "Conv1D",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool1D",
    "MaxPool1D",
]
