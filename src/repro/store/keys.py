"""Content-addressed key derivation for trained-bundle artifacts.

A store key is the SHA-256 of a canonical JSON document describing every
input that determines the trained bundle bit-for-bit:

* the dataset: spec fields plus content digests of the train/val arrays
  per body location (the splits training actually consumes — two
  datasets built with different factory kwargs hash differently even
  when their specs agree),
* the training seed, :class:`~repro.sim.training.TrainingConfig` and
  :class:`~repro.nn.energy_model.EnergyCostModel`,
* the pruning budget,
* the per-location architecture hyperparameters (so editing
  ``repro.nn.architectures`` invalidates old entries), and
* :data:`STORE_SCHEMA_VERSION`, which is bumped whenever the on-disk
  layout or the serialization format changes.

Floats are embedded via ``float.hex()`` so the key is exact, not
subject to decimal formatting.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict

import numpy as np

from repro.datasets.base import HARDataset
from repro.nn.architectures import har_architecture_for
from repro.nn.energy_model import EnergyCostModel
from repro.sim.training import TrainingConfig

#: Bump on any incompatible change to the key derivation, the manifest
#: layout or the checkpoint format.  Old entries simply stop matching
#: (and age out via ``gc``) — there is no in-place migration.
STORE_SCHEMA_VERSION = 1

#: Length of the hex digest used as the entry directory name.  128 bits
#: of SHA-256 — collision-free for any realistic store population while
#: keeping paths readable.
KEY_HEX_CHARS = 32


def _canonical(value: Any) -> Any:
    """Make ``value`` JSON-stable: floats to hex, tuples to lists."""
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def digest_array(array: np.ndarray) -> str:
    """SHA-256 of an array's dtype, shape and raw bytes."""
    hasher = hashlib.sha256()
    array = np.ascontiguousarray(array)
    hasher.update(str(array.dtype).encode("ascii"))
    hasher.update(str(array.shape).encode("ascii"))
    hasher.update(array.tobytes())
    return hasher.hexdigest()


def dataset_fingerprint(dataset: HARDataset) -> Dict[str, Any]:
    """Everything about ``dataset`` that the trained bundle depends on."""
    spec = dataset.spec
    splits: Dict[str, Any] = {}
    for split_name, split in (("train", dataset.train), ("val", dataset.val)):
        splits[split_name] = {
            location.value: {
                "X": digest_array(split[location].X),
                "y": digest_array(split[location].y),
            }
            for location in spec.locations
        }
    return {
        "name": spec.name,
        "activities": [activity.value for activity in spec.activities],
        "locations": [location.value for location in spec.locations],
        "sample_rate_hz": spec.sample_rate_hz,
        "window_size": spec.window_size,
        "splits": splits,
    }


def architecture_fingerprint(dataset: HARDataset) -> Dict[str, Any]:
    """Per-location CNN hyperparameters, keyed by location value."""
    return {
        location.value: asdict(har_architecture_for(location))
        for location in dataset.spec.locations
    }


def trained_bundle_key(
    dataset: HARDataset,
    budget_j: float,
    *,
    seed: int,
    config: TrainingConfig,
    cost_model: EnergyCostModel,
) -> str:
    """The store key for one ``TrainedSensorBundle.train(...)`` call."""
    document = {
        "kind": "trained-bundle",
        "schema_version": STORE_SCHEMA_VERSION,
        "dataset": dataset_fingerprint(dataset),
        "architectures": architecture_fingerprint(dataset),
        "seed": int(seed),
        "budget_j": budget_j,
        "training": asdict(config),
        "cost_model": asdict(cost_model),
    }
    payload = json.dumps(_canonical(document), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:KEY_HEX_CHARS]
