"""Exactness and order/shard-invariance of the fleet aggregators."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.errors import FleetError
from repro.fleet.aggregate import ExactSum, FleetAggregate, FleetDistribution


def _values(n, seed=0, lo=-1.0, hi=1.0):
    rng = random.Random(seed)
    return [rng.uniform(lo, hi) for _ in range(n)]


class TestExactSum:
    def test_matches_math_fsum(self):
        values = _values(500, seed=1)
        acc = ExactSum()
        for value in values:
            acc.add(value)
        assert acc.value == pytest.approx(math.fsum(values), abs=0, rel=1e-15)

    def test_order_invariant_to_the_bit(self):
        values = _values(300, seed=2)
        forward, backward = ExactSum(), ExactSum()
        for value in values:
            forward.add(value)
        for value in reversed(values):
            backward.add(value)
        assert forward == backward
        assert forward.value == backward.value

    def test_grouping_invariant(self):
        values = _values(100, seed=3)
        whole = ExactSum()
        for value in values:
            whole.add(value)
        pieces = ExactSum()
        for chunk_start in range(0, len(values), 7):
            part = ExactSum()
            for value in values[chunk_start : chunk_start + 7]:
                part.add(value)
            pieces.merge(part)
        assert whole == pieces

    def test_token_round_trip(self):
        acc = ExactSum()
        for value in (-0.1, 3.7, 1e-300, -2.5e8):
            acc.add(value)
        assert ExactSum.from_token(acc.to_token()) == acc

    def test_tiny_and_negative_values_exact(self):
        acc = ExactSum()
        acc.add(5e-324)  # smallest subnormal
        acc.add(-5e-324)
        assert acc.value == 0.0
        assert acc.to_token() == "0x0"

    def test_rejects_non_finite(self):
        with pytest.raises(FleetError):
            ExactSum().add(float("nan"))
        with pytest.raises(FleetError):
            ExactSum().add(float("inf"))


class TestFleetDistribution:
    def test_exact_percentiles_small(self):
        dist = FleetDistribution(0.0, 1.0)
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            dist.add(value)
        assert dist.percentile(50) == 0.3
        assert dist.percentile(0) == 0.1
        assert dist.percentile(100) == 0.5
        assert dist.min_value == 0.1 and dist.max_value == 0.5

    def test_collapse_preserves_counts_and_exact_outer_stats(self):
        dist = FleetDistribution(0.0, 1.0, n_bins=16, max_exact=10)
        values = [i / 50 for i in range(50)]
        for value in values:
            dist.add(value)
        assert dist.exact is None  # collapsed
        assert dist.count == 50
        assert sum(dist.bins) == 50
        assert dist.min_value == 0.0 and dist.max_value == values[-1]
        assert dist.mean == pytest.approx(math.fsum(values) / 50, rel=1e-15)

    def test_collapse_timing_does_not_change_state(self):
        # Collapsing mid-stream (single shard) vs at merge time (two
        # exact shards) must land on identical bytes.
        values = _values(200, seed=4, lo=0.0, hi=1.0)
        single = FleetDistribution(0.0, 1.0, n_bins=32, max_exact=50)
        for value in values:
            single.add(value)
        left = FleetDistribution(0.0, 1.0, n_bins=32, max_exact=50)
        right = FleetDistribution(0.0, 1.0, n_bins=32, max_exact=50)
        for value in values[:40]:
            left.add(value)
        for value in values[40:80]:
            right.add(value)
        for value in values[80:]:
            right.add(value)
        left.merge(right)
        assert json.dumps(single.to_dict(), sort_keys=True) == json.dumps(
            left.to_dict(), sort_keys=True
        )

    def test_merge_order_invariant(self):
        values = _values(120, seed=5, lo=0.0, hi=1.0)
        shards = []
        for start in range(0, 120, 40):
            shard = FleetDistribution(0.0, 1.0, max_exact=30)
            for value in values[start : start + 40]:
                shard.add(value)
            shards.append(shard)

        def merged(order):
            total = FleetDistribution(0.0, 1.0, max_exact=30)
            for index in order:
                copy = FleetDistribution.from_dict(shards[index].to_dict())
                total.merge(copy)
            return json.dumps(total.to_dict(), sort_keys=True)

        assert merged([0, 1, 2]) == merged([2, 0, 1]) == merged([1, 2, 0])

    def test_out_of_range_values_clamp_into_edge_bins(self):
        dist = FleetDistribution(0.0, 1.0, n_bins=4, max_exact=0)
        dist.add(-5.0)
        dist.add(7.0)
        assert dist.bins[0] == 1 and dist.bins[-1] == 1
        assert dist.min_value == -5.0 and dist.max_value == 7.0

    def test_incompatible_merge_refused(self):
        a = FleetDistribution(0.0, 1.0)
        b = FleetDistribution(0.0, 2.0)
        with pytest.raises(FleetError):
            a.merge(b)

    def test_serialization_round_trip_exact(self):
        dist = FleetDistribution(0.0, 1.0, max_exact=5)
        for value in _values(30, seed=6, lo=0.0, hi=1.0):
            dist.add(value)
        clone = FleetDistribution.from_dict(dist.to_dict())
        assert json.dumps(clone.to_dict(), sort_keys=True) == json.dumps(
            dist.to_dict(), sort_keys=True
        )

    def test_empty_percentile_raises(self):
        with pytest.raises(FleetError):
            FleetDistribution(0.0, 1.0).percentile(50)


BOUNDS = {"accuracy": (0.0, 1.0), "energy": (0.0, 10.0)}


def _user_metrics(rng):
    return {
        "policy-a": {"accuracy": rng.random(), "energy": rng.uniform(0, 10)},
        "policy-b": {"accuracy": rng.random(), "energy": rng.uniform(0, 10)},
    }


class TestFleetAggregate:
    def test_shard_layout_invariance_bytes(self):
        rng = random.Random(7)
        users = [_user_metrics(rng) for _ in range(60)]

        def run_sharded(sizes):
            total = FleetAggregate(bounds=BOUNDS, max_exact=20)
            start = 0
            for size in sizes:
                shard = FleetAggregate(bounds=BOUNDS, max_exact=20)
                shard.shards = 1
                for user in users[start : start + size]:
                    shard.add_user(user)
                start += size
                total.merge(FleetAggregate.from_dict(shard.to_dict()))
            return total

        one = run_sharded([60])
        three = run_sharded([20, 20, 20])
        many = run_sharded([7] * 8 + [4])
        assert one.stats_json() == three.stats_json() == many.stats_json()
        assert (one.shards, three.shards, many.shards) == (1, 3, 9)

    def test_users_counted_once_per_user(self):
        aggregate = FleetAggregate(bounds=BOUNDS)
        rng = random.Random(8)
        aggregate.add_user(_user_metrics(rng))
        aggregate.add_user(_user_metrics(rng))
        assert aggregate.users == 2
        assert aggregate.distribution("policy-a", "accuracy").count == 2

    def test_unknown_metric_refused(self):
        aggregate = FleetAggregate(bounds=BOUNDS)
        with pytest.raises(FleetError):
            aggregate.add_user({"policy-a": {"latency": 1.0}})

    def test_incompatible_layout_merge_refused(self):
        a = FleetAggregate(bounds=BOUNDS)
        b = FleetAggregate(bounds={"accuracy": (0.0, 1.0)})
        with pytest.raises(FleetError):
            a.merge(b)

    def test_json_round_trip_exact(self):
        aggregate = FleetAggregate(bounds=BOUNDS, max_exact=8)
        rng = random.Random(9)
        for _ in range(25):
            aggregate.add_user(_user_metrics(rng))
        clone = FleetAggregate.from_dict(json.loads(aggregate.to_json()))
        assert clone.to_json() == aggregate.to_json()

    def test_summary_lines_render(self):
        aggregate = FleetAggregate(
            bounds={"event_accuracy": (0.0, 1.0), "completion_rate": (0.0, 1.0)}
        )
        rng = random.Random(10)
        for _ in range(5):
            aggregate.add_user(
                {
                    "Origin": {
                        "event_accuracy": rng.random(),
                        "completion_rate": rng.random(),
                    }
                }
            )
        text = "\n".join(aggregate.summary_lines())
        assert "Origin" in text and "event_accuracy" in text
