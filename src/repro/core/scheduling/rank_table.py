"""Per-activity sensor ranking.

The paper stores, per activity, the *rank* of each sensor rather than
its floating-point accuracy ("accuracy being a floating point number, is
expensive in terms of energy to store and lookup", §III-B).  The table
is seeded from validation accuracy and is immutable at run time.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.errors import SchedulingError


class RankTable:
    """``activity label -> node ids ordered best-first``.

    Parameters
    ----------
    ranking:
        For each class label, node ids from most to least accurate.
    """

    def __init__(self, ranking: Mapping[int, Sequence[int]]) -> None:
        if not ranking:
            raise SchedulingError("ranking must be non-empty")
        node_sets = {frozenset(nodes) for nodes in ranking.values()}
        if len(node_sets) != 1:
            raise SchedulingError("every class must rank the same node set")
        for label, nodes in ranking.items():
            if len(set(nodes)) != len(nodes):
                raise SchedulingError(f"duplicate nodes in ranking for class {label}")
        self._ranking: Dict[int, List[int]] = {
            int(label): list(nodes) for label, nodes in ranking.items()
        }
        self._nodes = sorted(next(iter(node_sets)))

    # ------------------------------------------------------------------

    @classmethod
    def from_accuracy(
        cls, per_class_accuracy: Mapping[int, Mapping[int, float]]
    ) -> "RankTable":
        """Build from ``{class label: {node id: accuracy}}``.

        Ties break toward the lower node id (deterministic).
        """
        ranking = {}
        for label, node_accuracy in per_class_accuracy.items():
            ordered = sorted(node_accuracy.items(), key=lambda item: (-item[1], item[0]))
            ranking[label] = [node_id for node_id, _ in ordered]
        return cls(ranking)

    # ------------------------------------------------------------------

    @property
    def labels(self) -> List[int]:
        """Class labels covered."""
        return sorted(self._ranking)

    @property
    def node_ids(self) -> List[int]:
        """All ranked node ids."""
        return list(self._nodes)

    def best_node(self, label: int) -> int:
        """Most accurate node for ``label``."""
        return self.ranked_nodes(label)[0]

    def ranked_nodes(self, label: int) -> List[int]:
        """All nodes for ``label``, best first."""
        try:
            return list(self._ranking[int(label)])
        except KeyError as error:
            raise SchedulingError(f"no ranking for class {label}") from error

    def rank_of(self, label: int, node_id: int) -> int:
        """0-based rank of ``node_id`` for ``label``."""
        nodes = self.ranked_nodes(label)
        try:
            return nodes.index(node_id)
        except ValueError as error:
            raise SchedulingError(f"node {node_id} not ranked") from error

    def as_array(self) -> np.ndarray:
        """``(n_classes, n_nodes)`` int array of node ids, best first.

        This is the compact integer representation the paper stores on
        the node instead of floating-point accuracy.
        """
        return np.array([self._ranking[label] for label in self.labels], dtype=np.int8)
