"""The Fig. 1 motivation study: inference completion on harvested energy.

Reproduces both panels of the paper's Fig. 1 on the pre-Origin hardware
assumptions: *volatile* compute (an interrupted inference restarts from
scratch) and *unpruned* DNNs:

* **Fig. 1a** — all three sensors attempt every window.  In the paper
  only ~1% of windows see all three finish, ~9% see at least one, and
  ~90% see none.
* **Fig. 1b** — plain RR3 (one sensor per window, two harvesting).
  The paper reports 28% completed / 72% failed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.policies import naive_policy, rr_policy
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.results import CompletionBreakdown


@dataclass
class CompletionStudyResult:
    """Both panels of Fig. 1."""

    naive: CompletionBreakdown
    round_robin: CompletionBreakdown

    def summary(self) -> str:
        """Text rendition of the two panels."""
        a, b = self.naive, self.round_robin
        return (
            "Fig. 1a (naive, all sensors every window):\n"
            f"  all succeed     {a.all_fraction * 100:6.2f}%\n"
            f"  at least one    {a.any_fraction * 100:6.2f}%\n"
            f"  failed          {a.failed_fraction * 100:6.2f}%\n"
            "Fig. 1b (plain RR3):\n"
            f"  succeeded       {b.any_fraction * 100:6.2f}%\n"
            f"  failed          {b.failed_fraction * 100:6.2f}%"
        )


class CompletionExperiment:
    """Runs the two motivation configurations on one experiment setup."""

    def __init__(self, experiment: HARExperiment) -> None:
        self.experiment = experiment

    def _motivation_config(self, base: SimulationConfig) -> SimulationConfig:
        # Pre-Origin hardware: volatile MCU, unpruned DNNs, and storage
        # sized for the larger unpruned inference.
        max_energy = max(
            self.experiment.bundle.inference_energies(pruned=False).values()
        )
        return replace(
            base,
            volatile=True,
            use_pruned_models=False,
            capacitor_capacity_j=max(base.capacitor_capacity_j, 2.5 * max_energy),
        )

    def run(
        self, *, n_windows: Optional[int] = None, seed: Optional[int] = None
    ) -> CompletionStudyResult:
        """Run both panels and return their breakdowns."""
        experiment = self.experiment
        saved = experiment.config
        experiment.config = self._motivation_config(saved)
        try:
            n_nodes = len(experiment.dataset.spec.locations)
            naive = experiment.run(
                naive_policy(n_nodes), n_windows=n_windows, seed=seed
            ).completion_breakdown()
            rr3 = experiment.run(
                rr_policy(n_nodes), n_windows=n_windows, seed=seed
            ).completion_breakdown()
        finally:
            experiment.config = saved
        return CompletionStudyResult(naive=naive, round_robin=rr3)
