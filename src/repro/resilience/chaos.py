"""Chaos harness: scheduled crashes, hangs and store deletions.

PR 1 taught the *simulated* WSN to fail on purpose (``repro.faults``);
this module does the same for the execution substrate.  A
:class:`ChaosPlan` schedules deterministic faults against sweep work
units:

* ``crash`` — the worker dies via ``os._exit`` (indistinguishable from
  a segfault or an OOM kill: the parent sees ``BrokenProcessPool``);
* ``hang`` — the worker sleeps past its task timeout, exercising the
  timeout→kill→requeue path;
* ``drop_store_entry`` — an artifact-store entry is deleted before the
  work runs, forcing rehydrating workers onto the deterministic-retrain
  fallback.

Actions fire on a specific attempt (default: the first), so a chaos-hit
task recovers on its retry and the perturbed sweep's results stay
byte-identical to an unperturbed run — which is exactly the property
the chaos tests and ``bench_perf_sweep --chaos`` assert.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

logger = logging.getLogger(__name__)

#: Exit status of a chaos-crashed worker (mirrors a SIGSEGV wait status
#: so the parent-side experience matches a real native crash).
CRASH_EXIT_CODE = 139

_KINDS = ("crash", "hang", "drop_store_entry")


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault against one work unit."""

    kind: str
    #: 0-based attempt the action fires on; retries run clean.
    on_attempt: int = 0
    #: Sleep length for ``hang`` — must exceed the task timeout for the
    #: hang to be observed as one.
    hang_s: float = 60.0
    #: Entry deleted by ``drop_store_entry``.
    store_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r}; want one of {_KINDS}"
            )
        if self.on_attempt < 0:
            raise ConfigurationError(
                f"on_attempt must be >= 0, got {self.on_attempt}"
            )
        if self.kind == "drop_store_entry" and not self.store_key:
            raise ConfigurationError("drop_store_entry needs a store_key")


def apply_chaos(action: Optional[ChaosAction]) -> None:
    """Execute one action inside a worker (``None`` = no chaos).

    Module-level so chaos-carrying task arguments pickle cleanly.
    """
    if action is None:
        return
    if action.kind == "crash":
        logger.warning("chaos: worker %d crashing on schedule", os.getpid())
        os._exit(CRASH_EXIT_CODE)
    elif action.kind == "hang":
        logger.warning(
            "chaos: worker %d hanging for %.1fs on schedule",
            os.getpid(), action.hang_s,
        )
        time.sleep(action.hang_s)
    elif action.kind == "drop_store_entry":
        from repro.store.core import default_store

        store = default_store()
        if store.enabled:
            logger.warning("chaos: dropping store entry %s", action.store_key)
            store.invalidate(action.store_key)


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic schedule of faults over a sweep's work units.

    ``actions`` maps work-unit index (the sweep's deterministic unit
    construction order) to the action injected into that unit's task.
    ``drop_store_keys`` are artifact-store entries the sweep deletes
    up front, before spawning workers — rehydration then exercises the
    recorded-recipe retrain fallback.
    """

    actions: Mapping[int, ChaosAction] = field(default_factory=dict)
    drop_store_keys: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", dict(self.actions))
        object.__setattr__(
            self, "drop_store_keys", tuple(self.drop_store_keys)
        )
        for index, action in self.actions.items():
            if index < 0 or not isinstance(action, ChaosAction):
                raise ConfigurationError(
                    f"bad chaos schedule entry {index!r}: {action!r}"
                )

    def action_for(self, unit_index: int, attempt: int) -> Optional[ChaosAction]:
        """The action (if any) firing for this unit on this attempt."""
        action = self.actions.get(unit_index)
        if action is not None and action.on_attempt == attempt:
            return action
        return None

    @property
    def empty(self) -> bool:
        """Whether this plan perturbs nothing."""
        return not self.actions and not self.drop_store_keys

    @classmethod
    def for_units(
        cls,
        n_units: int,
        *,
        crash_fraction: float = 0.0,
        hang_units: int = 0,
        hang_s: float = 60.0,
        seed: int = 0,
    ) -> "ChaosPlan":
        """A reproducible crash/hang schedule over ``n_units`` units.

        ``crash_fraction`` of the units (rounded up, so any nonzero
        fraction kills at least one) crash on first attempt;
        ``hang_units`` additional units hang instead.  Victim selection
        is a seeded permutation — the same arguments always build the
        same plan.
        """
        if not 0.0 <= crash_fraction <= 1.0:
            raise ConfigurationError(
                f"crash_fraction must be in [0, 1], got {crash_fraction}"
            )
        if hang_units < 0:
            raise ConfigurationError(f"hang_units must be >= 0, got {hang_units}")
        n_crash = int(np.ceil(crash_fraction * n_units)) if crash_fraction else 0
        n_hang = min(hang_units, max(0, n_units - n_crash))
        order = np.random.default_rng(seed).permutation(n_units)
        actions: Dict[int, ChaosAction] = {}
        for index in order[:n_crash]:
            actions[int(index)] = ChaosAction(kind="crash")
        for index in order[n_crash:n_crash + n_hang]:
            actions[int(index)] = ChaosAction(kind="hang", hang_s=hang_s)
        return cls(actions=actions)
