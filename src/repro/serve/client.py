"""Serving clients: simulated devices, replay tapes, load generation.

The client side of :mod:`repro.serve` plays the *device*: it owns the
node physics (harvesters, capacitors, NVPs — the real
:class:`~repro.wsn.node.SensorNode` objects an offline experiment would
build) and streams scheduler-visible states plus per-slot reports to the
server, which owns the decision core.  Two modes:

* :func:`live_session` — lockstep: the device steps its physics against
  the active set the server's last decision piggybacked, one round-trip
  per slot.  This is the deployment shape, and the byte-identity anchor:
  no decision logic runs client-side, yet the served decision stream
  must equal the offline ``HARExperiment.run`` decisions on the same
  timeline.
* :func:`replay_session` — throughput: a prerecorded
  :class:`ReplayTape` (every frame precomputed by a local device +
  engine pair) is pipelined at full speed while a concurrent reader
  drains decisions, so the server's queue — not the network round-trip
  — is the limit.  :func:`run_load` fans N of these out concurrently
  and reduces them to a :class:`LoadStats`, whose ``sessions_per_core``
  is the headline ``benchmarks/bench_serve.py`` tracks: a real device
  produces one window per 2.56 s, so a server deciding W windows/s can
  carry ``W x 2.56`` live sessions per core.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.core.engine import NodeSlotState
from repro.core.policies import PolicySpec
from repro.errors import ServeError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    policy_to_wire,
    read_frame,
    report_to_wire,
    states_to_wire,
    validate_frame,
    write_frame,
)
from repro.serve.session import ServeProfile
from repro.sim.predcache import build_run_material, default_subject
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "DeviceSim",
    "ReplayTape",
    "SessionResult",
    "LoadStats",
    "record_tape",
    "live_session",
    "replay_session",
    "run_load",
]


class DeviceSim:
    """Client-side node physics for one device's timeline.

    Builds the same :class:`~repro.wsn.node.SensorNode` fleet and run
    material (timeline, windows, batched softmax) an offline
    ``HARExperiment.run(policy, seed=...)`` would, and steps them
    slot by slot under an externally supplied active set.  Because the
    construction path is shared, a device driven by a served decision
    stream traverses byte-identical physics to the offline run.
    """

    def __init__(
        self,
        experiment: Any,
        *,
        seed: Optional[int] = None,
        n_windows: Optional[int] = None,
        subject: Optional[Any] = None,
    ) -> None:
        config = experiment.config
        if n_windows is not None:
            config = replace(config, n_windows=n_windows)
        self.config = config
        self.seed = experiment.seed if seed is None else int(seed)
        self.subject = subject or default_subject(experiment.dataset)
        self.material = build_run_material(
            experiment.dataset,
            experiment.bundle,
            self.seed,
            n_windows=config.n_windows,
            dwell_scale=config.dwell_scale,
            use_pruned_models=config.use_pruned_models,
            subject=self.subject,
            with_predictions=True,
        )
        factory = SeedSequenceFactory(self.seed)
        self.nodes = experiment._build_nodes(factory, config)
        for node in self.nodes:
            node.prediction_cache = self.material.probabilities[node.node_id]
        self.n_windows = config.n_windows

    def states(self) -> Dict[int, NodeSlotState]:
        """Scheduler-visible state of every node, construction order."""
        return {
            node.node_id: NodeSlotState(
                energy_j=node.stored_energy_j,
                ready=node.can_start_inference(),
            )
            for node in self.nodes
        }

    def step(self, slot: int, active: Sequence[int]) -> List[Any]:
        """Run one slot's physics; returns the outcomes, node order."""
        active_set = set(active)
        outcomes = []
        for node in self.nodes:
            if node.node_id in active_set:
                outcomes.append(
                    node.active_slot(slot, self.material.windows[node.node_id][slot])
                )
            else:
                node.idle_slot(slot)
        return outcomes


@dataclass
class ReplayTape:
    """A device session, prerecorded frame by frame.

    Produced by :func:`record_tape` running a local device + engine
    pair; replaying the tape through a server must reproduce
    ``expected_labels`` / ``expected_active`` exactly (under the
    ``block`` overload policy)."""

    profile: str
    policy: Dict[str, Any]
    seed: int
    n_windows: int
    window_duration_s: float
    hello: Dict[str, Any]
    windows: List[Dict[str, Any]]
    expected_labels: List[Optional[int]]
    expected_active: List[List[int]]


def record_tape(
    experiment: Any,
    policy: PolicySpec,
    *,
    profile: str = "default",
    seed: Optional[int] = None,
    n_windows: Optional[int] = None,
) -> ReplayTape:
    """Precompute one session's frames and expected decision stream."""
    sim = DeviceSim(experiment, seed=seed, n_windows=n_windows)
    engine = ServeProfile(
        name=profile,
        dataset=experiment.dataset,
        bundle=experiment.bundle,
        config=sim.config,
    ).build_engine(policy)
    n = sim.n_windows
    states = sim.states()
    hello = {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "profile": profile,
        "policy": policy_to_wire(policy),
        "seed": sim.seed,
        "n_windows": n,
        "states": states_to_wire(states),
    }
    active = engine.begin_slot(0, states)
    frames: List[Dict[str, Any]] = []
    labels: List[Optional[int]] = []
    actives: List[List[int]] = [list(active)]
    for slot in range(n):
        outcomes = sim.step(slot, active)
        frame: Dict[str, Any] = {
            "type": "window",
            "slot": slot,
            "reports": [report_to_wire(outcome) for outcome in outcomes],
        }
        labels.append(engine.finish_slot(slot, outcomes, receive=True))
        if slot + 1 < n:
            states = sim.states()
            frame["states"] = states_to_wire(states)
            active = engine.begin_slot(slot + 1, states)
            actives.append(list(active))
        frames.append(frame)
    return ReplayTape(
        profile=profile,
        policy=policy_to_wire(policy),
        seed=sim.seed,
        n_windows=n,
        window_duration_s=experiment.dataset.spec.window_duration_s,
        hello=hello,
        windows=frames,
        expected_labels=labels,
        expected_active=actives,
    )


@dataclass
class SessionResult:
    """One client session's observed decision stream."""

    labels: List[Optional[int]] = field(default_factory=list)
    actives: List[List[int]] = field(default_factory=list)
    shed: List[bool] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Non-shed decisions/actives differing from the tape's expectation
    #: (meaningful under the ``block`` policy, where it must be 0).
    mismatches: int = 0


def _expect(frame: Optional[Dict[str, Any]], kind: str) -> Dict[str, Any]:
    if frame is None:
        raise ServeError(f"server closed while awaiting {kind!r}")
    got = validate_frame(frame)
    if got == "error":
        raise ServeError(f"server error: {frame['message']}")
    if got != kind:
        raise ServeError(f"expected {kind!r} frame, got {got!r}")
    return frame


async def live_session(
    host: str,
    port: int,
    experiment: Any,
    policy: PolicySpec,
    *,
    profile: str = "default",
    seed: Optional[int] = None,
    n_windows: Optional[int] = None,
) -> SessionResult:
    """Lockstep device session: physics here, decisions on the server."""
    sim = DeviceSim(experiment, seed=seed, n_windows=n_windows)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_frame(
            writer,
            {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "profile": profile,
                "policy": policy_to_wire(policy),
                "seed": sim.seed,
                "n_windows": sim.n_windows,
                "states": states_to_wire(sim.states()),
            },
        )
        ack = _expect(await read_frame(reader), "hello_ack")
        active: Sequence[int] = ack["active"]
        result = SessionResult(actives=[list(active)])
        for slot in range(sim.n_windows):
            outcomes = sim.step(slot, active)
            frame: Dict[str, Any] = {
                "type": "window",
                "slot": slot,
                "reports": [report_to_wire(outcome) for outcome in outcomes],
            }
            if slot + 1 < sim.n_windows:
                frame["states"] = states_to_wire(sim.states())
            await write_frame(writer, frame)
            decision = _expect(await read_frame(reader), "decision")
            result.labels.append(decision["label"])
            result.shed.append(bool(decision["shed"]))
            if decision["active_next"] is not None:
                active = decision["active_next"]
                result.actives.append(list(active))
        await write_frame(writer, {"type": "bye"})
        result.stats = _expect(await read_frame(reader), "bye_ack")["stats"]
        return result
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def replay_session(
    host: str, port: int, tape: ReplayTape, *, check: bool = True
) -> SessionResult:
    """Pipelined tape replay: frames stream while a reader drains.

    The writer never waits for decisions, so the server's queue (and
    its overload policy) is what paces the exchange — the shape that
    measures server throughput rather than round-trip latency.
    """
    reader, writer = await asyncio.open_connection(host, port)

    async def consume() -> SessionResult:
        ack = _expect(await read_frame(reader), "hello_ack")
        result = SessionResult(actives=[list(ack["active"])])
        while True:
            frame = await read_frame(reader)
            if frame is None:
                raise ServeError("server closed mid-replay")
            kind = validate_frame(frame)
            if kind == "decision":
                result.labels.append(frame["label"])
                result.shed.append(bool(frame["shed"]))
                if frame["active_next"] is not None:
                    result.actives.append(list(frame["active_next"]))
            elif kind == "bye_ack":
                result.stats = frame["stats"]
                return result
            elif kind == "error":
                raise ServeError(f"server error: {frame['message']}")
            else:
                raise ServeError(f"unexpected {kind!r} frame mid-replay")

    consumer = asyncio.ensure_future(consume())
    try:
        await write_frame(writer, tape.hello)
        for frame in tape.windows:
            await write_frame(writer, frame)
        await write_frame(writer, {"type": "bye"})
        result = await consumer
    except BaseException:
        consumer.cancel()
        try:
            await consumer
        except (asyncio.CancelledError, Exception):
            pass
        raise
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if check:
        for index, label in enumerate(result.labels):
            if result.shed[index]:
                continue
            if label != tape.expected_labels[index]:
                result.mismatches += 1
        for expected, got in zip(tape.expected_active, result.actives):
            if expected != got:
                result.mismatches += 1
    return result


@dataclass
class LoadStats:
    """Aggregate of one load-generation round."""

    sessions: int
    windows: int
    decisions: int
    shed: int
    mismatches: int
    wall_s: float
    windows_per_s: float
    #: Live sessions one server core can carry in real time: a device
    #: emits one window per ``window_duration_s``, so throughput times
    #: window duration is the sustainable concurrent-session count.
    sessions_per_core: float


async def run_load(
    host: str,
    port: int,
    tapes: Sequence[ReplayTape],
    n_sessions: int,
    *,
    check: bool = True,
) -> LoadStats:
    """Replay ``n_sessions`` concurrent sessions round-robin over tapes."""
    if not tapes:
        raise ServeError("run_load needs at least one tape")
    start = time.perf_counter()
    results = await asyncio.gather(
        *(
            replay_session(host, port, tapes[index % len(tapes)], check=check)
            for index in range(n_sessions)
        )
    )
    wall_s = time.perf_counter() - start
    windows = sum(int(result.stats.get("windows", 0)) for result in results)
    decisions = sum(int(result.stats.get("decisions", 0)) for result in results)
    shed = sum(int(result.stats.get("shed", 0)) for result in results)
    mismatches = sum(result.mismatches for result in results)
    windows_per_s = windows / wall_s if wall_s > 0 else 0.0
    return LoadStats(
        sessions=n_sessions,
        windows=windows,
        decisions=decisions,
        shed=shed,
        mismatches=mismatches,
        wall_s=wall_s,
        windows_per_s=windows_per_s,
        sessions_per_core=windows_per_s * tapes[0].window_duration_s,
    )
