"""Policy grids for Figs. 4/5 and Table I."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.policies import (
    Baseline1,
    Baseline2,
    BaselineSpec,
    PolicySpec,
    aas_policy,
    aasr_policy,
    origin_policy,
    rr_policy,
)
from repro.datasets.activities import Activity
from repro.errors import ConfigurationError
from repro.sim.baselines import BaselineResult, evaluate_baseline
from repro.sim.experiment import HARExperiment
from repro.sim.results import ExperimentResult


def paper_policy_grid(rr_lengths: Sequence[int] = (3, 6, 9, 12)) -> List[PolicySpec]:
    """The full Fig. 5 ladder: RR / AAS / AASR / Origin at each length."""
    grid: List[PolicySpec] = []
    for rr_length in rr_lengths:
        grid.append(rr_policy(rr_length))
        grid.append(aas_policy(rr_length))
        grid.append(aasr_policy(rr_length))
        grid.append(origin_policy(rr_length))
    return grid


@dataclass
class SweepResult:
    """Results of a policy grid plus both baselines."""

    activities: List[Activity]
    policies: Dict[str, ExperimentResult] = field(default_factory=dict)
    baselines: Dict[str, BaselineResult] = field(default_factory=dict)

    def policy(self, name: str) -> ExperimentResult:
        """Result of one policy by display name."""
        try:
            return self.policies[name]
        except KeyError as error:
            raise ConfigurationError(
                f"no policy named {name!r}; have {sorted(self.policies)}"
            ) from error

    def baseline(self, name: str) -> BaselineResult:
        """Result of one baseline by display name."""
        try:
            return self.baselines[name]
        except KeyError as error:
            raise ConfigurationError(
                f"no baseline named {name!r}; have {sorted(self.baselines)}"
            ) from error

    def accuracy_table(self) -> Dict[str, Dict[Activity, float]]:
        """``{policy/baseline name: {activity: accuracy}}``.

        Policies report classification-*event* accuracy (the paper's
        regime — see :attr:`ExperimentResult.event_accuracy`); for the
        fully-powered baselines every window is an event, so their
        window accuracy is the same quantity.
        """
        table: Dict[str, Dict[Activity, float]] = {}
        for name, result in self.policies.items():
            table[name] = result.per_activity_event_accuracy()
        for name, result in self.baselines.items():
            table[name] = result.per_activity_accuracy()
        return table

    def overall_accuracy(self) -> Dict[str, float]:
        """Overall (event) accuracy per configuration."""
        overall = {name: r.event_accuracy for name, r in self.policies.items()}
        overall.update(
            {name: r.overall_accuracy for name, r in self.baselines.items()}
        )
        return overall

    def mean_improvement(
        self, policy_name: str, baseline_name: str
    ) -> float:
        """Mean per-activity accuracy delta, in percentage points.

        This is how the paper states "RR12-Origin is 2.72 more accurate
        than Baseline-2" (Table I's vs columns, averaged).
        """
        policy_acc = self.policy(policy_name).per_activity_event_accuracy()
        base_acc = self.baseline(baseline_name).per_activity_accuracy()
        deltas = [
            (policy_acc[activity] - base_acc[activity]) * 100.0
            for activity in self.activities
        ]
        return float(np.mean(deltas))


class PolicySweep:
    """Runs a list of policies (plus baselines) on one experiment.

    Averaging over ``n_seeds`` independent runs (different timelines and
    traces, same trained models) stabilizes the reported accuracies.
    """

    def __init__(
        self,
        experiment: HARExperiment,
        *,
        n_seeds: int = 1,
        include_baselines: bool = True,
    ) -> None:
        if n_seeds < 1:
            raise ConfigurationError(f"n_seeds must be >= 1, got {n_seeds}")
        self.experiment = experiment
        self.n_seeds = int(n_seeds)
        self.include_baselines = bool(include_baselines)

    def run(
        self,
        policies: Optional[Sequence[PolicySpec]] = None,
        *,
        seed: Optional[int] = None,
    ) -> SweepResult:
        """Run the grid; multi-seed runs are merged slot-wise."""
        policies = list(policies) if policies is not None else paper_policy_grid()
        base_seed = self.experiment.seed if seed is None else int(seed)
        result = SweepResult(activities=list(self.experiment.dataset.spec.activities))

        for spec in policies:
            runs = [
                self.experiment.run(spec, seed=base_seed + offset)
                for offset in range(self.n_seeds)
            ]
            result.policies[spec.name] = _merge_runs(runs)

        if self.include_baselines:
            for baseline in (Baseline1, Baseline2):
                runs = [
                    self._run_baseline(baseline, base_seed + offset)
                    for offset in range(self.n_seeds)
                ]
                result.baselines[baseline.name] = _merge_baselines(runs)
        return result

    def _run_baseline(self, baseline: BaselineSpec, seed: int) -> BaselineResult:
        return evaluate_baseline(
            self.experiment.dataset,
            self.experiment.bundle,
            baseline,
            n_windows=self.experiment.config.n_windows,
            seed=seed,
            dwell_scale=self.experiment.config.dwell_scale,
        )


def _merge_runs(runs: List[ExperimentResult]) -> ExperimentResult:
    """Concatenate multi-seed runs into one result."""
    merged = ExperimentResult(
        policy_name=runs[0].policy_name, activities=runs[0].activities
    )
    for run in runs:
        merged.records.extend(run.records)
        merged.comm_energy_j += run.comm_energy_j
        merged.confidence_updates += run.confidence_updates
    merged.node_stats = runs[-1].node_stats
    return merged


def _merge_baselines(runs: List[BaselineResult]) -> BaselineResult:
    """Concatenate multi-seed baseline runs."""
    return BaselineResult(
        baseline_name=runs[0].baseline_name,
        activities=runs[0].activities,
        true_labels=np.concatenate([run.true_labels for run in runs]),
        predicted_labels=np.concatenate([run.predicted_labels for run in runs]),
    )
