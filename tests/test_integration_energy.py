"""Cross-module energy-accounting integration tests."""

import numpy as np
import pytest

from repro.core.policies import naive_policy, origin_policy, rr_policy


class TestEnergyAccounting:
    def test_nodes_cannot_spend_more_than_harvested(self, tiny_experiment):
        result = tiny_experiment.run(rr_policy(3), seed=8)
        for stats in result.node_stats.values():
            # Capacitors start empty: consumption is bounded by harvest.
            assert stats.consumed_j <= stats.harvested_j + 1e-12

    def test_idle_nodes_only_harvest(self, tiny_experiment):
        result = tiny_experiment.run(rr_policy(12), seed=8)
        total_active = sum(s.active_slots for s in result.node_stats.values())
        compute_slots = sum(1 for r in result.records if r.active_nodes)
        assert total_active == compute_slots

    def test_naive_spends_more_than_rr(self, tiny_experiment):
        naive = tiny_experiment.run(naive_policy(), seed=8)
        rr = tiny_experiment.run(rr_policy(12), seed=8)
        naive_spend = sum(s.consumed_j for s in naive.node_stats.values())
        rr_spend = sum(s.consumed_j for s in rr.node_stats.values())
        assert naive_spend > rr_spend

    def test_completions_never_exceed_attempts(self, tiny_experiment):
        for spec in (rr_policy(3), origin_policy(6)):
            result = tiny_experiment.run(spec, seed=9)
            for record in result.records:
                assert 0 <= record.completions <= record.attempts

    def test_harvest_scales_with_trace(self, tiny_experiment):
        from dataclasses import replace

        saved = tiny_experiment.config
        try:
            tiny_experiment.config = replace(saved, trace_scale=1.0)
            base = tiny_experiment.run(rr_policy(3), seed=10)
            tiny_experiment.config = replace(saved, trace_scale=3.0)
            rich = tiny_experiment.run(rr_policy(3), seed=10)
        finally:
            tiny_experiment.config = saved
        base_h = sum(s.harvested_j for s in base.node_stats.values())
        rich_h = sum(s.harvested_j for s in rich.node_stats.values())
        # Richer trace harvests more (not exactly 3x: capacitor ceiling).
        assert rich_h > base_h

    def test_completion_rate_rises_with_trace_scale(self, tiny_experiment):
        from dataclasses import replace

        saved = tiny_experiment.config
        try:
            tiny_experiment.config = replace(saved, trace_scale=0.4)
            poor = tiny_experiment.run(rr_policy(3), seed=10)
            tiny_experiment.config = replace(saved, trace_scale=4.0)
            rich = tiny_experiment.run(rr_policy(3), seed=10)
        finally:
            tiny_experiment.config = saved
        assert rich.completion_rate >= poor.completion_rate
