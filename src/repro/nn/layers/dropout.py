"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers.base import Layer, Shape
from repro.utils.rng import SeedLike, as_generator


class Dropout(Layer):
    """Randomly zero activations during training; identity at inference.

    Uses inverted scaling so inference needs no correction.
    """

    def __init__(self, rate: float, seed: SeedLike = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ModelError(f"rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_generator(seed)
        self._cached_mask: Optional[np.ndarray] = None

    def _build(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        if not training or self.rate == 0.0:
            self._cached_mask = None if not training else np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        self._cached_mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_mask is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        return grad_output * self._cached_mask
