"""Tests for repro.energy.traces."""

import numpy as np
import pytest

from repro.energy.traces import OfficeState, PowerTrace, PowerTraceGenerator
from repro.errors import ConfigurationError, EnergyModelError


class TestPowerTrace:
    @pytest.fixture
    def trace(self):
        return PowerTrace(dt_s=0.5, watts=np.array([1.0, 2.0, 3.0, 4.0]))

    def test_duration(self, trace):
        assert trace.duration_s == 2.0

    def test_average_power(self, trace):
        assert trace.average_power_w == 2.5

    def test_energy_whole_trace(self, trace):
        assert trace.energy_between(0.0, 2.0) == pytest.approx(5.0)

    def test_energy_partial_sample(self, trace):
        # Half of the first 1 W sample.
        assert trace.energy_between(0.0, 0.25) == pytest.approx(0.25)

    def test_energy_clamped_outside(self, trace):
        assert trace.energy_between(5.0, 10.0) == 0.0

    def test_energy_additive(self, trace):
        total = trace.energy_between(0.0, 2.0)
        split = trace.energy_between(0.0, 0.8) + trace.energy_between(0.8, 2.0)
        assert split == pytest.approx(total)

    def test_energy_reversed_interval(self, trace):
        with pytest.raises(EnergyModelError):
            trace.energy_between(1.0, 0.5)

    def test_slot_energy_matches_energy_between(self, trace):
        assert trace.slot_energy(1, 0.5) == pytest.approx(
            trace.energy_between(0.5, 1.0)
        )

    def test_slot_energies_fast_path(self, trace):
        slots = trace.slot_energies(1.0)
        np.testing.assert_allclose(slots, [1.5, 3.5])

    def test_slot_energies_fallback(self, trace):
        slots = trace.slot_energies(0.75)
        assert len(slots) == 2
        assert slots[0] == pytest.approx(trace.energy_between(0.0, 0.75))

    def test_scaled(self, trace):
        assert trace.scaled(2.0).average_power_w == 5.0
        with pytest.raises(EnergyModelError):
            trace.scaled(-1.0)

    def test_segment(self, trace):
        seg = trace.segment(0.5, 1.5)
        np.testing.assert_allclose(seg.watts, [2.0, 3.0])

    def test_empty_segment_rejected(self, trace):
        with pytest.raises(EnergyModelError):
            trace.segment(1.0, 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(EnergyModelError):
            PowerTrace(0.5, np.array([-1.0]))


class TestPowerTraceGenerator:
    def test_expected_average_in_wifi_regime(self):
        avg = PowerTraceGenerator().expected_average_power_w()
        assert 5e-6 < avg < 100e-6

    def test_generated_average_close_to_expected(self):
        gen = PowerTraceGenerator()
        trace = gen.generate(3600 * 4, seed=0)
        assert trace.average_power_w == pytest.approx(
            gen.expected_average_power_w(), rel=0.35
        )

    def test_reproducible(self):
        gen = PowerTraceGenerator()
        a = gen.generate(100, seed=3)
        b = gen.generate(100, seed=3)
        np.testing.assert_array_equal(a.watts, b.watts)

    def test_skewed_distribution(self):
        # Indoor RF harvest: median well below mean (bursty).
        trace = PowerTraceGenerator().generate(3600, seed=1)
        assert np.median(trace.watts) < trace.average_power_w

    def test_correlated_traces_share_bursts(self):
        gen = PowerTraceGenerator(fading_sigma=0.0)
        traces = gen.generate_correlated(1800, [1.0, 1.0], seed=2)
        # Without fading, same states + same gain => identical traces.
        np.testing.assert_allclose(traces[0].watts, traces[1].watts)

    def test_correlated_with_fading_still_correlated(self):
        gen = PowerTraceGenerator()
        a, b = gen.generate_correlated(3600, [1.0, 1.0], seed=2)
        corr = np.corrcoef(a.watts, b.watts)[0, 1]
        assert corr > 0.3

    def test_gain_scales(self):
        gen = PowerTraceGenerator(fading_sigma=0.0)
        a, b = gen.generate_correlated(600, [1.0, 2.0], seed=4)
        np.testing.assert_allclose(b.watts, 2.0 * a.watts)

    def test_state_sequence_dwells(self):
        gen = PowerTraceGenerator()
        states = gen.state_sequence(1200, seed=5)
        assert set(states) <= set(OfficeState)
        # Consecutive runs exist (dwell >> dt).
        runs = sum(1 for a, b in zip(states, states[1:]) if a is b)
        assert runs > len(states) * 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PowerTraceGenerator({OfficeState.QUIET: -1.0})
        with pytest.raises(ConfigurationError):
            PowerTraceGenerator(fading_sigma=-0.5)
        with pytest.raises(ConfigurationError):
            PowerTraceGenerator().generate_correlated(10, [], seed=0)
