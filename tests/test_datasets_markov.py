"""Tests for repro.datasets.markov — temporal continuity."""

import pytest

from repro.datasets.activities import Activity
from repro.datasets.markov import (
    ActivitySegment,
    MarkovActivityModel,
    segments_to_window_labels,
)
from repro.errors import ConfigurationError, DatasetError

ACTIVITIES = [Activity.WALKING, Activity.RUNNING, Activity.CYCLING]


class TestActivitySegment:
    def test_end_window(self):
        segment = ActivitySegment(Activity.WALKING, 3, 4)
        assert segment.end_window == 7

    @pytest.mark.parametrize("start,n", [(-1, 2), (0, 0)])
    def test_invalid(self, start, n):
        with pytest.raises(DatasetError):
            ActivitySegment(Activity.WALKING, start, n)


class TestMarkovActivityModel:
    def test_segments_cover_exactly(self):
        model = MarkovActivityModel(ACTIVITIES)
        segments = model.sample_segments(100, seed=0)
        assert segments[0].start_window == 0
        assert segments[-1].end_window == 100

    def test_labels_length(self):
        model = MarkovActivityModel(ACTIVITIES)
        assert len(model.sample_labels(57, seed=1)) == 57

    def test_no_self_switch_between_segments(self):
        model = MarkovActivityModel(ACTIVITIES)
        segments = model.sample_segments(500, seed=2)
        for a, b in zip(segments, segments[1:]):
            assert a.activity is not b.activity

    def test_initial_activity_respected(self):
        model = MarkovActivityModel(ACTIVITIES)
        labels = model.sample_labels(10, seed=3, initial=Activity.CYCLING)
        assert labels[0] is Activity.CYCLING

    def test_continuity_high(self):
        model = MarkovActivityModel(ACTIVITIES)
        assert model.empirical_continuity(5000, seed=0) > 0.85

    def test_dwell_scale_increases_continuity(self):
        short = MarkovActivityModel(ACTIVITIES, dwell_scale=0.5)
        long = MarkovActivityModel(ACTIVITIES, dwell_scale=5.0)
        assert long.empirical_continuity(4000, seed=1) > short.empirical_continuity(
            4000, seed=1
        )

    def test_mean_dwell_windows(self):
        model = MarkovActivityModel(ACTIVITIES, window_duration_s=2.56)
        walking = model.mean_dwell_windows(Activity.WALKING)
        assert walking == pytest.approx(45.0 / 2.56)

    def test_unknown_activity_dwell_raises(self):
        model = MarkovActivityModel(ACTIVITIES)
        with pytest.raises(DatasetError):
            model.mean_dwell_windows(Activity.JUMPING)

    def test_custom_switch_matrix(self):
        switch = {Activity.WALKING: {Activity.RUNNING: 1.0}}
        model = MarkovActivityModel(ACTIVITIES, switch_matrix=switch)
        segments = model.sample_segments(2000, seed=4, initial=Activity.WALKING)
        for a, b in zip(segments, segments[1:]):
            if a.activity is Activity.WALKING:
                assert b.activity is Activity.RUNNING

    def test_reproducible(self):
        model = MarkovActivityModel(ACTIVITIES)
        assert model.sample_labels(50, seed=9) == model.sample_labels(50, seed=9)

    @pytest.mark.parametrize(
        "activities", [[Activity.WALKING], [Activity.WALKING, Activity.WALKING]]
    )
    def test_invalid_activity_sets(self, activities):
        with pytest.raises(ConfigurationError):
            MarkovActivityModel(activities)

    def test_invalid_switch_target(self):
        with pytest.raises(ConfigurationError):
            MarkovActivityModel(
                ACTIVITIES, switch_matrix={Activity.WALKING: {Activity.JUMPING: 1.0}}
            )

    def test_all_zero_switch_row_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkovActivityModel(
                ACTIVITIES, switch_matrix={Activity.WALKING: {Activity.WALKING: 1.0}}
            )


class TestSegmentsToLabels:
    def test_expansion(self):
        segments = [
            ActivitySegment(Activity.WALKING, 0, 2),
            ActivitySegment(Activity.RUNNING, 2, 1),
        ]
        labels = segments_to_window_labels(segments)
        assert labels == [Activity.WALKING, Activity.WALKING, Activity.RUNNING]

    def test_gap_rejected(self):
        segments = [
            ActivitySegment(Activity.WALKING, 0, 2),
            ActivitySegment(Activity.RUNNING, 3, 1),
        ]
        with pytest.raises(DatasetError):
            segments_to_window_labels(segments)
