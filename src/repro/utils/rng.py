"""Deterministic random-number management.

Every stochastic component in the package takes either an integer seed or
a :class:`numpy.random.Generator`.  Experiments that need many independent
streams (one per sensor node, one per user, one for the power trace...)
derive them from a single root seed through
:class:`numpy.random.SeedSequence` spawning, so that

* results are bit-reproducible for a fixed root seed, and
* adding a new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator; an existing generator
    is returned unchanged (not copied), so callers share its stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from ``seed``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        children = seed.spawn(count)
    elif isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        return [np.random.default_rng(seed.integers(0, 2**63)) for _ in range(count)]
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


class SeedSequenceFactory:
    """Named, reproducible seed derivation for a whole experiment.

    The factory hands out independent generators keyed by a string label.
    Two factories built from the same root seed hand out identical streams
    for identical labels, regardless of request order::

        factory = SeedSequenceFactory(root_seed=7)
        trace_rng = factory.generator("power-trace")
        data_rng = factory.generator("dataset/mhealth")
    """

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The integer root seed this factory derives all streams from."""
        return self._root_seed

    def seed_sequence(self, label: str) -> np.random.SeedSequence:
        """Derive the :class:`~numpy.random.SeedSequence` for ``label``."""
        # Hash the label into spawn-key integers so derivation is
        # order-independent and purely a function of (root_seed, label).
        key = [ord(ch) for ch in label]
        return np.random.SeedSequence(entropy=self._root_seed, spawn_key=tuple(key))

    def generator(self, label: str) -> np.random.Generator:
        """A fresh generator for ``label``; same label ⇒ same stream."""
        return np.random.default_rng(self.seed_sequence(label))

    def child(self, label: str) -> "SeedSequenceFactory":
        """A sub-factory whose streams are independent of the parent's."""
        sub_seed = int(self.generator(label).integers(0, 2**31 - 1))
        return SeedSequenceFactory(sub_seed)

    def integers(self, label: str, count: int, high: int = 2**31 - 1) -> List[int]:
        """``count`` reproducible integer seeds in ``[0, high)``."""
        gen = self.generator(label)
        return [int(value) for value in gen.integers(0, high, size=count)]


def iter_batches(items: Iterable, batch_size: int) -> Iterable[list]:
    """Yield lists of at most ``batch_size`` consecutive items.

    >>> list(iter_batches([1, 2, 3, 4, 5], batch_size=2))
    [[1, 2], [3, 4], [5]]
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list = []
    for item in items:
        batch.append(item)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def permutation_indices(rng: Optional[np.random.Generator], count: int) -> np.ndarray:
    """A permutation of ``range(count)``; identity when ``rng`` is ``None``."""
    if rng is None:
        return np.arange(count)
    return rng.permutation(count)
