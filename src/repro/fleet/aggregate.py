"""Streaming, order-invariant aggregation of per-user fleet metrics.

Float addition is not associative, so a naive running sum would make a
cohort's mean depend on shard layout.  Everything here is exact instead:

* :class:`ExactSum` accumulates floats as fixed-point integers
  (every IEEE-754 double is an integer multiple of ``2**-1074``), so
  sums are associative, commutative and reproducible to the bit.
* :class:`FleetDistribution` keeps the *exact* multiset of observed
  values while the number of distinct values is small, and collapses
  deterministically — value by value, independent of insertion order —
  into fixed uniform bins once it exceeds ``max_exact``.  Merging two
  shards' distributions therefore yields byte-identical state whether
  the cohort ran as 1, 3 or N shards, while memory stays
  ``O(max_exact + n_bins)`` regardless of cohort size.
* :class:`FleetAggregate` is a policy x metric table of distributions
  with an exact JSON round trip — the unit the fleet journal
  checkpoints and the runner merges across shards.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import FleetError

__all__ = [
    "ExactSum",
    "FleetDistribution",
    "FleetAggregate",
    "DEFAULT_QUANTILES",
]

#: ``2**1075`` is divisible by every possible ``as_integer_ratio``
#: denominator of a finite double (at most ``2**1074`` for subnormals),
#: so the fixed-point conversion below is exact, not rounded.
_FIXED_SHIFT = 1075

#: Percentiles rendered by the textual summaries.
DEFAULT_QUANTILES = (1.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0)


class ExactSum:
    """An associative sum of floats via fixed-point integer arithmetic.

    ``add`` converts each finite double to the integer
    ``value * 2**1075`` (exact — see :data:`_FIXED_SHIFT`) and adds it
    with unbounded-precision integer arithmetic; ``value`` converts
    back with one correctly-rounded division.  The accumulator is a
    canonical function of the *multiset* of added values, so any
    grouping or ordering of partial sums merges to identical state.
    """

    __slots__ = ("_acc",)

    def __init__(self, acc: int = 0) -> None:
        self._acc = int(acc)

    def add(self, value: float) -> None:
        """Fold one finite float into the sum."""
        value = float(value)
        if not math.isfinite(value):
            raise FleetError(f"cannot accumulate non-finite value {value!r}")
        numerator, denominator = value.as_integer_ratio()
        self._acc += (numerator << _FIXED_SHIFT) // denominator

    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator in (exact, order-invariant)."""
        self._acc += other._acc

    @property
    def value(self) -> float:
        """The sum, rounded once to the nearest double."""
        return self._acc / (1 << _FIXED_SHIFT)

    def to_token(self) -> str:
        """Lossless hex serialization of the accumulator."""
        return hex(self._acc)

    @classmethod
    def from_token(cls, token: str) -> "ExactSum":
        """Rebuild from :meth:`to_token` output."""
        return cls(int(token, 16))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExactSum) and self._acc == other._acc

    def __repr__(self) -> str:
        return f"ExactSum({self.value!r})"


class FleetDistribution:
    """One metric's streaming distribution over a cohort.

    Two internal modes share an exact outer shell (count, min, max and
    an :class:`ExactSum` total):

    * **exact** — a ``Counter`` of observed values.  Percentiles are
      exact nearest-rank statistics.
    * **binned** — once distinct values exceed ``max_exact``, the
      counter collapses into ``n_bins`` uniform bins over ``[lo, hi]``
      (out-of-range values clamp to the edge bins; min/max stay exact).
      Percentiles resolve to bin midpoints.

    The collapse is a pure function of the value multiset — it walks
    values, not insertion history — so ``merge`` commutes with it and
    shard layout cannot leak into the final state.
    """

    __slots__ = (
        "lo",
        "hi",
        "n_bins",
        "max_exact",
        "count",
        "total",
        "min_value",
        "max_value",
        "exact",
        "bins",
    )

    def __init__(
        self,
        lo: float,
        hi: float,
        *,
        n_bins: int = 256,
        max_exact: int = 4096,
    ) -> None:
        if not (math.isfinite(lo) and math.isfinite(hi) and lo < hi):
            raise FleetError(f"need finite lo < hi, got [{lo}, {hi}]")
        if n_bins < 1:
            raise FleetError(f"n_bins must be >= 1, got {n_bins}")
        if max_exact < 0:
            raise FleetError(f"max_exact must be >= 0, got {max_exact}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.n_bins = int(n_bins)
        self.max_exact = int(max_exact)
        self.count = 0
        self.total = ExactSum()
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.exact: Optional[Counter] = Counter()
        self.bins: Optional[List[int]] = None

    # -- ingestion ------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if not math.isfinite(value):
            raise FleetError(f"cannot record non-finite metric value {value!r}")
        self.count += 1
        self.total.add(value)
        self.min_value = value if self.min_value is None else min(self.min_value, value)
        self.max_value = value if self.max_value is None else max(self.max_value, value)
        if self.exact is not None:
            self.exact[value] += 1
            if len(self.exact) > self.max_exact:
                self._collapse()
        else:
            self.bins[self._bin_index(value)] += 1

    def _bin_index(self, value: float) -> int:
        span = self.hi - self.lo
        index = int((value - self.lo) / span * self.n_bins)
        return min(max(index, 0), self.n_bins - 1)

    def _collapse(self) -> None:
        """Exact counter -> fixed bins.  Value-wise, hence order-free."""
        bins = [0] * self.n_bins
        for value, n in self.exact.items():
            bins[self._bin_index(value)] += n
        self.exact = None
        self.bins = bins

    # -- merging --------------------------------------------------------

    def check_compatible(self, other: "FleetDistribution") -> None:
        """Refuse merges across differently-parameterized aggregates."""
        for attr in ("lo", "hi", "n_bins", "max_exact"):
            if getattr(self, attr) != getattr(other, attr):
                raise FleetError(
                    f"incompatible distributions: {attr} "
                    f"{getattr(self, attr)!r} != {getattr(other, attr)!r}"
                )

    def merge(self, other: "FleetDistribution") -> None:
        """Fold ``other`` in.  Result depends only on the value multiset."""
        self.check_compatible(other)
        self.count += other.count
        self.total.merge(other.total)
        if other.min_value is not None:
            self.min_value = (
                other.min_value
                if self.min_value is None
                else min(self.min_value, other.min_value)
            )
        if other.max_value is not None:
            self.max_value = (
                other.max_value
                if self.max_value is None
                else max(self.max_value, other.max_value)
            )
        if self.exact is not None and other.exact is not None:
            self.exact.update(other.exact)
            if len(self.exact) > self.max_exact:
                self._collapse()
            return
        if self.exact is not None:
            self._collapse()
        if other.exact is not None:
            for value, n in other.exact.items():
                self.bins[self._bin_index(value)] += n
        else:
            for index, n in enumerate(other.bins):
                self.bins[index] += n

    # -- statistics -----------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact-sum mean (0.0 for an empty distribution)."""
        return self.total.value / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (bin-midpoint once collapsed)."""
        if not 0 <= q <= 100:
            raise FleetError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            raise FleetError("percentile of an empty distribution")
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if self.exact is not None:
            seen = 0
            for value in sorted(self.exact):
                seen += self.exact[value]
                if seen >= rank:
                    return value
            return self.max_value  # unreachable: counts sum to self.count
        seen = 0
        width = (self.hi - self.lo) / self.n_bins
        for index, n in enumerate(self.bins):
            seen += n
            if seen >= rank:
                return self.lo + (index + 0.5) * width
        return self.max_value

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe form; keys and exact entries are sorted."""
        document: Dict[str, Any] = {
            "lo": self.lo,
            "hi": self.hi,
            "n_bins": self.n_bins,
            "max_exact": self.max_exact,
            "count": self.count,
            "total": self.total.to_token(),
            "min": self.min_value,
            "max": self.max_value,
        }
        if self.exact is not None:
            document["exact"] = [
                [value, self.exact[value]] for value in sorted(self.exact)
            ]
        else:
            document["bins"] = list(self.bins)
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FleetDistribution":
        """Rebuild the exact state serialized by :meth:`to_dict`."""
        dist = cls(
            document["lo"],
            document["hi"],
            n_bins=document["n_bins"],
            max_exact=document["max_exact"],
        )
        dist.count = int(document["count"])
        dist.total = ExactSum.from_token(document["total"])
        dist.min_value = document["min"]
        dist.max_value = document["max"]
        if "exact" in document:
            dist.exact = Counter(
                {float(value): int(n) for value, n in document["exact"]}
            )
            dist.bins = None
        else:
            dist.exact = None
            dist.bins = [int(n) for n in document["bins"]]
        return dist


class FleetAggregate:
    """Per-policy, per-metric distribution table for one cohort (slice).

    ``bounds`` maps metric name to the ``(lo, hi)`` histogram range —
    derived from the experiment shape by the runner so every shard of a
    cohort constructs identical distributions.  ``add_user`` ingests one
    user's metrics for every policy at once; ``merge`` folds shard
    aggregates together in any order.
    """

    def __init__(
        self,
        *,
        bounds: Mapping[str, Tuple[float, float]],
        n_bins: int = 256,
        max_exact: int = 4096,
    ) -> None:
        if not bounds:
            raise FleetError("aggregate needs at least one metric bound")
        self.bounds: Dict[str, Tuple[float, float]] = {
            name: (float(lo), float(hi)) for name, (lo, hi) in bounds.items()
        }
        self.n_bins = int(n_bins)
        self.max_exact = int(max_exact)
        self.users = 0
        self.shards = 0
        self.policies: Dict[str, Dict[str, FleetDistribution]] = {}

    def _fresh_row(self) -> Dict[str, FleetDistribution]:
        return {
            name: FleetDistribution(
                lo, hi, n_bins=self.n_bins, max_exact=self.max_exact
            )
            for name, (lo, hi) in self.bounds.items()
        }

    # -- ingestion ------------------------------------------------------

    def add_user(self, metrics_by_policy: Mapping[str, Mapping[str, float]]) -> None:
        """Record one user's metric dict per policy."""
        for policy_name, metrics in metrics_by_policy.items():
            row = self.policies.get(policy_name)
            if row is None:
                row = self.policies[policy_name] = self._fresh_row()
            for metric_name, value in metrics.items():
                dist = row.get(metric_name)
                if dist is None:
                    raise FleetError(
                        f"metric {metric_name!r} has no configured bounds "
                        f"(known: {sorted(self.bounds)})"
                    )
                dist.add(value)
        self.users += 1

    # -- merging --------------------------------------------------------

    def merge(self, other: "FleetAggregate") -> None:
        """Fold a shard aggregate in; result is merge-order-invariant."""
        if (
            self.bounds != other.bounds
            or self.n_bins != other.n_bins
            or self.max_exact != other.max_exact
        ):
            raise FleetError("cannot merge aggregates with different layouts")
        self.users += other.users
        self.shards += other.shards
        for policy_name, their_row in other.policies.items():
            row = self.policies.get(policy_name)
            if row is None:
                row = self.policies[policy_name] = self._fresh_row()
            for metric_name, theirs in their_row.items():
                row[metric_name].merge(theirs)

    # -- access ---------------------------------------------------------

    def distribution(self, policy: str, metric: str) -> FleetDistribution:
        """The distribution of ``metric`` under ``policy``."""
        try:
            return self.policies[policy][metric]
        except KeyError:
            raise FleetError(
                f"no distribution for policy={policy!r} metric={metric!r} "
                f"(policies: {sorted(self.policies)})"
            ) from None

    @property
    def policy_names(self) -> List[str]:
        """Recorded policy names, sorted."""
        return sorted(self.policies)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Exact JSON-safe form (the journal/bench payload)."""
        return {
            "schema_version": 1,
            "n_bins": self.n_bins,
            "max_exact": self.max_exact,
            "users": self.users,
            "shards": self.shards,
            "bounds": {name: list(pair) for name, pair in sorted(self.bounds.items())},
            "policies": {
                policy_name: {
                    metric_name: row[metric_name].to_dict()
                    for metric_name in sorted(row)
                }
                for policy_name, row in sorted(self.policies.items())
            },
        }

    def to_json(self) -> str:
        """Canonical byte representation of the full state."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def stats_json(self) -> str:
        """Canonical bytes of the *statistics* — the layout-invariance
        contract's probe.

        Everything except ``shards`` (how many pieces the cohort
        happened to run in — provenance, not a population statistic) is
        byte-identical across any shard layout, merge order, worker
        count or journal resume.
        """
        document = self.to_dict()
        del document["shards"]
        return json.dumps(document, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "FleetAggregate":
        """Rebuild the exact state serialized by :meth:`to_dict`."""
        version = document.get("schema_version")
        if version != 1:
            raise FleetError(f"unsupported fleet aggregate schema {version!r}")
        aggregate = cls(
            bounds={
                name: (pair[0], pair[1])
                for name, pair in document["bounds"].items()
            },
            n_bins=document["n_bins"],
            max_exact=document["max_exact"],
        )
        aggregate.users = int(document["users"])
        aggregate.shards = int(document["shards"])
        for policy_name, row in document["policies"].items():
            aggregate.policies[policy_name] = {
                metric_name: FleetDistribution.from_dict(entry)
                for metric_name, entry in row.items()
            }
        return aggregate

    # -- reporting ------------------------------------------------------

    def summary_lines(
        self,
        metrics: Iterable[str] = ("event_accuracy", "completion_rate", "accuracy_drop"),
        quantiles: Tuple[float, ...] = DEFAULT_QUANTILES,
    ) -> List[str]:
        """A compact per-policy percentile table."""
        lines = [f"cohort: {self.users} user(s) across {self.shards} shard(s)"]
        header = "  ".join(f"p{q:g}" for q in quantiles)
        for policy_name in self.policy_names:
            lines.append(f"policy {policy_name}:")
            for metric_name in metrics:
                dist = self.policies[policy_name].get(metric_name)
                if dist is None or not dist.count:
                    continue
                cells = "  ".join(
                    f"{dist.percentile(q):.4f}" for q in quantiles
                )
                lines.append(
                    f"  {metric_name:<18} mean={dist.mean:.4f}  "
                    f"[{header}] = [{cells}]"
                )
        return lines
