"""Session state machine: transport-free frame-in, frames-out tests."""

from __future__ import annotations

import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import record_tape
from repro.serve.session import EngineCatalog, ServeProfile, Session


@pytest.fixture(scope="module")
def catalog(tiny_experiment):
    return EngineCatalog(
        [ServeProfile.from_experiment("default", tiny_experiment)]
    )


@pytest.fixture(scope="module")
def tape(tiny_experiment):
    return record_tape(tiny_experiment, origin_policy(6), seed=9)


def fresh(catalog, **kwargs) -> Session:
    return Session(catalog, **kwargs)


class TestHappyPath:
    def test_replay_reproduces_expected_stream(self, catalog, tape):
        session = fresh(catalog)
        (ack,) = session.handle(tape.hello)
        assert ack["type"] == "hello_ack"
        assert ack["active"] == tape.expected_active[0]
        labels, actives = [], []
        for frame in tape.windows:
            (decision,) = session.handle(frame)
            assert decision["type"] == "decision"
            assert decision["shed"] is False
            labels.append(decision["label"])
            if decision["active_next"] is not None:
                actives.append(decision["active_next"])
        assert labels == tape.expected_labels
        assert actives == tape.expected_active[1:]
        assert session.handle({"type": "bye"})[0]["type"] == "bye_ack"
        assert session.closed

    def test_final_window_carries_no_next_active(self, catalog, tape):
        session = fresh(catalog)
        session.handle(tape.hello)
        for frame in tape.windows:
            (decision,) = session.handle(frame)
        assert decision["active_next"] is None

    def test_bye_ack_stats_account_for_every_window(self, catalog, tape):
        metrics = MetricsRegistry()
        session = fresh(catalog, session_id="sess-42", metrics=metrics)
        session.handle(tape.hello)
        for index, frame in enumerate(tape.windows):
            session.handle(frame, shed=(index % 3 == 0))
        (bye_ack,) = session.handle({"type": "bye"})
        stats = bye_ack["stats"]
        assert stats["session"] == "sess-42"
        assert stats["windows"] == len(tape.windows)
        assert stats["decisions"] + stats["shed"] == stats["windows"]
        counters = metrics.to_dict()["counters"]
        assert counters["serve.windows"] == len(tape.windows)
        assert counters["serve.decisions"] == stats["decisions"]
        assert counters["serve.windows.shed"] == stats["shed"]


class TestShedding:
    def test_shed_window_repeats_last_decision(self, catalog, tape):
        session = fresh(catalog)
        session.handle(tape.hello)
        (first,) = session.handle(tape.windows[0])
        (shed,) = session.handle(tape.windows[1], shed=True)
        assert shed["shed"] is True
        assert shed["label"] == first["label"]  # stale, not recomputed
        assert shed["active_next"] is not None  # scheduling continues
        assert session.shed_windows == 1 and session.decisions == 1

    def test_shed_keeps_slot_cursor_moving(self, catalog, tape):
        session = fresh(catalog)
        session.handle(tape.hello)
        session.handle(tape.windows[0], shed=True)
        (decision,) = session.handle(tape.windows[1])
        assert decision["slot"] == 1


class TestViolations:
    def test_window_before_hello(self, catalog, tape):
        with pytest.raises(ServeError, match="before hello"):
            fresh(catalog).handle(tape.windows[0])

    def test_duplicate_hello(self, catalog, tape):
        session = fresh(catalog)
        session.handle(tape.hello)
        with pytest.raises(ServeError, match="duplicate hello"):
            session.handle(tape.hello)

    def test_version_mismatch(self, catalog, tape):
        bad = dict(tape.hello, version=99)
        with pytest.raises(ServeError, match="version 99"):
            fresh(catalog).handle(bad)

    def test_unknown_profile(self, catalog, tape):
        bad = dict(tape.hello, profile="nonesuch")
        with pytest.raises(ServeError, match="unknown profile 'nonesuch'"):
            fresh(catalog).handle(bad)

    def test_bad_n_windows(self, catalog, tape):
        bad = dict(tape.hello, n_windows=0)
        with pytest.raises(ServeError, match="n_windows"):
            fresh(catalog).handle(bad)

    def test_states_out_of_order(self, catalog, tape):
        shuffled = dict(reversed(list(tape.hello["states"].items())))
        bad = dict(tape.hello, states=shuffled)
        with pytest.raises(ServeError, match="in order"):
            fresh(catalog).handle(bad)

    def test_out_of_order_window(self, catalog, tape):
        session = fresh(catalog)
        session.handle(tape.hello)
        with pytest.raises(ServeError, match="out-of-order"):
            session.handle(tape.windows[1])

    def test_replayed_window_rejected(self, catalog, tape):
        session = fresh(catalog)
        session.handle(tape.hello)
        session.handle(tape.windows[0])
        with pytest.raises(ServeError, match="out-of-order"):
            session.handle(tape.windows[0])

    def test_states_with_final_window_rejected(self, catalog, tiny_experiment):
        short = record_tape(tiny_experiment, rr_policy(3), seed=9, n_windows=2)
        session = fresh(catalog)
        session.handle(short.hello)
        session.handle(short.windows[0])
        bad = dict(short.windows[1], states=short.windows[0]["states"])
        with pytest.raises(ServeError, match="final window"):
            session.handle(bad)

    def test_bye_after_close(self, catalog, tape):
        session = fresh(catalog)
        session.handle(tape.hello)
        session.handle({"type": "bye"})
        with pytest.raises(ServeError, match="bye after close"):
            session.handle({"type": "bye"})

    def test_server_to_client_frames_rejected(self, catalog):
        frame = {
            "type": "decision",
            "slot": 0,
            "label": None,
            "shed": False,
            "active_next": None,
        }
        with pytest.raises(ServeError, match="may not send"):
            fresh(catalog).handle(frame)

    def test_engine_untouched_after_violation(self, catalog, tape):
        # A rejected frame must not half-advance the slot cursor.
        session = fresh(catalog)
        session.handle(tape.hello)
        with pytest.raises(ServeError):
            session.handle(tape.windows[1])
        (decision,) = session.handle(tape.windows[0])
        assert decision["label"] == tape.expected_labels[0]
