"""Tests for the content-addressed artifact store core.

Everything here exercises the store machinery with small synthetic
payloads — no model training.  Bundle (de)hydration and the simulation
wiring are covered in ``test_store_bundles.py``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ReproError, StoreError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observability
from repro.obs.summarize import _metrics_section
from repro.store import (
    ENV_STORE_DIR,
    ENV_STORE_SWITCH,
    ArtifactStore,
    FileLock,
    STORE_SCHEMA_VERSION,
    default_store,
    default_store_root,
    store_enabled_by_env,
    trained_bundle_key,
)
from repro.store.__main__ import main as store_cli
from repro.store.core import MANIFEST_NAME


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _put_text(store: ArtifactStore, key: str, text: str = "payload"):
    """Publish one tiny entry whose single file holds ``text``."""

    def stage(tmpdir):
        with open(os.path.join(tmpdir, "data.txt"), "w") as handle:
            handle.write(text)
        return {"note": text}

    return store.put(key, stage, kind="test")


def _put_in_subprocess(root: str, key: str, text: str) -> bool:
    """Module-level so ProcessPoolExecutor can pickle it."""
    entry = _put_text(ArtifactStore(root), key, text)
    return entry is not None


KEY_A = "a" * 32
KEY_B = "b" * 32


class TestErrors:
    def test_store_error_hierarchy(self):
        assert issubclass(StoreError, ReproError)
        assert issubclass(StoreError, RuntimeError)


class TestFileLock:
    def test_blocks_second_locker(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path):
            with pytest.raises(StoreError):
                FileLock(path, timeout_s=0.1).acquire()
        # Released: a fresh locker succeeds immediately.
        with FileLock(path, timeout_s=0.1):
            pass

    def test_double_acquire_rejected(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        with lock:
            with pytest.raises(StoreError):
                lock.acquire()

    def test_env_timeout_override(self, tmp_path, monkeypatch):
        from repro.store.locks import ENV_LOCK_TIMEOUT, default_lock_timeout_s

        monkeypatch.setenv(ENV_LOCK_TIMEOUT, "0.1")
        path = str(tmp_path / "x.lock")
        lock = FileLock(path)  # timeout picked up from the environment
        assert lock.timeout_s == 0.1
        with FileLock(path):
            with pytest.raises(StoreError, match=ENV_LOCK_TIMEOUT):
                FileLock(path).acquire()
        # Explicit timeout_s still beats the environment.
        assert FileLock(path, timeout_s=5.0).timeout_s == 5.0
        # Unset: back to the default.
        monkeypatch.delenv(ENV_LOCK_TIMEOUT)
        assert default_lock_timeout_s() == 60.0

    def test_env_timeout_rejects_garbage(self, monkeypatch):
        from repro.store.locks import ENV_LOCK_TIMEOUT, default_lock_timeout_s

        for bad in ("soon", "-3", "0"):
            monkeypatch.setenv(ENV_LOCK_TIMEOUT, bad)
            with pytest.raises(StoreError, match=ENV_LOCK_TIMEOUT):
                default_lock_timeout_s()


class TestKeys:
    def test_stable_and_sensitive(self, tiny_dataset):
        from repro.nn.energy_model import EnergyCostModel
        from repro.sim.training import TrainingConfig

        kwargs = dict(seed=5, config=TrainingConfig(), cost_model=EnergyCostModel())
        key = trained_bundle_key(tiny_dataset, 160e-6, **kwargs)
        assert key == trained_bundle_key(tiny_dataset, 160e-6, **kwargs)
        assert len(key) == 32 and all(c in "0123456789abcdef" for c in key)
        assert key != trained_bundle_key(tiny_dataset, 170e-6, **kwargs)
        assert key != trained_bundle_key(
            tiny_dataset, 160e-6, seed=6,
            config=TrainingConfig(), cost_model=EnergyCostModel(),
        )
        assert key != trained_bundle_key(
            tiny_dataset, 160e-6, seed=5,
            config=TrainingConfig(epochs=61), cost_model=EnergyCostModel(),
        )

    def test_malformed_key_rejected(self, store):
        for bad in ("", "XYZ", "../escape", "Deadbeef"):
            with pytest.raises(StoreError):
                store.entry_path(bad)


class TestPutGet:
    def test_round_trip(self, store):
        entry = _put_text(store, KEY_A, "hello")
        assert entry is not None
        assert store.contains(KEY_A)
        got = store.get(KEY_A)
        assert got.payload == {"note": "hello"}
        assert got.manifest["schema_version"] == STORE_SCHEMA_VERSION
        with open(got.file_path("data.txt")) as handle:
            assert handle.read() == "hello"
        with pytest.raises(StoreError):
            got.file_path("absent.bin")

    def test_missing_is_none(self, store):
        assert store.get(KEY_A) is None
        assert not store.contains(KEY_A)

    def test_put_race_keeps_winner(self, store):
        _put_text(store, KEY_A, "first")
        _put_text(store, KEY_A, "second")  # loses the race, discarded
        with open(store.get(KEY_A).file_path("data.txt")) as handle:
            assert handle.read() == "first"
        assert store.keys() == [KEY_A]
        # Staging dirs are cleaned either way.
        tmp_dir = os.path.join(store.root, "tmp")
        assert not os.path.isdir(tmp_dir) or os.listdir(tmp_dir) == []

    def test_concurrent_writers_same_key(self, store):
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = list(
                pool.map(
                    _put_in_subprocess,
                    [store.root, store.root],
                    [KEY_A, KEY_A],
                    ["same", "same"],
                )
            )
        assert results == [True, True]
        assert store.keys() == [KEY_A]
        assert store.status(KEY_A).ok

    def test_disabled_store_is_inert(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), enabled=False)
        assert _put_text(store, KEY_A) is None
        assert store.get(KEY_A) is None
        assert not store.contains(KEY_A)
        assert not os.path.isdir(store.root)


class TestIntegrity:
    def test_corruption_is_evicted_as_miss(self, tmp_path):
        obs = Observability()
        store = ArtifactStore(str(tmp_path / "store"), obs=obs)
        entry = _put_text(store, KEY_A, "good")
        with open(entry.file_path("data.txt"), "w") as handle:
            handle.write("evil")  # same size, different bytes
        assert store.get(KEY_A) is None
        assert not store.contains(KEY_A)
        assert obs.metrics.to_dict()["counters"]["store.corrupt"] == 1

    def test_status_names_problems(self, store):
        entry = _put_text(store, KEY_A, "good")
        os.remove(entry.file_path("data.txt"))
        status = store.status(KEY_A)
        assert not status.ok
        assert any("missing file" in problem for problem in status.problems)

    def test_verify_reports_without_deleting(self, store):
        _put_text(store, KEY_A, "good")
        entry = _put_text(store, KEY_B, "good")
        with open(entry.file_path("data.txt"), "w") as handle:
            handle.write("bad!")
        statuses = {status.key: status.ok for status in store.verify()}
        assert statuses == {KEY_A: True, KEY_B: False}
        assert store.keys() == [KEY_A, KEY_B]  # verify never deletes

    def test_schema_mismatch_is_corrupt(self, store):
        entry = _put_text(store, KEY_A)
        manifest_path = os.path.join(entry.path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["schema_version"] = STORE_SCHEMA_VERSION + 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        assert store.get(KEY_A) is None


class TestGC:
    def test_age_expiry(self, store):
        entry = _put_text(store, KEY_A)
        _put_text(store, KEY_B)
        manifest_path = os.path.join(entry.path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["created_utc"] = time.time() - 7200
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        report = store.gc(max_age_s=3600)
        assert report["removed"]["expired"] == [KEY_A]
        assert store.keys() == [KEY_B]

    def test_size_trim_is_lru(self, store):
        _put_text(store, KEY_A, "x" * 100)
        _put_text(store, KEY_B, "y" * 100)
        # Make A recently used, B idle (get creates the recency marker).
        store.get(KEY_B)
        store.get(KEY_A)
        old = time.time() - 3600
        os.utime(os.path.join(store.entry_path(KEY_B), ".last_used"), (old, old))
        report = store.gc(max_bytes=150)
        assert report["removed"]["evicted"] == [KEY_B]
        assert store.keys() == [KEY_A]
        assert report["reclaimed_bytes"] == 100
        assert report["remaining_bytes"] <= 150

    def test_corrupt_dropped_first(self, tmp_path):
        obs = Observability()
        store = ArtifactStore(str(tmp_path / "store"), obs=obs)
        entry = _put_text(store, KEY_A)
        with open(entry.file_path("data.txt"), "w") as handle:
            handle.write("rotten")
        report = store.gc()
        assert report["removed"]["corrupt"] == [KEY_A]
        assert obs.metrics.to_dict()["counters"]["store.gc_removed"] == 1


class TestEnvironment:
    def test_switch_values(self, monkeypatch):
        for value in ("0", "off", "FALSE", " no "):
            monkeypatch.setenv(ENV_STORE_SWITCH, value)
            assert not store_enabled_by_env()
        for value in ("1", "on", "yes"):
            monkeypatch.setenv(ENV_STORE_SWITCH, value)
            assert store_enabled_by_env()
        monkeypatch.delenv(ENV_STORE_SWITCH)
        assert store_enabled_by_env()

    def test_root_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "elsewhere"))
        assert default_store_root() == str(tmp_path / "elsewhere")
        monkeypatch.setenv(ENV_STORE_SWITCH, "off")
        assert not default_store().enabled


class TestCLI:
    def run(self, *argv, root):
        return store_cli(["--store-dir", root, *argv])

    def test_ls_and_info(self, store, capsys):
        assert self.run("ls", root=store.root) == 0
        assert "empty store" in capsys.readouterr().out
        _put_text(store, KEY_A, "hello")
        assert self.run("ls", root=store.root) == 0
        out = capsys.readouterr().out
        assert KEY_A in out and "ok" in out
        assert self.run("info", KEY_A, root=store.root) == 0
        assert json.loads(capsys.readouterr().out)["payload"] == {"note": "hello"}
        assert self.run("info", KEY_B, root=store.root) == 1

    def test_verify_exit_codes(self, store, capsys):
        _put_text(store, KEY_A)
        assert self.run("verify", root=store.root) == 0
        entry = store.get(KEY_A)
        with open(entry.file_path("data.txt"), "w") as handle:
            handle.write("corrupt")
        assert self.run("verify", root=store.root) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_gc_and_dry_run(self, store, capsys):
        _put_text(store, KEY_A, "x" * 50)
        _put_text(store, KEY_B, "y" * 50)
        assert self.run("gc", "--max-bytes", "60", "--dry-run", root=store.root) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert store.keys() == [KEY_A, KEY_B]  # dry run deleted nothing
        assert self.run("gc", "--max-bytes", "60", root=store.root) == 0
        assert len(store.keys()) == 1


class TestObsSummary:
    def test_store_line_rendered(self):
        metrics = MetricsRegistry()
        metrics.inc("store.hit", 3)
        metrics.inc("store.miss")
        metrics.inc("store.rebuild")
        metrics.timer("store.build").record(2.5)
        lines = _metrics_section(metrics)
        store_lines = [line for line in lines if line.startswith("artifact store:")]
        assert store_lines == [
            "artifact store: 3 hit(s), 1 miss(es), 1 corrupt rebuild(s), build 2.50 s"
        ]
        # Store counters also make the headline counter list.
        assert any("store.hit" in line for line in lines)

    def test_no_store_traffic_no_line(self):
        metrics = MetricsRegistry()
        metrics.inc("sim.runs")
        assert not any(
            line.startswith("artifact store:") for line in _metrics_section(metrics)
        )
