"""Trained-bundle (de)hydration on top of :class:`~repro.store.ArtifactStore`.

One store entry holds everything needed to reconstruct a
:class:`~repro.sim.training.TrainedSensorBundle` without retraining:

* ``<location>.plain.npz`` / ``<location>.pruned.npz`` weight
  checkpoints per body location (via :mod:`repro.nn.serialization`),
* the manifest ``payload``: rank table, confidence-matrix seed weights,
  validation metrics, inference energies, pruning summary and the
  training recipe (seed + :class:`TrainingConfig`).

Rehydration rebuilds the unpruned CNN from the architecture registry and
the pruned CNN by sizing fresh layers from the checkpoint's weight
shapes (the same surgery helper the pruner itself uses), then loads the
exact float64 weights — so a store hit and a fresh training run produce
byte-identical downstream results.  The one field not reconstructed is
``TrainedLocationModel.pruning`` (the step-by-step pruning log): a
rehydrated bundle carries ``pruning=None`` plus the summary numbers in
the manifest.  Nothing in the simulation stack reads the step log.

:func:`load_or_train_bundle` is the single entry point the simulation
layer uses: store hit → rehydrate; miss (or corruption, which the store
evicts) → train, publish, return.  All hit/miss/rebuild/build-time
accounting flows through the caller's :class:`~repro.obs.Observability`.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import asdict
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.core.scheduling.rank_table import RankTable
from repro.datasets.base import HARDataset
from repro.datasets.body import BodyLocation
from repro.errors import StoreError
from repro.nn.architectures import build_har_cnn, har_architecture_for
from repro.nn.energy_model import EnergyCostModel
from repro.nn.model import Sequential
from repro.nn.pruning import fresh_layer_from_weights
from repro.nn.serialization import load_model_weights, save_model_weights
from repro.obs.observer import NULL_OBS, Observability
from repro.sim.training import (
    TrainedLocationModel,
    TrainedSensorBundle,
    TrainingConfig,
)
from repro.store.core import ArtifactStore, StoreEntry, default_store
from repro.store.keys import trained_bundle_key

logger = logging.getLogger(__name__)


def _plain_file(location: BodyLocation) -> str:
    return f"{location.value}.plain.npz"


def _pruned_file(location: BodyLocation) -> str:
    return f"{location.value}.pruned.npz"


# ---------------------------------------------------------------------------
# packing
# ---------------------------------------------------------------------------


def save_trained_bundle(
    store: ArtifactStore,
    key: str,
    bundle: TrainedSensorBundle,
    *,
    build_time_s: Optional[float] = None,
) -> Optional[StoreEntry]:
    """Publish ``bundle`` under ``key``; returns the store entry.

    Safe against concurrent writers of the same key (the store keeps
    whichever finished first — both are bit-identical by construction).
    A disabled store returns ``None`` without touching disk.
    """

    def stage(tmpdir: str) -> Dict[str, Any]:
        locations = []
        for location in bundle.locations:
            entry = bundle.by_location[location]
            save_model_weights(entry.model, os.path.join(tmpdir, _plain_file(location)))
            save_model_weights(
                entry.pruned_model, os.path.join(tmpdir, _pruned_file(location))
            )
            pruning = entry.pruning
            locations.append(
                {
                    "location": location.value,
                    "node_id": entry.node_id,
                    "model_name": entry.model.name,
                    "input_shape": list(entry.model.input_shape),
                    "inference_energy_j": entry.inference_energy_j,
                    "pruned_inference_energy_j": entry.pruned_inference_energy_j,
                    "val_accuracy": entry.val_accuracy,
                    "pruned_val_accuracy": entry.pruned_val_accuracy,
                    "val_per_class": [float(v) for v in entry.val_per_class],
                    "pruned_val_per_class": [
                        float(v) for v in entry.pruned_val_per_class
                    ],
                    "pruning": (
                        {
                            "energy_before_j": pruning.energy_before_j,
                            "energy_after_j": pruning.energy_after_j,
                            "budget_j": pruning.budget_j,
                            "n_removed": pruning.n_removed,
                        }
                        if pruning is not None
                        else None
                    ),
                    "files": {
                        "plain": _plain_file(location),
                        "pruned": _pruned_file(location),
                    },
                }
            )
        rank_table = {
            str(label): [int(n) for n in bundle.rank_table.ranked_nodes(label)]
            for label in bundle.rank_table.labels
        }
        confidence = bundle.confidence_matrix
        payload: Dict[str, Any] = {
            "dataset": bundle.dataset.spec.name,
            "seed": bundle.train_seed,
            "training": (
                asdict(bundle.train_config) if bundle.train_config is not None else None
            ),
            "budget_j": bundle.budget_j,
            "cost_model": asdict(bundle.cost_model),
            "build_time_s": build_time_s,
            "locations": locations,
            "rank_table": rank_table,
            "confidence": {
                "weights": {
                    str(node_id): [float(v) for v in confidence.row(node_id)]
                    for node_id in confidence.node_ids
                },
                "adaptation_alpha": confidence.adaptation_alpha,
                "normalize": confidence.normalize,
            },
        }
        return payload

    return store.put(key, stage, kind="trained-bundle")


# ---------------------------------------------------------------------------
# unpacking
# ---------------------------------------------------------------------------


def _model_from_checkpoint(template: Sequential, path: str, name: str) -> Sequential:
    """Rebuild a (possibly pruned) model from a flat ``.npz`` state.

    ``template`` supplies layer types/names/kernel sizes in order; each
    fresh layer's width comes from the checkpoint's weight shapes, so
    the same routine handles the unpruned model and any pruned variant.
    """
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    per_layer: Dict[int, Dict[str, np.ndarray]] = {}
    for flat_key, array in state.items():
        index_text, rest = flat_key.split(".", 1)
        per_layer.setdefault(int(index_text), {})[rest.rsplit(".", 1)[1]] = array
    layers = [
        fresh_layer_from_weights(layer, per_layer.get(index, {}))
        for index, layer in enumerate(template.layers)
    ]
    model = Sequential(layers, name=name).build(tuple(template.input_shape))
    model.load_state_dict(state)
    return model


def _unpack(entry: StoreEntry, dataset: HARDataset) -> TrainedSensorBundle:
    payload = entry.payload
    spec = dataset.spec
    if payload.get("dataset") != spec.name:
        raise StoreError(
            f"entry {entry.key} holds a {payload.get('dataset')!r} bundle, "
            f"not {spec.name!r}"
        )
    by_location: Dict[BodyLocation, TrainedLocationModel] = {}
    for loc_spec in payload["locations"]:
        location = BodyLocation(loc_spec["location"])
        train = dataset.train[location]
        # The unpruned model is architecture-registry code; the stored
        # input shape is cross-checked against the dataset we were
        # handed so a wrong dataset fails loudly, not numerically.
        expected_shape = (train.X.shape[1], train.X.shape[2])
        if tuple(loc_spec["input_shape"]) != expected_shape:
            raise StoreError(
                f"entry {entry.key}: stored input shape "
                f"{tuple(loc_spec['input_shape'])} != dataset {expected_shape}"
            )
        model = build_har_cnn(
            n_channels=train.X.shape[1],
            window=train.X.shape[2],
            n_classes=spec.n_classes,
            architecture=har_architecture_for(location),
            seed=loc_spec["node_id"],
            name=loc_spec["model_name"],
        )
        load_model_weights(model, entry.file_path(loc_spec["files"]["plain"]))
        pruned = _model_from_checkpoint(
            model, entry.file_path(loc_spec["files"]["pruned"]), loc_spec["model_name"]
        )
        by_location[location] = TrainedLocationModel(
            location=location,
            node_id=int(loc_spec["node_id"]),
            model=model,
            pruned_model=pruned,
            inference_energy_j=float(loc_spec["inference_energy_j"]),
            pruned_inference_energy_j=float(loc_spec["pruned_inference_energy_j"]),
            val_accuracy=float(loc_spec["val_accuracy"]),
            pruned_val_accuracy=float(loc_spec["pruned_val_accuracy"]),
            val_per_class=np.asarray(loc_spec["val_per_class"], dtype=np.float64),
            pruned_val_per_class=np.asarray(
                loc_spec["pruned_val_per_class"], dtype=np.float64
            ),
            pruning=None,
        )
    rank_table = RankTable(
        {
            int(label): [int(node) for node in nodes]
            for label, nodes in payload["rank_table"].items()
        }
    )
    confidence_spec = payload["confidence"]
    confidence = ConfidenceMatrix(
        {
            int(node_id): np.asarray(row, dtype=np.float64)
            for node_id, row in confidence_spec["weights"].items()
        },
        adaptation_alpha=float(confidence_spec["adaptation_alpha"]),
        normalize=bool(confidence_spec["normalize"]),
    )
    bundle = TrainedSensorBundle(
        dataset,
        by_location,
        rank_table,
        confidence,
        EnergyCostModel(**payload["cost_model"]),
        float(payload["budget_j"]),
    )
    bundle.store_key = entry.key
    bundle.train_seed = payload.get("seed")
    training = payload.get("training")
    bundle.train_config = TrainingConfig(**training) if training else None
    return bundle


def load_trained_bundle(
    store: ArtifactStore,
    key: str,
    dataset: HARDataset,
    *,
    obs: Optional[Observability] = None,
) -> Optional[TrainedSensorBundle]:
    """Rehydrate the bundle stored under ``key``, or ``None`` on miss.

    Checksums are verified by the store; any *semantic* unpack failure
    (truncated archive, key/schema drift the checksums cannot see)
    additionally evicts the entry and reports a miss so the caller
    rebuilds.
    """
    obs = obs if obs is not None else NULL_OBS
    entry = store.get(key)
    if entry is None:
        return None
    try:
        return _unpack(entry, dataset)
    except Exception as error:  # noqa: BLE001 - any unpack failure = miss
        logger.warning("evicting unreadable bundle %s: %s", key, error)
        if obs.enabled:
            obs.metrics.inc("store.corrupt")
        store.invalidate(key)
        return None


# ---------------------------------------------------------------------------
# the simulation-layer entry point
# ---------------------------------------------------------------------------

StoreArg = Union[ArtifactStore, None, bool]


def resolve_store(store: StoreArg, obs: Optional[Observability] = None) -> Optional[ArtifactStore]:
    """Normalize the ``store=`` argument convention.

    ``None`` → the environment-configured default store; ``False`` → no
    store at all (bypass, regardless of environment); an
    :class:`ArtifactStore` → itself.  Returns ``None`` for a bypassed or
    env-disabled store.
    """
    if store is False:
        return None
    if store is None or store is True:
        store = default_store(obs=obs)
    return store if store.enabled else None


def load_or_train_bundle(
    dataset: HARDataset,
    budget_j: float,
    *,
    seed: int = 0,
    config: TrainingConfig = TrainingConfig(),
    cost_model: EnergyCostModel = EnergyCostModel(),
    store: StoreArg = None,
    obs: Optional[Observability] = None,
) -> TrainedSensorBundle:
    """``TrainedSensorBundle.train`` with the store consulted first.

    Hit → rehydrate (counted as ``store.hit``, timed as ``store.load``);
    miss → train (timed as ``store.build``), publish, return.  A miss
    caused by an evicted corrupt entry is additionally counted as
    ``store.rebuild``.  With the store disabled (``store=False`` or
    ``REPRO_STORE=off``) this is exactly ``TrainedSensorBundle.train``.
    """
    obs = obs if obs is not None else NULL_OBS
    resolved = resolve_store(store, obs=obs)
    if resolved is None:
        return TrainedSensorBundle.train(
            dataset, budget_j, seed=seed, config=config, cost_model=cost_model
        )
    key = trained_bundle_key(
        dataset, budget_j, seed=seed, config=config, cost_model=cost_model
    )
    had_entry = resolved.contains(key)
    start = time.perf_counter()
    bundle = load_trained_bundle(resolved, key, dataset, obs=obs)
    if bundle is not None:
        if obs.enabled:
            obs.metrics.inc("store.hit")
            obs.metrics.timer("store.load").record(time.perf_counter() - start)
        logger.debug("store hit for %s/%s (key %s)", dataset.spec.name, seed, key)
        return bundle
    if obs.enabled:
        obs.metrics.inc("store.miss")
        if had_entry:
            obs.metrics.inc("store.rebuild")
    start = time.perf_counter()
    bundle = TrainedSensorBundle.train(
        dataset, budget_j, seed=seed, config=config, cost_model=cost_model
    )
    build_time_s = time.perf_counter() - start
    if obs.enabled:
        obs.metrics.timer("store.build").record(build_time_s)
    save_trained_bundle(resolved, key, bundle, build_time_s=build_time_s)
    bundle.store_key = key
    logger.debug(
        "store miss for %s/%s: trained in %.2fs, published as %s",
        dataset.spec.name, seed, build_time_s, key,
    )
    return bundle
