"""Tests for the Discussion-section extensions: sensor failure and
hybrid battery+EH operation."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.energy.harvester import Harvester
from repro.energy.traces import PowerTrace
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, NodeDeath
from repro.sim.experiment import SimulationConfig


def _deaths(failures):
    """The modern spelling of the old ``failures={node: slot}`` dict."""
    return FaultPlan.from_failures(failures)


class TestSensorFailure:
    def test_dead_node_never_active_after_failure(self, tiny_experiment):
        result = tiny_experiment.run(
            rr_policy(3), seed=5, faults=_deaths({0: 10})
        )
        for record in result.records:
            if record.slot_index >= 10:
                assert 0 not in record.active_nodes

    def test_dead_node_active_before_failure(self, tiny_experiment):
        result = tiny_experiment.run(
            rr_policy(3), seed=5, faults=FaultPlan(faults=(NodeDeath(0, at_slot=30),))
        )
        before = [
            r for r in result.records if r.slot_index < 30 and 0 in r.active_nodes
        ]
        assert before, "node 0 should take turns before it dies"

    def test_system_keeps_classifying_after_failure(self, tiny_experiment):
        result = tiny_experiment.run(
            origin_policy(3), seed=5, faults=_deaths({0: 5})
        )
        late_events = [
            r for r in result.records if r.slot_index > 20 and r.completions > 0
        ]
        assert late_events, "surviving sensors must keep producing events"

    def test_all_nodes_dead_means_no_events(self, tiny_experiment):
        result = tiny_experiment.run(
            rr_policy(3), seed=5, faults=_deaths({0: 0, 1: 0, 2: 0})
        )
        assert result.total_attempts == 0

    def test_failures_do_not_leak_between_runs(self, tiny_experiment):
        tiny_experiment.run(rr_policy(3), seed=5, faults=_deaths({0: 0}))
        clean = tiny_experiment.run(rr_policy(3), seed=5)
        assert any(0 in r.active_nodes for r in clean.records)
        assert clean.fault_stats is None


class TestHybridSupply:
    def test_supplemental_power_adds_energy(self):
        trace = PowerTrace(dt_s=1.0, watts=np.full(10, 10e-6))
        pure = Harvester(trace)
        hybrid = Harvester(trace, supplemental_w=50e-6)
        assert hybrid.slot_energy(0, 1.0) == pytest.approx(60e-6)
        assert hybrid.average_power_w == pytest.approx(pure.average_power_w + 50e-6)

    def test_slot_energies_include_supplement(self):
        trace = PowerTrace(dt_s=1.0, watts=np.full(4, 0.0))
        hybrid = Harvester(trace, supplemental_w=20e-6)
        np.testing.assert_allclose(hybrid.slot_energies(2.0), 40e-6)

    def test_negative_supplement_rejected(self):
        trace = PowerTrace(dt_s=1.0, watts=np.full(4, 1e-6))
        with pytest.raises(Exception):
            Harvester(trace, supplemental_w=-1.0)

    def test_hybrid_config_improves_completion(self, tiny_experiment):
        saved = tiny_experiment.config
        try:
            tiny_experiment.config = replace(saved, trace_scale=0.3)
            starved = tiny_experiment.run(rr_policy(3), seed=6)
            tiny_experiment.config = replace(
                saved, trace_scale=0.3, battery_supplement_w=40e-6
            )
            hybrid = tiny_experiment.run(rr_policy(3), seed=6)
        finally:
            tiny_experiment.config = saved
        assert hybrid.completion_rate >= starved.completion_rate

    def test_invalid_battery_config(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(battery_supplement_w=-1e-6)


class TestRecallExpiryConfig:
    def test_expiry_drops_dead_nodes_votes(self, tiny_experiment):
        saved = tiny_experiment.config
        try:
            tiny_experiment.config = replace(saved, max_recall_age_slots=6)
            result = tiny_experiment.run(
                origin_policy(3), seed=7, faults=_deaths({0: 5})
            )
        finally:
            tiny_experiment.config = saved
        # Still produces decisions with the dead node's vote expired.
        assert result.n_events > 0
