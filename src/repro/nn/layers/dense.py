"""Fully connected layer."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import he_normal, zeros
from repro.nn.layers.base import Layer, Shape
from repro.utils.rng import SeedLike, as_generator


class Dense(Layer):
    """Affine map ``y = x @ W + b`` on flat feature vectors.

    Parameters
    ----------
    units:
        Output width.
    seed:
        Initialization seed (He-normal weights, zero bias).
    """

    def __init__(self, units: int, seed: SeedLike = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if units < 1:
            raise ModelError(f"units must be >= 1, got {units}")
        self.units = int(units)
        self._rng = as_generator(seed)
        self.W: Optional[np.ndarray] = None
        self.b: Optional[np.ndarray] = None
        self.dW: Optional[np.ndarray] = None
        self.db: Optional[np.ndarray] = None
        self._cached_input: Optional[np.ndarray] = None

    def _build(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 1:
            raise ModelError(
                f"Dense expects flat input (features,), got {input_shape}; "
                "insert a Flatten layer first"
            )
        fan_in = input_shape[0]
        self.W = he_normal(self._rng, (fan_in, self.units), fan_in=fan_in)
        self.b = zeros((self.units,))
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        if training:
            self._cached_input = x
        return x @ self.W + self.b

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        x = self._cached_input
        self.dW = x.T @ grad_output
        self.db = grad_output.sum(axis=0)
        return grad_output @ self.W.T

    @property
    def params(self) -> Dict[str, np.ndarray]:
        self._require_built()
        return {"W": self.W, "b": self.b}

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        self._require_built()
        return {"W": self.dW, "b": self.db}
