"""Per-seed run material and the shared prediction cache.

Everything upstream of scheduling is fully determined by ``(dataset,
seed, subject, deployment config)``: the ground-truth activity timeline,
the per-slot style wobbles, every node's sensed-window stream — and
therefore every node's softmax output for every slot it could possibly
classify.  A policy sweep evaluates the whole RR/AAS/AASR/Origin ladder
on exactly those seeds, so this module materializes the shared part once
per seed (:func:`build_run_material`) and lets every policy run consume
it (:class:`PredictionCache`), removing window synthesis and DNN
inference from the per-policy cost.

Determinism contract
--------------------
Windows are drawn for *all* slots up front from each node's labeled RNG
stream (exactly like the style stream always was), so the window a node
senses at slot ``s`` does not depend on which earlier slots the policy
made it active in.  That is what makes the material policy-independent.
Predictions are computed with one batched ``predict_proba`` pass per
node; since the per-slot runtime consumes the same arrays in every mode,
cached, uncached (per-run rebuilt) and parallel runs are byte-identical
— the test suite and the CI benchmark smoke both assert this.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.activities import Activity
from repro.datasets.base import HARDataset
from repro.datasets.markov import MarkovActivityModel
from repro.datasets.profiles import N_CHANNELS
from repro.datasets.subjects import SubjectProfile
from repro.datasets.synthesis import StyleWobble
from repro.errors import ConfigurationError
from repro.obs.observer import NULL_OBS, Observability
from repro.utils.rng import SeedSequenceFactory

#: Default inference batch size for the precompute pass.
DEFAULT_BATCH_SIZE = 256


def default_subject(dataset: HARDataset) -> SubjectProfile:
    """The subject a run simulates when none is given.

    The first held-out evaluation subject, falling back to the canonical
    profile for datasets without an evaluation split.
    """
    if dataset.eval_subjects:
        return dataset.eval_subjects[0]
    return SubjectProfile.canonical()


@dataclass
class RunMaterial:
    """The policy-independent precompute of one ``(seed, subject)`` run.

    Attributes
    ----------
    seed / n_windows / dwell_scale / use_pruned_models / subject:
        The parameters the material was built for; a run validates its
        own against them before consuming (:meth:`check_compatible`).
    labels:
        Ground-truth activity per slot (the Markov timeline).
    styles:
        The shared execution-style wobble per slot.
    windows:
        ``{node id: (n_windows, channels, window) float32}`` — every
        node's sensed window for every slot.
    probabilities:
        ``{node id: (n_windows, n_classes) float64}`` softmax outputs,
        or ``None`` when built without predictions (e.g. for
        window-transform runs, whose windows change after synthesis).
    """

    seed: int
    n_windows: int
    dwell_scale: float
    use_pruned_models: bool
    subject: SubjectProfile
    labels: List[Activity]
    styles: List[StyleWobble]
    windows: Dict[int, np.ndarray]
    probabilities: Optional[Dict[int, np.ndarray]] = None
    _class_predictions: Optional[Dict[int, tuple]] = dataclasses_field(
        default=None, repr=False, compare=False
    )

    def class_predictions(self) -> Dict[int, tuple]:
        """``{node id: (argmax labels, variance confidences)}`` (lazy).

        The scan-friendly face of :attr:`probabilities` for the
        vectorized kernel: per-slot predicted label and
        variance-of-softmax confidence, computed once with batched
        ``argmax``/``var`` calls that are byte-identical to the scalar
        path's per-row ``argmax()`` / ``confidence_from_softmax``.
        Memoized on the material, so one computation serves every
        policy of a sweep cell (and every batch of a seed).
        """
        if self.probabilities is None:
            raise ConfigurationError(
                "material was built without predictions; the kernel "
                "needs build_run_material(with_predictions=True)"
            )
        if self._class_predictions is None:
            self._class_predictions = {
                node_id: (probs.argmax(axis=1), np.var(probs, axis=1))
                for node_id, probs in self.probabilities.items()
            }
        return self._class_predictions

    def check_compatible(
        self,
        *,
        seed: int,
        n_windows: int,
        dwell_scale: float,
        use_pruned_models: bool,
        subject: SubjectProfile,
    ) -> None:
        """Raise :class:`ConfigurationError` unless the material matches."""
        wanted = (seed, n_windows, dwell_scale, use_pruned_models, subject.subject_id)
        have = (
            self.seed,
            self.n_windows,
            self.dwell_scale,
            self.use_pruned_models,
            self.subject.subject_id,
        )
        if wanted != have:
            raise ConfigurationError(
                f"run material was built for (seed, n_windows, dwell_scale, "
                f"pruned, subject)={have}, but the run needs {wanted}"
            )


def build_run_material(
    dataset: HARDataset,
    bundle,
    seed: int,
    *,
    n_windows: int,
    dwell_scale: float,
    use_pruned_models: bool = True,
    subject: Optional[SubjectProfile] = None,
    with_predictions: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    obs: Optional[Observability] = None,
) -> RunMaterial:
    """Materialize one seed's timeline, windows and (optionally) softmax.

    ``bundle`` is a :class:`~repro.sim.training.TrainedSensorBundle`;
    only its node-id mapping and (when ``with_predictions``) its models
    are consulted.  RNG streams use the same labels as the historical
    in-run draws (``timeline``, ``style``, ``windows/<location>``), so
    the material is a pure function of ``(dataset, bundle, seed,
    subject, n_windows, dwell_scale)``.  ``obs`` records per-phase wall
    time (``predcache.windows``, ``predcache.predict``).
    """
    if n_windows < 1:
        raise ConfigurationError(f"n_windows must be >= 1, got {n_windows}")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    obs = obs if obs is not None else NULL_OBS
    factory = SeedSequenceFactory(int(seed))
    spec = dataset.spec
    subject = subject or default_subject(dataset)

    markov = MarkovActivityModel(
        list(spec.activities),
        window_duration_s=spec.window_duration_s,
        dwell_scale=dwell_scale,
    )
    labels = markov.sample_labels(n_windows, factory.generator("timeline"))

    # One execution-style wobble per slot, shared by every sensor on the
    # body (see StyleWobble) — drawn for all slots up front so the
    # stream is identical regardless of which nodes are active.
    style_rng = factory.generator("style")
    styles = [StyleWobble.sample(style_rng) for _ in range(n_windows)]

    synthesizer = dataset.synthesizer
    windows: Dict[int, np.ndarray] = {}
    with obs.timed("predcache.windows"):
        for location in spec.locations:
            node_id = bundle.node_id_of(location)
            rng = factory.generator(f"windows/{location.value}")
            stream = np.empty(
                (n_windows, N_CHANNELS, synthesizer.window_size), dtype=np.float32
            )
            for slot, activity in enumerate(labels):
                stream[slot] = synthesizer.window(
                    activity, location, subject, rng, style=styles[slot]
                )
            windows[node_id] = stream

    probabilities: Optional[Dict[int, np.ndarray]] = None
    if with_predictions:
        with obs.timed("predcache.predict"):
            models = bundle.models(pruned=use_pruned_models)
            probabilities = {
                node_id: models[node_id].predict_proba(stream, batch_size=batch_size)
                for node_id, stream in windows.items()
            }

    return RunMaterial(
        seed=int(seed),
        n_windows=int(n_windows),
        dwell_scale=float(dwell_scale),
        use_pruned_models=bool(use_pruned_models),
        subject=subject,
        labels=labels,
        styles=styles,
        windows=windows,
        probabilities=probabilities,
    )


class PredictionCache:
    """Memoized :class:`RunMaterial` per seed for one experiment.

    One cache serves every policy of a sweep: the first run of a seed
    pays the precompute, the other fifteen grid policies reuse it.  The
    cache is keyed by everything the material depends on, so changing
    ``n_windows``, ``dwell_scale``, the model variant or the subject
    builds fresh material instead of serving a stale one.

    Parameters
    ----------
    experiment:
        The :class:`~repro.sim.experiment.HARExperiment` whose dataset,
        bundle and config define the material.
    batch_size:
        Batch size of the prediction precompute.
    obs:
        Observability bundle; records build timers and exposes the
        hit/miss accounting as ``predcache.hits`` / ``predcache.misses``
        gauges.
    """

    def __init__(
        self,
        experiment,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        obs: Optional[Observability] = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.experiment = experiment
        self.batch_size = int(batch_size)
        self.obs = obs if obs is not None else NULL_OBS
        self._materials: Dict[tuple, RunMaterial] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._materials)

    def material(
        self,
        seed: int,
        *,
        subject: Optional[SubjectProfile] = None,
        with_predictions: bool = True,
    ) -> RunMaterial:
        """The (memoized) material for ``seed`` under the experiment config."""
        config = self.experiment.config
        subject = subject or default_subject(self.experiment.dataset)
        key = (
            int(seed),
            config.n_windows,
            config.dwell_scale,
            config.use_pruned_models,
            subject.subject_id,
            bool(with_predictions),
        )
        cached = self._materials.get(key)
        if cached is not None:
            self.hits += 1
            if self.obs.enabled:
                self.obs.metrics.set_gauge("predcache.hits", self.hits)
            return cached
        self.misses += 1
        with self.obs.timed("predcache.build_material"):
            material = build_run_material(
                self.experiment.dataset,
                self.experiment.bundle,
                seed,
                n_windows=config.n_windows,
                dwell_scale=config.dwell_scale,
                use_pruned_models=config.use_pruned_models,
                subject=subject,
                with_predictions=with_predictions,
                batch_size=self.batch_size,
                obs=self.obs,
            )
        self._materials[key] = material
        if self.obs.enabled:
            self.obs.metrics.set_gauge("predcache.misses", self.misses)
            self.obs.metrics.set_gauge("predcache.materials", len(self._materials))
        return material

    def clear(self) -> None:
        """Drop every memoized material (frees the window arrays)."""
        self._materials.clear()
