#!/usr/bin/env python
"""Build a custom EH-WSN deployment from the low-level substrates.

Everything HARExperiment automates, done by hand: a harsher office RF
environment, bigger capacitors, a WiFi radio instead of BLE, a
hand-tuned schedule — useful as a template for extending the library to
new deployments (more sensors, other radios, different harvesters).

Run:  python examples/custom_deployment.py
"""

import numpy as np

from repro.core import ConfidenceMatrix, WeightedMajorityVote, origin_policy
from repro.datasets import make_mhealth
from repro.energy import Capacitor, Harvester, NonVolatileProcessor, OfficeState, PowerTraceGenerator
from repro.nn import estimate_inference_energy
from repro.sim import HARExperiment, SimulationConfig, TrainedSensorBundle, TrainingConfig
from repro.wsn import CommLink, RadioProfile, SensorNode


def main() -> None:
    # 1. A gloomier office: weaker bursts, longer quiet stretches.
    generator = PowerTraceGenerator(
        state_power_w={OfficeState.BURST: 80e-6},
        state_dwell_s={OfficeState.QUIET: 60.0},
    )
    print(
        f"custom office average harvest: "
        f"{generator.expected_average_power_w() * 1e6:.1f} uW"
    )

    # 2. Data + models pruned to the harsher budget.
    dataset = make_mhealth(seed=3)
    budget = generator.expected_average_power_w() * dataset.spec.window_duration_s
    bundle = TrainedSensorBundle.train(
        dataset, budget, seed=3, config=TrainingConfig(epochs=40)
    )
    for location, entry in bundle.by_location.items():
        print(
            f"  {location.label:<12} pruned to "
            f"{entry.pruned_inference_energy_j * 1e6:.1f} uJ "
            f"(budget {budget * 1e6:.1f} uJ), val {entry.pruned_val_accuracy:.1%}"
        )

    # 3. Deployment knobs: larger storage, WiFi backhaul, task expiry.
    config = SimulationConfig(
        n_windows=400,
        capacitor_capacity_j=250e-6,
        radio=RadioProfile.wifi(),
        max_task_age_slots=8,
        dwell_scale=5.0,
    )
    experiment = HARExperiment(
        dataset, bundle, trace_generator=generator, config=config, seed=3
    )

    result = experiment.run(origin_policy(12), seed=9)
    print("\n" + result.summary())
    breakdown = result.completion_breakdown()
    print(f"completion under the gloomy office: {breakdown.any_fraction:.1%}")
    print(f"radio (WiFi) energy spent: {result.comm_energy_j * 1e6:.1f} uJ total")

    # 4. Peeking inside one node, standalone.
    trace = generator.generate(600, seed=1)
    node = SensorNode(
        node_id=0,
        location=list(bundle.by_location)[0],
        model=bundle.models(pruned=True)[0],
        inference_energy_j=bundle.inference_energies(pruned=True)[0],
        harvester=Harvester(trace),
        capacitor=Capacitor(capacity_j=250e-6),
        nvp=NonVolatileProcessor(checkpoint_overhead=0.05),
        comm=CommLink(RadioProfile.wifi()),
        slot_duration_s=dataset.spec.window_duration_s,
    )
    window = dataset.synthesizer.window(
        dataset.spec.activities[0], node.location, dataset.eval_subjects[0], seed=4
    )
    for slot in range(6):
        outcome = node.active_slot(slot, window)
        state = "done" if outcome.completed else f"{node.nvp.progress_fraction:.0%}"
        print(
            f"  slot {slot}: stored {node.stored_energy_j * 1e6:6.1f} uJ, "
            f"inference {state}"
        )
        if outcome.completed:
            break


if __name__ == "__main__":
    main()
