"""The declarative fault plan.

A :class:`FaultPlan` is an immutable, validated composition of fault
models plus two host/scheduler knobs that only make sense under faults:

``unresponsive_after_slots``
    If the host has not heard from a node for more than this many slots,
    the scheduler sees it flagged unresponsive (and, after its retry
    budget, reroutes to the next-ranked sensor).

``recall_staleness_half_life_slots``
    Host-side down-weighting of recalled votes: a remembered vote's
    weight halves every this-many slots of age, so a dead node's stale
    opinion fades instead of voting at full strength forever.

Construction-time validation raises :class:`~repro.errors.FaultError`
for negative slots, bad probabilities, and overlapping brownout windows;
:meth:`compile` additionally rejects unknown node ids against the actual
deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultError
from repro.faults.engine import FaultEngine
from repro.faults.models import (
    Brownout,
    FaultModel,
    GilbertElliottLoss,
    NodeDeath,
    PacketLoss,
    PayloadCorruption,
)


@dataclass(frozen=True)
class FaultPlan:
    """A validated, composable set of faults for one run."""

    faults: Tuple[FaultModel, ...] = ()
    unresponsive_after_slots: Optional[int] = None
    recall_staleness_half_life_slots: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultModel):
                raise FaultError(f"not a fault model: {fault!r}")
        for knob in ("unresponsive_after_slots", "recall_staleness_half_life_slots"):
            value = getattr(self, knob)
            if value is not None and value < 1:
                raise FaultError(f"{knob} must be >= 1 or None, got {value}")
        self._check_brownout_overlap()

    def _check_brownout_overlap(self) -> None:
        by_node: dict = {}
        for fault in self.faults:
            if isinstance(fault, Brownout):
                by_node.setdefault(fault.node_id, []).append(fault)
        for node_id, outages in by_node.items():
            outages.sort(key=lambda b: b.start_slot)
            for earlier, later in zip(outages, outages[1:]):
                if later.start_slot < earlier.end_slot:
                    raise FaultError(
                        f"overlapping brownouts for node {node_id}: "
                        f"[{earlier.start_slot}, {earlier.end_slot}) and "
                        f"[{later.start_slot}, {later.end_slot})"
                    )

    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the plan changes nothing about a run."""
        return (
            not self.faults
            and self.unresponsive_after_slots is None
            and self.recall_staleness_half_life_slots is None
        )

    @property
    def has_link_faults(self) -> bool:
        """Whether any message-level fault is present."""
        return any(
            isinstance(f, (PacketLoss, GilbertElliottLoss, PayloadCorruption))
            for f in self.faults
        )

    def named_nodes(self) -> Tuple[int, ...]:
        """Every node id any fault names, sorted."""
        ids = {
            fault.involved_node()
            for fault in self.faults
            if fault.involved_node() is not None
        }
        return tuple(sorted(ids))

    # ------------------------------------------------------------------

    @classmethod
    def from_failures(cls, failures: Mapping[int, int]) -> "FaultPlan":
        """Compile the legacy ``{node_id: slot}`` dict into a plan."""
        return cls(
            faults=tuple(
                NodeDeath(node_id=int(node_id), at_slot=int(slot))
                for node_id, slot in sorted(failures.items())
            )
        )

    def compile(
        self,
        node_ids: Sequence[int],
        n_slots: int,
        n_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> FaultEngine:
        """Validate against a deployment and build the runtime engine."""
        known = set(node_ids)
        for node_id in self.named_nodes():
            if node_id not in known:
                raise FaultError(
                    f"fault plan names unknown node {node_id} "
                    f"(deployment has {sorted(known)})"
                )
        if self.has_link_faults and rng is None:
            raise FaultError("a plan with link faults needs an RNG to compile")
        return FaultEngine(self.faults, node_ids, n_slots, n_classes, rng)
