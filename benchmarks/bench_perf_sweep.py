"""Benchmark the sweep performance layer (prediction cache + workers).

Times the paper policy grid three ways on a standard MHEALTH-like
experiment and writes the machine-readable comparison to
``benchmarks/results/BENCH_sweep.json``:

1. sequential, cache off — every run rebuilds its own material
   (timeline, windows, batched softmax) from scratch;
2. sequential, cache on — one material per seed shared by all
   policies of the grid;
3. parallel, cache on — the same cached sweep fanned out over a
   process pool.

All three must produce byte-identical per-slot records; the script
exits nonzero if they diverge, which is what the CI smoke step checks
(``--smoke`` shrinks the horizon/seeds so it finishes quickly and
leaves the committed JSON untouched unless ``--output`` is given).

A fourth pass re-runs the cached sequential sweep under a fully
enabled :class:`repro.obs.Observability` (tracer + metrics + a
streaming :class:`~repro.obs.timeline.TimeSeriesRecorder` at a 50 ms
cadence) and reports the combined tracing + live-recording overhead as
a percentage of the untraced wall time — the budget is <10%, enforced
in ``--smoke`` mode.  Both overhead legs force the scalar slot loop
(``use_kernel=False``): observability disables the vectorized kernel,
so a kernel-fast baseline would misreport the kernel speedup as tracing
overhead.

``--kernel`` benchmarks the vectorized slot kernel instead
(``--kernel-smoke`` is the CI shorthand for ``--kernel --smoke``): the
full policy grid is swept scalar vs kernel (cached, uncached and
parallel — all must stay byte-identical), and the per-slot physics
(``SensorNode.harvest`` + ``active_slot`` vs ``SlotKernel.advance``
over the same batched lanes) is micro-benchmarked with a >=5x speedup
gate.  Results go to ``benchmarks/results/BENCH_kernel.json``.

``--cold-start`` benchmarks the trained-bundle artifact store instead:
``standard_mhealth`` built in a fresh interpreter against an empty
store (trains + publishes) vs a warm store (rehydrates from disk), each
build its own subprocess.  The warm build must be at least 5x faster;
results go to ``benchmarks/results/BENCH_store.json``.

``--chaos`` benchmarks the resilience layer instead: the parallel sweep
is run three ways — plain, with the chaos harness armed but injecting
nothing (the supervision-overhead gate, budget <10%), and under an
actual :class:`~repro.resilience.ChaosPlan` that crashes >=30% of the
work units and hangs one past its task timeout.  All runs (including
the perturbed one, which recovers via retries) must stay byte-identical
to the sequential reference; results go to
``benchmarks/results/BENCH_resilience.json``.

Run with ``PYTHONPATH=src python benchmarks/bench_perf_sweep.py``.
Deliberately a standalone script, not a pytest bench: it measures
wall-clock ratios and must control its own repetition and output.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

import math

import numpy as np

from repro.obs.observer import Observability
from repro.obs.timeline import attach_recorder
from repro.resilience import ChaosAction, ChaosPlan
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.kernel import SlotKernel
from repro.sim.predcache import build_run_material
from repro.sim.sweep import PolicySweep, _split_indices, paper_policy_grid
from repro.utils.rng import SeedSequenceFactory

try:
    from benchmarks.runmeta import WallClock, write_stamped_json
except ImportError:  # invoked as a script: sibling import
    from runmeta import WallClock, write_stamped_json

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_sweep.json")
STORE_OUTPUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_store.json")
RESILIENCE_OUTPUT = os.path.join(
    os.path.dirname(__file__), "results", "BENCH_resilience.json"
)
KERNEL_OUTPUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_kernel.json")

#: Acceptable tracing overhead (fraction of untraced wall time).
OVERHEAD_BUDGET = 0.10

#: Acceptable supervision overhead: chaos harness armed (timeouts,
#: per-attempt argument injection) but injecting nothing, vs the plain
#: parallel sweep.
SUPERVISION_BUDGET = 0.10

#: Fraction of chaos-bench work units killed on their first attempt.
CHAOS_CRASH_FRACTION = 0.34

#: Minimum warm-store speedup over a cold (training) build; the artifact
#: store's contract is "rehydration is much cheaper than retraining".
STORE_SPEEDUP_FLOOR = 5.0

#: Minimum speedup of the batched ``SlotKernel`` scan over the scalar
#: per-slot node loop on the same lanes (the --kernel physics gate).
KERNEL_SPEEDUP_FLOOR = 5.0

#: Timed inside a *fresh interpreter* so a warm build pays the honest
#: process-start price: imports, dataset synthesis, checkpoint reads.
_COLD_START_SNIPPET = """\
import json, sys, time
from repro.obs.observer import Observability
from repro.sim.experiment import HARExperiment

obs = Observability()
start = time.perf_counter()
HARExperiment.standard_mhealth(seed=7, obs=obs)
elapsed = time.perf_counter() - start
counters = obs.metrics.to_dict()["counters"]
json.dump(
    {
        "seconds": elapsed,
        "hits": counters.get("store.hit", 0),
        "misses": counters.get("store.miss", 0),
    },
    sys.stdout,
)
"""


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short horizon; verify identity + overhead budget, skip the JSON",
    )
    parser.add_argument("--seeds", type=int, default=4, help="seeds per sweep")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--n-windows", type=int, default=300, help="slots per run (one window each)"
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"JSON destination (default {DEFAULT_OUTPUT}; never written in --smoke "
        "mode unless given explicitly)",
    )
    parser.add_argument(
        "--cold-start",
        action="store_true",
        help="benchmark the artifact store instead: standard_mhealth in a fresh "
        f"process, empty vs warm store (JSON default {STORE_OUTPUT})",
    )
    parser.add_argument(
        "--warm-reps", type=int, default=3, help="warm-store builds to min over"
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="benchmark the resilience layer instead: supervised sweep with "
        f">= {CHAOS_CRASH_FRACTION:.0%} of units chaos-crashed plus one hang "
        f"(JSON default {RESILIENCE_OUTPUT})",
    )
    parser.add_argument(
        "--kernel",
        action="store_true",
        help="benchmark the vectorized slot kernel instead: scalar-vs-kernel "
        f"byte-identity over the full grid plus a >= {KERNEL_SPEEDUP_FLOOR:.0f}x "
        f"slot-physics speedup gate (JSON default {KERNEL_OUTPUT})",
    )
    parser.add_argument(
        "--kernel-smoke",
        action="store_true",
        help="shorthand for --kernel --smoke (the CI gate)",
    )
    args = parser.parse_args(argv)
    if args.kernel_smoke:
        args.kernel = True
        args.smoke = True
    return args


def _fresh_process_build(store_dir: str) -> dict:
    """Time ``standard_mhealth`` in a brand-new interpreter."""
    env = dict(os.environ)
    env["REPRO_STORE_DIR"] = store_dir
    env.pop("REPRO_STORE", None)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    out = subprocess.run(
        [sys.executable, "-c", _COLD_START_SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout)


def run_cold_start(args) -> int:
    """Empty-store vs warm-store build time for ``standard_mhealth``."""
    with tempfile.TemporaryDirectory(prefix="repro-store-bench-") as store_dir:
        with WallClock() as total_clock:
            print("cold build (empty store, trains + publishes) ...", flush=True)
            cold = _fresh_process_build(store_dir)
            print(f"cold  : {cold['seconds']:8.2f} s  (misses={cold['misses']:g})", flush=True)
            if cold["misses"] != 1 or cold["hits"] != 0:
                print("FAIL: cold build did not miss the empty store exactly once")
                return 1
            warm_runs = []
            for index in range(max(1, args.warm_reps)):
                warm = _fresh_process_build(store_dir)
                warm_runs.append(warm["seconds"])
                print(
                    f"warm {index}: {warm['seconds']:8.2f} s  (hits={warm['hits']:g})",
                    flush=True,
                )
                if warm["hits"] != 1 or warm["misses"] != 0:
                    print("FAIL: warm build did not hit the store exactly once")
                    return 1
        warm_best = min(warm_runs)
        speedup = cold["seconds"] / warm_best
        print(f"warm-store speedup: {speedup:.1f}x (floor {STORE_SPEEDUP_FLOOR:.0f}x)")
        if speedup < STORE_SPEEDUP_FLOOR:
            print("FAIL: warm store is not meaningfully faster than retraining")
            return 1

        report = {
            "bench": "trained_bundle_store_cold_start",
            "config": {
                "dataset": "mhealth-like",
                "experiment": "standard_mhealth(seed=7)",
                "warm_reps": len(warm_runs),
                "fresh_process_per_build": True,
                "cpu_count": os.cpu_count(),
                "smoke": args.smoke,
            },
            "timings_s": {
                "cold_empty_store": round(cold["seconds"], 3),
                "warm_store_best": round(warm_best, 3),
                "warm_store_all": [round(value, 3) for value in warm_runs],
            },
            "speedup": {
                "warm_vs_cold": round(speedup, 2),
                "floor": STORE_SPEEDUP_FLOOR,
            },
        }
        output = args.output
        if output is None and not args.smoke:
            output = STORE_OUTPUT
        if output:
            write_stamped_json(output, report, wall_time_s=total_clock.elapsed_s)
            print(f"wrote {output}")
    return 0


def results_identical(a, b):
    """Byte-identity of two SweepResults over the whole grid."""
    if set(a.policies) != set(b.policies):
        return False
    for name in a.policies:
        lhs, rhs = a.policy(name), b.policy(name)
        if lhs.records != rhs.records:
            return False
        if lhs.node_stats != rhs.node_stats:
            return False
        if lhs.comm_energy_j != rhs.comm_energy_j:
            return False
    return True


def timed_sweep(
    experiment,
    policies,
    *,
    n_seeds,
    seed,
    cache,
    workers,
    obs=None,
    use_kernel=None,
    **run_kwargs,
):
    """One sweep run, wall-timed; returns (seconds, SweepResult)."""
    sweep = PolicySweep(
        experiment,
        n_seeds=n_seeds,
        include_baselines=False,
        use_prediction_cache=cache,
        use_kernel=use_kernel,
    )
    with WallClock() as clock:
        result = sweep.run(policies, seed=seed, workers=workers, obs=obs, **run_kwargs)
    return clock.elapsed_s, result


def _sweep_unit_count(n_policies: int, n_seeds: int, workers: int) -> int:
    """How many work units ``PolicySweep._run_parallel`` will build
    (mirrors its chunking so the chaos plan can cover every unit)."""
    chunks = max(1, math.ceil(workers / n_seeds))
    per_seed = len(_split_indices(n_policies, min(chunks, n_policies)))
    return n_seeds * per_seed


def run_chaos(args) -> int:
    """Supervised sweep under injected crashes/hangs; see module doc."""
    policies = paper_policy_grid()
    if args.smoke:
        n_windows, n_seeds = 40, 2
        task_timeout_s, hang_s = 20.0, 45.0
    else:
        n_windows, n_seeds = args.n_windows, args.seeds
        task_timeout_s, hang_s = 120.0, 150.0
    # Keep the pool smaller than the unit count so the hang victim (the
    # last unit) is still queued while the crash wave breaks the pool;
    # otherwise BrokenProcessPool converts the in-flight hang into a
    # crash charge and the timeout path goes unexercised.
    workers = max(2, args.workers)
    while True:
        n_units = _sweep_unit_count(len(policies), n_seeds, workers)
        if workers < n_units or workers <= 2:
            break
        workers = n_units - 1
    n_crashed = min(
        max(1, math.ceil(CHAOS_CRASH_FRACTION * n_units)), n_units - 1
    )
    actions = {index: ChaosAction(kind="crash") for index in range(n_crashed)}
    actions[n_units - 1] = ChaosAction(kind="hang", hang_s=hang_s)
    plan = ChaosPlan(actions=actions)
    n_hung = 1

    print(
        f"building experiment (n_windows={n_windows}, grid={len(policies)} policies, "
        f"seeds={n_seeds}, workers={workers}, units={n_units}: "
        f"{n_crashed} crash + {n_hung} hang scheduled) ...",
        flush=True,
    )
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=n_windows)
    )
    run = lambda **kw: timed_sweep(  # noqa: E731
        experiment, policies, n_seeds=n_seeds, seed=11, cache=True, **kw
    )
    with WallClock() as total_clock:
        t_seq, r_seq = run(workers=1)
        print(f"sequential reference   : {t_seq:8.2f} s", flush=True)
        t_par, r_par = run(workers=workers)
        print(f"parallel plain         : {t_par:8.2f} s", flush=True)
        # Harness armed — timeouts ticking, per-attempt argument
        # injection live — but injecting nothing: the supervision
        # machinery's own overhead.
        reps = 3 if args.smoke else 1
        t_armed, r_armed = None, None
        for _ in range(reps):
            t_par_i, _ = run(workers=workers)
            t_armed_i, r_armed = run(
                workers=workers, chaos=ChaosPlan(), task_timeout_s=task_timeout_s
            )
            t_par = min(t_par, t_par_i)
            t_armed = t_armed_i if t_armed is None else min(t_armed, t_armed_i)
        overhead = (t_armed - t_par) / t_par
        print(
            f"harness armed, no chaos: {t_armed:8.2f} s "
            f"({overhead:+.1%} vs plain parallel)",
            flush=True,
        )
        t_chaos, r_chaos = run(
            workers=workers, chaos=plan, task_timeout_s=task_timeout_s
        )
        degradation = r_chaos.degradation
        print(
            f"chaos-injected         : {t_chaos:8.2f} s "
            f"({degradation.summary().splitlines()[0] if degradation else 'no incidents?'})",
            flush=True,
        )

    identical = (
        results_identical(r_seq, r_par)
        and results_identical(r_seq, r_armed)
        and results_identical(r_seq, r_chaos)
    )
    if not identical:
        print("FAIL: supervised/chaos sweeps diverged from the sequential reference")
        return 1
    print("per-slot records byte-identical across all four modes")
    if degradation is None or degradation.crashes < n_crashed or not degradation.complete:
        print("FAIL: the chaos plan did not fire (or cells were lost)")
        return 1
    if degradation.timeouts < n_hung:
        print("FAIL: the scheduled hang was not reaped by the task timeout")
        return 1
    if args.smoke and overhead > SUPERVISION_BUDGET:
        print(
            f"FAIL: supervision overhead {overhead:.1%} exceeds the "
            f"{SUPERVISION_BUDGET:.0%} budget"
        )
        return 1

    report = {
        "bench": "sweep_resilience_chaos",
        "config": {
            "dataset": "mhealth-like",
            "n_windows": n_windows,
            "n_seeds": n_seeds,
            "n_policies": len(policies),
            "workers": workers,
            "n_units": n_units,
            "crash_fraction": CHAOS_CRASH_FRACTION,
            "crashed_units": n_crashed,
            "hung_units": n_hung,
            "task_timeout_s": task_timeout_s,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "timings_s": {
            "sequential_reference": round(t_seq, 3),
            "parallel_plain": round(t_par, 3),
            "parallel_harness_armed": round(t_armed, 3),
            "parallel_chaos_injected": round(t_chaos, 3),
        },
        "supervision": {
            "overhead_fraction": round(overhead, 4),
            "budget_fraction": SUPERVISION_BUDGET,
        },
        "chaos_recovery": {
            "crashes": degradation.crashes,
            "timeouts": degradation.timeouts,
            "retries": degradation.retries,
            "pool_restarts": degradation.pool_restarts,
            "failed_cells": degradation.failed_cells,
            "recovered": degradation.complete,
        },
        "records_identical": identical,
    }
    print(json.dumps({**report["supervision"], **report["chaos_recovery"]}, indent=2))
    output = args.output
    if output is None and not args.smoke:
        output = RESILIENCE_OUTPUT
    if output:
        write_stamped_json(output, report, wall_time_s=total_clock.elapsed_s)
        print(f"wrote {output}")
    return 0


def _bench_slot_physics(experiment, *, n_runs, n_slots, seed, density=0.6, reps=3):
    """Time the per-slot physics scalar vs batched-kernel on equal lanes.

    Scalar leg: the real python slot loop (``SensorNode.harvest`` /
    ``active_slot``) over ``n_runs`` independent copies of the node set.
    Kernel leg: one ``SlotKernel.advance`` scan over the same lanes.
    Both advance identical state; the per-lane ``NodeStats`` are checked
    for equality so the timing comparison cannot silently diverge.
    Returns ``(t_scalar, t_kernel, n_lanes, identical)``.
    """
    # Config/material sized to the micro-bench horizon (which may exceed
    # the sweep's n_windows): harvest traces must cover every slot and
    # every active lane needs a softmax row.
    from dataclasses import replace

    config = replace(experiment.config, n_windows=n_slots)
    material = build_run_material(
        experiment.dataset,
        experiment.bundle,
        seed,
        n_windows=n_slots,
        dwell_scale=config.dwell_scale,
        use_pruned_models=config.use_pruned_models,
    )
    nodes = experiment._build_nodes(SeedSequenceFactory(seed), config)
    n_nodes = len(nodes)
    n_lanes = n_runs * n_nodes
    mask = np.random.default_rng(99).random((n_slots, n_lanes)) < density
    window = np.zeros((1, 1), dtype=np.float32)

    # Fresh, identical node sets for every scalar run (built outside the
    # timed region; the kernel tiles the same templates).
    scalar_sets = []
    for _ in range(n_runs):
        built = experiment._build_nodes(SeedSequenceFactory(seed), config)
        for node in built:
            node.prediction_cache = material.probabilities[node.node_id]
        scalar_sets.append(built)

    t_scalar = None
    for _ in range(reps):
        for built in scalar_sets:
            for node in built:
                node.reset()
        with WallClock() as clock:
            for r, built in enumerate(scalar_sets):
                for k, node in enumerate(built):
                    lane = r * n_nodes + k
                    for slot in range(n_slots):
                        if mask[slot, lane]:
                            node.active_slot(slot, window)
                        else:
                            node.idle_slot(slot)
        t_scalar = clock.elapsed_s if t_scalar is None else min(t_scalar, clock.elapsed_s)

    t_kernel, kernel = None, None
    for _ in range(reps):
        kernel = SlotKernel.from_nodes(nodes, n_runs=n_runs, n_slots=n_slots)
        with WallClock() as clock:
            for slot in range(n_slots):
                kernel.advance(slot, mask[slot])
        t_kernel = clock.elapsed_s if t_kernel is None else min(t_kernel, clock.elapsed_s)

    identical = all(
        kernel.lane_stats(r * n_nodes + k) == scalar_sets[r][k].stats
        for r in range(n_runs)
        for k in range(n_nodes)
    )
    return t_scalar, t_kernel, n_lanes, identical


def run_kernel(args) -> int:
    """Scalar-vs-kernel identity + speedup gates; see module doc."""
    policies = paper_policy_grid()
    if args.smoke:
        n_windows, n_seeds, phys_slots, phys_reps = 40, 2, 200, 3
    else:
        n_windows, n_seeds, phys_slots, phys_reps = (
            args.n_windows, args.seeds, args.n_windows, 3,
        )

    print(
        f"building experiment (n_windows={n_windows}, grid={len(policies)} policies, "
        f"seeds={n_seeds}, workers={args.workers}) ...",
        flush=True,
    )
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=n_windows)
    )
    run = lambda **kw: timed_sweep(  # noqa: E731
        experiment, policies, n_seeds=n_seeds, seed=11, **kw
    )
    with WallClock() as total_clock:
        t_scalar, r_scalar = run(cache=True, workers=1, use_kernel=False)
        print(f"sequential scalar     : {t_scalar:8.2f} s", flush=True)
        t_batched, r_batched = run(cache=True, workers=1)
        print(f"sequential kernel     : {t_batched:8.2f} s", flush=True)
        t_uncached, r_uncached = run(cache=False, workers=1)
        print(f"uncached kernel       : {t_uncached:8.2f} s", flush=True)
        t_parallel, r_parallel = run(cache=True, workers=args.workers)
        print(f"parallel kernel x{args.workers}    : {t_parallel:8.2f} s", flush=True)

        identical = (
            results_identical(r_scalar, r_batched)
            and results_identical(r_scalar, r_uncached)
            and results_identical(r_scalar, r_parallel)
        )
        if not identical:
            print("FAIL: kernel sweeps diverged from the scalar reference")
            return 1
        print("per-slot records byte-identical across all four modes", flush=True)

        t_phys_scalar, t_phys_kernel, n_lanes, phys_identical = _bench_slot_physics(
            experiment,
            n_runs=len(policies),
            n_slots=phys_slots,
            seed=11,
            reps=phys_reps,
        )
    if not phys_identical:
        print("FAIL: slot-physics micro-bench stats diverged (scalar vs kernel)")
        return 1
    phys_speedup = t_phys_scalar / t_phys_kernel
    end_to_end = t_scalar / t_batched
    print(
        f"slot physics ({n_lanes} lanes x {phys_slots} slots): "
        f"scalar {t_phys_scalar:.3f} s vs kernel {t_phys_kernel:.3f} s "
        f"-> {phys_speedup:.1f}x (floor {KERNEL_SPEEDUP_FLOOR:.0f}x)",
        flush=True,
    )
    print(f"end-to-end cached sweep: {end_to_end:.2f}x", flush=True)
    if phys_speedup < KERNEL_SPEEDUP_FLOOR:
        print(
            f"FAIL: batched kernel speedup {phys_speedup:.1f}x is below the "
            f"{KERNEL_SPEEDUP_FLOOR:.0f}x floor"
        )
        return 1

    report = {
        "bench": "vectorized_slot_kernel",
        "config": {
            "dataset": "mhealth-like",
            "n_windows": n_windows,
            "n_seeds": n_seeds,
            "n_policies": len(policies),
            "workers": args.workers,
            "physics_lanes": n_lanes,
            "physics_slots": phys_slots,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "timings_s": {
            "sweep_sequential_scalar": round(t_scalar, 3),
            "sweep_sequential_kernel": round(t_batched, 3),
            "sweep_uncached_kernel": round(t_uncached, 3),
            f"sweep_parallel_kernel_x{args.workers}": round(t_parallel, 3),
            "physics_scalar_loop": round(t_phys_scalar, 4),
            "physics_kernel_scan": round(t_phys_kernel, 4),
        },
        "speedup": {
            "physics_kernel_vs_scalar": round(phys_speedup, 2),
            "physics_floor": KERNEL_SPEEDUP_FLOOR,
            "sweep_kernel_vs_scalar": round(end_to_end, 2),
        },
        "records_identical": identical,
        "physics_stats_identical": phys_identical,
    }
    print(json.dumps(report["speedup"], indent=2))
    output = args.output
    if output is None and not args.smoke:
        output = KERNEL_OUTPUT
    if output:
        write_stamped_json(output, report, wall_time_s=total_clock.elapsed_s)
        print(f"wrote {output}")
    return 0


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.cold_start:
        return run_cold_start(args)
    if args.chaos:
        return run_chaos(args)
    if args.kernel:
        return run_kernel(args)
    policies = paper_policy_grid()
    if args.smoke:
        n_windows, n_seeds = 40, 2
    else:
        n_windows, n_seeds = args.n_windows, args.seeds

    print(
        f"building experiment (n_windows={n_windows}, grid={len(policies)} policies, "
        f"seeds={n_seeds}, workers={args.workers}) ...",
        flush=True,
    )
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=n_windows)
    )

    run = lambda **kw: timed_sweep(  # noqa: E731
        experiment, policies, n_seeds=n_seeds, seed=11, **kw
    )
    with WallClock() as total_clock:
        t_uncached, r_uncached = run(cache=False, workers=1)
        print(f"sequential uncached : {t_uncached:8.2f} s", flush=True)
        t_cached, r_cached = run(cache=True, workers=1)
        print(f"sequential cached   : {t_cached:8.2f} s", flush=True)
        t_parallel, r_parallel = run(cache=True, workers=args.workers)
        print(f"parallel cached x{args.workers}  : {t_parallel:8.2f} s", flush=True)

        # Overhead pass: same cached sequential sweep, full observability.
        # In smoke mode each leg takes a fraction of a second, so take
        # min-of-3 interleaved pairs to keep the budget gate stable
        # against machine noise.  Both legs force the scalar slot loop:
        # observability disables the vectorized kernel anyway, and a
        # kernel-fast baseline would book the kernel speedup as tracing
        # overhead and blow the budget for the wrong reason.
        # The traced leg also streams a TimeSeriesRecorder at a hot
        # cadence, so the <10% budget gates tracing AND live recording
        # together — a watchable run must not cost more than a traced
        # one did.
        reps = 3 if args.smoke else 1
        t_base, t_traced = None, None
        ts_samples = 0
        with tempfile.TemporaryDirectory(prefix="bench-ts-") as ts_dir:
            for rep in range(reps):
                t_plain_i, _ = run(cache=True, workers=1, use_kernel=False)
                obs = Observability()
                recorder = attach_recorder(
                    obs,
                    os.path.join(ts_dir, f"timeseries-{rep}.jsonl"),
                    interval_s=0.05,
                )
                t_traced_i, r_traced = run(
                    cache=True, workers=1, obs=obs, use_kernel=False
                )
                recorder.close()
                ts_samples = recorder.samples_written
                t_base = t_plain_i if t_base is None else min(t_base, t_plain_i)
                t_traced = (
                    t_traced_i if t_traced is None else min(t_traced, t_traced_i)
                )
        overhead = (t_traced - t_base) / t_base
        print(
            f"traced cached       : {t_traced:8.2f} s "
            f"({overhead:+.1%} vs untraced, {len(obs.tracer.events)} events, "
            f"{ts_samples} timeseries sample(s))",
            flush=True,
        )

    identical = (
        results_identical(r_uncached, r_cached)
        and results_identical(r_uncached, r_parallel)
        and results_identical(r_uncached, r_traced)
    )
    if not identical:
        print("FAIL: cached/parallel/traced sweeps diverged from the baseline")
        return 1
    print("per-slot records byte-identical across all four modes")
    if args.smoke and overhead > OVERHEAD_BUDGET:
        print(
            f"FAIL: tracing overhead {overhead:.1%} exceeds the "
            f"{OVERHEAD_BUDGET:.0%} budget"
        )
        return 1

    best = min(t_cached, t_parallel)
    report = {
        "bench": "policy_sweep_performance",
        "config": {
            "dataset": "mhealth-like",
            "n_windows": n_windows,
            "n_seeds": n_seeds,
            "n_policies": len(policies),
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "timings_s": {
            "sequential_uncached": round(t_uncached, 3),
            "sequential_cached": round(t_cached, 3),
            f"parallel_cached_x{args.workers}": round(t_parallel, 3),
            "sequential_cached_traced": round(t_traced, 3),
        },
        "speedup": {
            "cached_vs_uncached": round(t_uncached / t_cached, 2),
            "parallel_vs_uncached": round(t_uncached / t_parallel, 2),
            "best_vs_uncached": round(t_uncached / best, 2),
        },
        "tracing": {
            "overhead_fraction": round(overhead, 4),
            "budget_fraction": OVERHEAD_BUDGET,
            "trace_events": len(obs.tracer.events),
            "timeseries_samples": ts_samples,
        },
        "records_identical": identical,
    }
    print(json.dumps({**report["speedup"], **report["tracing"]}, indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = DEFAULT_OUTPUT
    if output:
        write_stamped_json(output, report, wall_time_s=total_clock.elapsed_s)
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
