"""Temporally continuous activity sequences.

Every Origin mechanism — skipping inferences, anticipating the next
activity from the current one, recalling stale classifications — rests
on the observation that "human activities do not usually stop abruptly"
(paper §III-A).  This module models that continuity with a semi-Markov
process: each activity bout lasts a geometrically distributed number of
windows whose mean comes from the activity's ``mean_dwell_s``, and
transitions between *different* activities follow a uniform (or custom)
switch distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.datasets.activities import Activity, activity_catalog
from repro.errors import ConfigurationError, DatasetError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class ActivitySegment:
    """A contiguous bout of one activity, in window units."""

    activity: Activity
    start_window: int
    n_windows: int

    def __post_init__(self) -> None:
        if self.start_window < 0 or self.n_windows < 1:
            raise DatasetError(
                f"invalid segment: start={self.start_window}, n={self.n_windows}"
            )

    @property
    def end_window(self) -> int:
        """Exclusive end index."""
        return self.start_window + self.n_windows


class MarkovActivityModel:
    """Semi-Markov generator of activity sequences.

    Parameters
    ----------
    activities:
        The class set (ordering defines label indices downstream).
    window_duration_s:
        Duration of one scheduling window; dwell times are expressed in
        windows of this length.
    switch_matrix:
        Optional mapping ``activity -> {next_activity: probability}``
        over *different* activities (self-transitions are governed by
        dwell times, not this matrix).  Defaults to uniform switching.
    dwell_scale:
        Multiplies every activity's mean dwell time; 1.0 reproduces the
        catalog values.
    """

    def __init__(
        self,
        activities: Sequence[Activity],
        *,
        window_duration_s: float = 2.56,
        switch_matrix: Optional[Mapping[Activity, Mapping[Activity, float]]] = None,
        dwell_scale: float = 1.0,
    ) -> None:
        if len(activities) < 2:
            raise ConfigurationError("need at least two activities")
        if len(set(activities)) != len(activities):
            raise ConfigurationError("activities must be unique")
        self.activities = list(activities)
        self.window_duration_s = check_positive("window_duration_s", window_duration_s)
        self.dwell_scale = check_positive("dwell_scale", dwell_scale)
        self._index = {activity: i for i, activity in enumerate(self.activities)}
        profiles = activity_catalog(self.activities)
        self._mean_dwell_windows = {
            profile.activity: max(
                profile.mean_dwell_s * self.dwell_scale / self.window_duration_s, 1.0
            )
            for profile in profiles
        }
        self._switch = self._build_switch_matrix(switch_matrix)

    # ------------------------------------------------------------------

    def _build_switch_matrix(
        self, switch_matrix: Optional[Mapping[Activity, Mapping[Activity, float]]]
    ) -> Dict[Activity, np.ndarray]:
        n = len(self.activities)
        matrix: Dict[Activity, np.ndarray] = {}
        for activity in self.activities:
            if switch_matrix is None or activity not in switch_matrix:
                row = np.ones(n)
            else:
                row = np.zeros(n)
                for target, probability in switch_matrix[activity].items():
                    if target not in self._index:
                        raise ConfigurationError(f"unknown switch target {target!r}")
                    if probability < 0:
                        raise ConfigurationError("switch probabilities must be >= 0")
                    row[self._index[target]] = probability
            row[self._index[activity]] = 0.0  # no self-switch
            total = row.sum()
            if total <= 0:
                raise ConfigurationError(
                    f"activity {activity} has no valid switch targets"
                )
            matrix[activity] = row / total
        return matrix

    # ------------------------------------------------------------------

    def mean_dwell_windows(self, activity: Activity) -> float:
        """Mean bout length of ``activity``, in windows."""
        if activity not in self._mean_dwell_windows:
            raise DatasetError(f"{activity} is not part of this model")
        return self._mean_dwell_windows[activity]

    def sample_segments(
        self,
        n_windows: int,
        seed: SeedLike = None,
        *,
        initial: Optional[Activity] = None,
    ) -> List[ActivitySegment]:
        """A sequence of segments covering exactly ``n_windows`` windows."""
        check_positive_int("n_windows", n_windows)
        rng = as_generator(seed)
        current = initial if initial is not None else self.activities[
            int(rng.integers(len(self.activities)))
        ]
        if current not in self._index:
            raise DatasetError(f"initial activity {current} is not part of this model")

        segments: List[ActivitySegment] = []
        cursor = 0
        while cursor < n_windows:
            mean_dwell = self._mean_dwell_windows[current]
            # Geometric dwell with the requested mean, at least 1 window.
            dwell = 1 + int(rng.geometric(1.0 / mean_dwell)) - 1 if mean_dwell > 1 else 1
            dwell = max(min(dwell, n_windows - cursor), 1)
            segments.append(ActivitySegment(current, cursor, dwell))
            cursor += dwell
            current = self.activities[
                int(rng.choice(len(self.activities), p=self._switch[current]))
            ]
        return segments

    def sample_labels(
        self,
        n_windows: int,
        seed: SeedLike = None,
        *,
        initial: Optional[Activity] = None,
    ) -> List[Activity]:
        """Per-window activity labels (expanded segments)."""
        segments = self.sample_segments(n_windows, seed, initial=initial)
        return segments_to_window_labels(segments)

    def empirical_continuity(self, n_windows: int = 20_000, seed: SeedLike = 0) -> float:
        """Fraction of windows whose successor has the same label.

        A sanity metric: Origin's recall/anticipation mechanisms need
        this to be high (>~0.9 for realistic dwell times).
        """
        labels = self.sample_labels(n_windows, seed)
        same = sum(a == b for a, b in zip(labels, labels[1:]))
        return same / max(len(labels) - 1, 1)


def segments_to_window_labels(segments: Sequence[ActivitySegment]) -> List[Activity]:
    """Expand segments into one label per window, validating contiguity."""
    labels: List[Activity] = []
    cursor = 0
    for segment in segments:
        if segment.start_window != cursor:
            raise DatasetError(
                f"segments are not contiguous at window {cursor} "
                f"(segment starts at {segment.start_window})"
            )
        labels.extend([segment.activity] * segment.n_windows)
        cursor = segment.end_window
    return labels
