"""Tests for losses, optimizers, Sequential, Trainer and metrics."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import (
    SGD,
    Adam,
    CrossEntropyLoss,
    Sequential,
    Trainer,
    accuracy,
    build_har_cnn,
    confusion_matrix,
    macro_f1,
    per_class_accuracy,
)
from repro.nn.layers import Dense, ReLU
from repro.nn.metrics import accuracy_by_class_report, topk_accuracy


def tiny_classifier(seed=0):
    return Sequential([Dense(8, seed=seed), ReLU(), Dense(3, seed=seed + 1)]).build((4,))


def blob_data(n=120, seed=0):
    """Three linearly separable blobs in 4-D."""
    rng = np.random.default_rng(seed)
    centers = np.array(
        [[3, 0, 0, 0], [0, 3, 0, 0], [0, 0, 3, 0]], dtype=float
    )
    y = rng.integers(0, 3, size=n)
    X = centers[y] + rng.normal(0, 0.5, size=(n, 4))
    return X, y


class TestCrossEntropyLoss:
    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-4

    def test_uniform_loss_is_log_classes(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 5))
        assert loss.forward(logits, np.array([0, 1, 2, 3])) == pytest.approx(np.log(5))

    def test_backward_before_forward(self):
        with pytest.raises(ModelError):
            CrossEntropyLoss().backward()

    def test_label_out_of_range(self):
        with pytest.raises(ModelError):
            CrossEntropyLoss().forward(np.zeros((2, 3)), np.array([0, 3]))

    def test_invalid_smoothing(self):
        with pytest.raises(ModelError):
            CrossEntropyLoss(label_smoothing=1.0)


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        param = np.array([4.0])
        sgd = SGD(learning_rate=0.1)
        for _ in range(100):
            sgd.step([(param, 2 * param)])  # d/dx x^2
        assert abs(param[0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        plain, fast = np.array([4.0]), np.array([4.0])
        sgd = SGD(learning_rate=0.01)
        sgd_m = SGD(learning_rate=0.01, momentum=0.9)
        for _ in range(20):
            sgd.step([(plain, 2 * plain)])
            sgd_m.step([(fast, 2 * fast)])
        assert abs(fast[0]) < abs(plain[0])

    def test_adam_descends(self):
        param = np.array([4.0, -3.0])
        adam = Adam(learning_rate=0.1)
        for _ in range(200):
            adam.step([(param, 2 * param)])
        np.testing.assert_allclose(param, 0.0, atol=1e-2)

    def test_adam_state_is_per_parameter(self):
        a, b = np.array([1.0]), np.array([100.0])
        adam = Adam(learning_rate=0.1)
        adam.step([(a, np.array([1.0])), (b, np.array([1.0]))])
        # Bias-corrected first step is -lr * sign(grad) for both.
        assert a[0] == pytest.approx(0.9, abs=1e-6)
        assert b[0] == pytest.approx(99.9, abs=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            SGD().step([(np.zeros(3), np.zeros(4))])

    def test_invalid_hyperparams(self):
        with pytest.raises(Exception):
            SGD(learning_rate=0)
        with pytest.raises(ModelError):
            Adam(beta1=1.0)
        with pytest.raises(ModelError):
            SGD(momentum=1.0)


class TestSequential:
    def test_build_infers_shapes(self):
        model = tiny_classifier()
        assert model.output_shape == (3,)

    def test_forward_before_build(self):
        model = Sequential([Dense(2, seed=0)])
        with pytest.raises(ModelError):
            model.forward(np.zeros((1, 4)))

    def test_predict_proba_rows_sum_to_one(self):
        model = tiny_classifier()
        probs = model.predict_proba(np.random.default_rng(0).random((10, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_predict_batching_consistent(self):
        model = tiny_classifier()
        X = np.random.default_rng(0).random((20, 4))
        np.testing.assert_array_equal(
            model.predict(X, batch_size=7), model.predict(X, batch_size=20)
        )

    def test_state_dict_roundtrip(self):
        model_a = tiny_classifier(seed=0)
        model_b = tiny_classifier(seed=99)
        model_b.load_state_dict(model_a.state_dict())
        x = np.random.default_rng(1).random((5, 4))
        np.testing.assert_allclose(model_a.predict_logits(x), model_b.predict_logits(x))

    def test_state_dict_mismatch_rejected(self):
        model = tiny_classifier()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ModelError):
            model.load_state_dict(state)

    def test_summary_contains_layers(self):
        summary = tiny_classifier().summary()
        assert "Dense" in summary
        assert "total" in summary

    def test_n_params(self):
        assert tiny_classifier().n_params() == (4 * 8 + 8) + (8 * 3 + 3)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Sequential([])


class TestTrainer:
    def test_learns_separable_blobs(self):
        X, y = blob_data()
        model = tiny_classifier()
        trainer = Trainer(model, optimizer=Adam(learning_rate=0.01))
        history = trainer.fit(X, y, epochs=30, batch_size=16, seed=0)
        assert history.train_accuracy[-1] > 0.95
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping_restores_best(self):
        X, y = blob_data()
        Xv, yv = blob_data(40, seed=1)
        model = tiny_classifier()
        trainer = Trainer(model, optimizer=Adam(learning_rate=0.01))
        history = trainer.fit(
            X, y, epochs=60, batch_size=16, seed=0,
            validation=(Xv, yv), early_stopping_patience=3,
        )
        assert history.n_epochs <= 60
        assert history.best_epoch >= 0
        best_val = max(history.val_accuracy)
        assert accuracy(yv, model.predict(Xv)) == pytest.approx(best_val, abs=1e-9)

    def test_reproducible_training(self):
        X, y = blob_data()
        histories = []
        for _ in range(2):
            model = tiny_classifier(seed=3)
            histories.append(
                Trainer(model, optimizer=Adam(0.01)).fit(
                    X, y, epochs=5, batch_size=16, seed=7
                )
            )
        assert histories[0].train_loss == histories[1].train_loss

    def test_size_mismatch(self):
        with pytest.raises(ModelError):
            Trainer(tiny_classifier()).fit(np.zeros((3, 4)), np.zeros(2))

    def test_har_cnn_trains_on_blobs_of_windows(self):
        # Smoke: the real architecture wires up and optimizes.
        model = build_har_cnn(3, 32, 2, seed=0)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3, 32))
        y = (X[:, 0].mean(axis=1) > 0).astype(int)
        X[y == 1] += 1.5
        history = Trainer(model, optimizer=Adam(0.005)).fit(
            X, y, epochs=15, batch_size=8, seed=1
        )
        assert history.train_accuracy[-1] > 0.8


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([0, 1, 1], [0, 1, 0]) == pytest.approx(2 / 3)

    def test_confusion_matrix(self):
        matrix = confusion_matrix([0, 0, 1], [0, 1, 1], n_classes=2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_per_class_accuracy(self):
        result = per_class_accuracy([0, 0, 1, 2], [0, 1, 1, 0], 3)
        np.testing.assert_allclose(result, [0.5, 1.0, 0.0])

    def test_macro_f1_perfect(self):
        assert macro_f1([0, 1, 2], [0, 1, 2], 3) == pytest.approx(1.0)

    def test_macro_f1_worst(self):
        assert macro_f1([0, 0, 0], [1, 1, 1], 2) == 0.0

    def test_topk(self):
        probs = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        assert topk_accuracy([1, 0], probs, k=1) == 0.0
        assert topk_accuracy([1, 1], probs, k=2) == 1.0

    def test_topk_invalid_k(self):
        with pytest.raises(ModelError):
            topk_accuracy([0], np.array([[1.0, 0.0]]), k=3)

    def test_report(self):
        report = accuracy_by_class_report([0, 1], [0, 1], ["a", "b"])
        assert report == {"a": 1.0, "b": 1.0, "overall": 1.0}

    def test_empty_labels_rejected(self):
        with pytest.raises(ModelError):
            accuracy([], [])
