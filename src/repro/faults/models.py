"""Declarative fault models.

Each model is a frozen dataclass describing *what* goes wrong and
*when*; the runtime state machines (link loss chains, brownout windows)
live in :mod:`repro.faults.engine`.  Validation happens at construction
so a bad plan fails loudly before any simulation runs.

``node_id`` semantics: link-level models (:class:`PacketLoss`,
:class:`GilbertElliottLoss`, :class:`PayloadCorruption`) accept
``node_id=None`` meaning "every link"; node-level models name one node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import FaultError


def _check_slot(name: str, value: int) -> None:
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise FaultError(f"{name} must be an integer slot index, got {value!r}")
    if value < 0:
        raise FaultError(f"{name} must be >= 0, got {value}")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= float(value) <= 1.0:
        raise FaultError(f"{name} must be in [0, 1], got {value}")


def _check_window(name: str, start: int, end: int) -> None:
    _check_slot(f"{name} start", start)
    _check_slot(f"{name} end", end)
    if end <= start:
        raise FaultError(f"{name} must satisfy end > start, got [{start}, {end})")


@dataclass(frozen=True)
class FaultModel:
    """Base class; concrete models define their own fields."""

    def involved_node(self) -> Optional[int]:
        """The node this fault names (``None`` = host-side or all links)."""
        return getattr(self, "node_id", None)


@dataclass(frozen=True)
class NodeDeath(FaultModel):
    """Permanent node failure: dead from ``at_slot`` onward."""

    node_id: int
    at_slot: int

    def __post_init__(self) -> None:
        _check_slot("at_slot", self.at_slot)


@dataclass(frozen=True)
class Brownout(FaultModel):
    """Transient supply collapse with recovery.

    The node is offline for slots ``[start_slot, start_slot +
    duration_slots)``: it neither harvests nor computes, its capacitor is
    drained and any in-flight inference is lost.  From the end of the
    window it participates again (with an empty capacitor, so actual
    recovery — the first completed inference — takes longer; the engine
    measures that as time-to-recover).
    """

    node_id: int
    start_slot: int
    duration_slots: int

    def __post_init__(self) -> None:
        _check_slot("start_slot", self.start_slot)
        if self.duration_slots < 1:
            raise FaultError(
                f"duration_slots must be >= 1, got {self.duration_slots}"
            )

    @property
    def end_slot(self) -> int:
        """First slot after the brownout (node back online)."""
        return self.start_slot + self.duration_slots

    def covers(self, slot: int) -> bool:
        """Whether ``slot`` falls inside the offline window."""
        return self.start_slot <= slot < self.end_slot


@dataclass(frozen=True)
class _WindowedLinkFault(FaultModel):
    """Shared fields of per-message link faults."""

    rate: float
    node_id: Optional[int] = None
    start_slot: int = 0
    end_slot: Optional[int] = None

    def __post_init__(self) -> None:
        _check_probability("rate", self.rate)
        _check_slot("start_slot", self.start_slot)
        if self.end_slot is not None:
            _check_window("active window", self.start_slot, self.end_slot)

    def active_at(self, slot: int) -> bool:
        """Whether this fault applies to a message sent at ``slot``."""
        if slot < self.start_slot:
            return False
        return self.end_slot is None or slot < self.end_slot


@dataclass(frozen=True)
class PacketLoss(_WindowedLinkFault):
    """i.i.d. Bernoulli loss: each message dropped with ``rate``."""


@dataclass(frozen=True)
class PayloadCorruption(_WindowedLinkFault):
    """Each delivered message's label is garbled with ``rate``.

    A corrupted message arrives (and is counted as delivered) but
    carries a uniformly random *wrong* class label — the host has no
    checksum and ingests it as a normal vote.
    """


@dataclass(frozen=True)
class GilbertElliottLoss(FaultModel):
    """Two-state (good/bad) burst loss model.

    The per-link channel is a Markov chain stepped once per message:
    in the good state messages drop with ``loss_good``, in the bad state
    with ``loss_bad``; the chain moves good→bad with ``p_good_to_bad``
    and bad→good with ``p_bad_to_good``.  Long-run loss rate is
    ``pi_b * loss_bad + (1 - pi_b) * loss_good`` with
    ``pi_b = p_good_to_bad / (p_good_to_bad + p_bad_to_good)``.
    """

    p_good_to_bad: float
    p_bad_to_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0
    node_id: Optional[int] = None

    def __post_init__(self) -> None:
        _check_probability("p_good_to_bad", self.p_good_to_bad)
        _check_probability("p_bad_to_good", self.p_bad_to_good)
        _check_probability("loss_good", self.loss_good)
        _check_probability("loss_bad", self.loss_bad)
        if self.p_good_to_bad + self.p_bad_to_good == 0.0:
            raise FaultError(
                "p_good_to_bad and p_bad_to_good cannot both be 0 "
                "(the chain would never leave its initial state by design; "
                "use PacketLoss for a static channel)"
            )

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run fraction of messages dropped."""
        pi_b = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return pi_b * self.loss_bad + (1.0 - pi_b) * self.loss_good


@dataclass(frozen=True)
class HarvesterDropout(FaultModel):
    """Shadowing: the node's harvester yields ``factor`` of its trace
    during each ``(start, end)`` window, while the node itself stays up
    and can still spend stored energy."""

    node_id: int
    windows: Tuple[Tuple[int, int], ...]
    factor: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "windows", tuple((int(a), int(b)) for a, b in self.windows)
        )
        if not self.windows:
            raise FaultError("HarvesterDropout needs at least one window")
        for start, end in self.windows:
            _check_window("dropout window", start, end)
        _check_probability("factor", self.factor)

    def scale_at(self, slot: int) -> float:
        """Harvest multiplier for ``slot`` (1.0 outside all windows)."""
        for start, end in self.windows:
            if start <= slot < end:
                return self.factor
        return 1.0


@dataclass(frozen=True)
class HostRestart(FaultModel):
    """The host reboots at ``at_slot``: its recall store is wiped, so
    every node must report again before it can vote."""

    at_slot: int

    def __post_init__(self) -> None:
        _check_slot("at_slot", self.at_slot)
