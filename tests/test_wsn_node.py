"""Tests for SensorNode, HostDevice and BodyAreaNetwork."""

import numpy as np
import pytest

from repro.datasets.body import BodyLocation
from repro.energy.harvester import Harvester
from repro.energy.nvp import NonVolatileProcessor
from repro.energy.storage import Capacitor
from repro.energy.traces import PowerTrace
from repro.errors import SimulationError
from repro.nn import Sequential, build_har_cnn
from repro.wsn.comm import CommLink, RadioProfile
from repro.wsn.host import HostDevice, ReceivedVote
from repro.wsn.network import BodyAreaNetwork
from repro.wsn.node import InferenceOutcome, NodeCosts, SensorNode


def make_node(
    node_id=0,
    watts=1e-3,
    n_slots=50,
    inference_energy=100e-6,
    capacity=1e-3,
    volatile=False,
    **node_kwargs,
):
    """A node over a constant-power trace for predictable arithmetic."""
    model = build_har_cnn(2, 32, 3, seed=node_id)
    trace = PowerTrace(dt_s=1.0, watts=np.full(n_slots, watts))
    return SensorNode(
        node_id=node_id,
        location=list(BodyLocation)[node_id % 3],
        model=model,
        inference_energy_j=inference_energy,
        harvester=Harvester(trace),
        capacitor=Capacitor(capacity_j=capacity),
        nvp=NonVolatileProcessor(checkpoint_overhead=0.0, volatile=volatile),
        comm=CommLink(RadioProfile.ble()),
        slot_duration_s=1.0,
        **node_kwargs,
    )


def window():
    return np.random.default_rng(0).normal(size=(2, 32)).astype(np.float32)


class TestSensorNodeHarvesting:
    def test_idle_slot_accumulates(self):
        node = make_node(watts=1e-3)
        node.idle_slot(0)
        assert node.stored_energy_j == pytest.approx(1e-3, rel=0.01)
        assert node.stats.slots == 1

    def test_harvest_capped_by_capacity(self):
        node = make_node(watts=1e-2, capacity=5e-3)
        for slot in range(3):
            node.idle_slot(slot)
        assert node.stored_energy_j <= 5e-3

    def test_beyond_trace_harvests_nothing(self):
        node = make_node(n_slots=2)
        node.idle_slot(5)
        assert node.stored_energy_j < 1e-6


class TestSensorNodeInference:
    def test_completes_with_ample_energy(self):
        node = make_node(watts=1e-3, inference_energy=100e-6)
        outcome = node.active_slot(0, window())
        assert outcome.completed
        assert outcome.predicted_label is not None
        assert outcome.probabilities.shape == (3,)
        assert outcome.confidence is not None
        assert node.stats.completions == 1

    def test_fails_without_energy_but_keeps_progress(self):
        node = make_node(watts=50e-6, inference_energy=200e-6)
        outcome = node.active_slot(0, window())
        assert not outcome.completed
        assert node.nvp.remaining_work_j < 200e-6  # partial progress kept

    def test_nvp_finishes_over_multiple_slots(self):
        node = make_node(watts=100e-6, inference_energy=220e-6)
        results = [node.active_slot(slot, window()) for slot in range(4)]
        assert any(o.completed for o in results)
        completed = next(o for o in results if o.completed)
        assert completed.started_slot == 0  # classified the slot-0 window

    def test_volatile_node_restarts_each_slot(self):
        node = make_node(watts=100e-6, inference_energy=220e-6, volatile=True)
        for slot in range(5):
            outcome = node.active_slot(slot, window())
            assert not outcome.completed
            assert outcome.started_slot == slot  # fresh window each time

    def test_stale_task_aborted(self):
        node = make_node(
            watts=10e-6, inference_energy=500e-6, max_task_age_slots=2
        )
        node.active_slot(0, window())
        node.active_slot(1, window())
        aborts_before = node.nvp.aborted_tasks
        node.active_slot(2, window())  # age 2 >= max -> abort, restart
        assert node.nvp.aborted_tasks == aborts_before + 1

    def test_sense_cost_charged(self):
        node = make_node(watts=1e-3)
        node.active_slot(0, window())
        assert node.stats.consumed_j >= node.costs.sense_j

    def test_comm_charged_on_completion(self):
        node = make_node(watts=1e-3)
        node.active_slot(0, window())
        assert node.comm.messages_sent == 1
        assert node.stats.comm_j > 0

    def test_can_start_inference(self):
        node = make_node(watts=1e-3, inference_energy=100e-6)
        assert not node.can_start_inference()  # empty capacitor
        node.idle_slot(0)
        assert node.can_start_inference()

    def test_reset(self):
        node = make_node(watts=1e-3)
        node.active_slot(0, window())
        node.reset()
        assert node.stored_energy_j == 0.0
        assert node.stats.completions == 0

    def test_completion_rate(self):
        node = make_node(watts=1e-3)
        node.active_slot(0, window())
        assert node.stats.completion_rate == 1.0


class TestInferenceOutcomeValidation:
    def test_completed_requires_prediction(self):
        with pytest.raises(SimulationError):
            InferenceOutcome(0, BodyLocation.CHEST, 0, 0, True)


class TestNodeCosts:
    def test_invalid_rejected(self):
        with pytest.raises(Exception):
            NodeCosts(sense_j=-1.0)
        with pytest.raises(Exception):
            NodeCosts(result_message_bytes=0)


class TestHostDevice:
    def make_outcome(self, node_id, label, slot, confidence=0.1):
        probs = np.full(3, 0.1)
        probs[label] = 0.8
        return InferenceOutcome(
            node_id=node_id,
            location=BodyLocation.CHEST,
            slot_index=slot,
            started_slot=slot,
            completed=True,
            predicted_label=label,
            probabilities=probs,
            confidence=confidence,
        )

    def test_recall_remembers_latest(self):
        host = HostDevice(vote=lambda votes, slot: votes[0].label)
        host.receive(self.make_outcome(1, 0, slot=0))
        host.receive(self.make_outcome(1, 2, slot=5))
        vote = host.remembered_for(1)
        assert vote.label == 2
        assert vote.received_slot == 5

    def test_classify_uses_vote_function(self):
        host = HostDevice(vote=lambda votes, slot: max(v.label for v in votes))
        host.receive(self.make_outcome(0, 1, slot=0))
        host.receive(self.make_outcome(1, 2, slot=1))
        assert host.classify(2) == 2
        assert host.decisions_made == 1

    def test_classify_empty_memory(self):
        host = HostDevice(vote=lambda votes, slot: 0)
        assert host.classify(0) is None

    def test_recall_age_expiry(self):
        host = HostDevice(
            vote=lambda votes, slot: votes[0].label, max_recall_age_slots=3
        )
        host.receive(self.make_outcome(0, 1, slot=0))
        assert host.classify(3) == 1
        assert host.classify(4) is None

    def test_incomplete_outcome_rejected(self):
        host = HostDevice(vote=lambda votes, slot: 0)
        with pytest.raises(SimulationError):
            host.receive(
                InferenceOutcome(0, BodyLocation.CHEST, 0, 0, False)
            )

    def test_reset(self):
        host = HostDevice(vote=lambda votes, slot: votes[0].label)
        host.receive(self.make_outcome(0, 1, slot=0))
        host.reset()
        assert host.remembered_votes() == []
        assert host.messages_received == 0

    def test_vote_age(self):
        vote = ReceivedVote(0, 1, 0.1, None, received_slot=5, started_slot=3)
        assert vote.age(10) == 7


class TestBodyAreaNetwork:
    def make_network(self, watts=1e-3):
        nodes = [make_node(i, watts=watts) for i in range(3)]
        host = HostDevice(vote=lambda votes, slot: votes[-1].label)
        return BodyAreaNetwork(nodes, host), nodes

    def test_step_slot_routes_active_and_idle(self):
        network, nodes = self.make_network()
        outcomes = network.step_slot(0, [0], {0: window()})
        assert len(outcomes) == 1
        assert nodes[1].stats.slots == 1  # idle nodes still harvested
        assert nodes[1].stats.active_slots == 0

    def test_completed_outcomes_reach_host(self):
        network, _ = self.make_network()
        network.step_slot(0, [0], {0: window()})
        assert network.host.messages_received == 1

    def test_missing_window_rejected(self):
        network, _ = self.make_network()
        with pytest.raises(SimulationError):
            network.step_slot(0, [0], {})

    def test_unknown_node_rejected(self):
        network, _ = self.make_network()
        with pytest.raises(SimulationError):
            network.step_slot(0, [99], {99: window()})

    def test_node_lookup(self):
        network, nodes = self.make_network()
        assert network.node(1) is nodes[1]
        assert network.node_at(nodes[2].location) is nodes[2]
        assert network.node_ids() == [0, 1, 2]

    def test_duplicate_ids_rejected(self):
        nodes = [make_node(0), make_node(0)]
        with pytest.raises(SimulationError):
            BodyAreaNetwork(nodes, HostDevice(vote=lambda v, s: 0))

    def test_energy_totals(self):
        network, _ = self.make_network()
        network.step_slot(0, [0, 1, 2], {i: window() for i in range(3)})
        assert network.total_harvested_j() > 0
        assert network.total_consumed_j() > 0

    def test_reset(self):
        network, nodes = self.make_network()
        network.step_slot(0, [0], {0: window()})
        network.reset()
        assert all(node.stats.slots == 0 for node in nodes)
        assert network.host.messages_received == 0
