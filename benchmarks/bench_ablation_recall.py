"""Ablation A — recall on/off at a fixed ER-r level.

DESIGN.md calls out recall (persisting each sensor's last
classification) as the mechanism that makes the ensemble possible at
all on harvested energy: without it (plain AAS) the system output rides
on a single fresh inference.
"""

import numpy as np
import pytest

from benchmarks.conftest import averaged_event_accuracy
from repro.core.policies import aas_policy, aasr_policy
from repro.utils.text import format_table

RR_LENGTHS = (3, 12)


@pytest.fixture(scope="module")
def recall_table(mhealth_exp):
    rows = {}
    for n in RR_LENGTHS:
        without, _ = averaged_event_accuracy(mhealth_exp, aas_policy(n))
        with_recall, _ = averaged_event_accuracy(mhealth_exp, aasr_policy(n))
        rows[n] = (without, with_recall)
    return rows


def test_ablation_recall_render(recall_table, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        ["ER-r level", "AAS (no recall)", "AASR (recall)", "delta (pts)"],
        [
            [f"RR{n}", a * 100, b * 100, (b - a) * 100]
            for n, (a, b) in recall_table.items()
        ],
        title="=== Ablation A: recall on/off (event accuracy, %) ===",
    )
    save_result("ablation_recall", table)


def test_ablation_recall_helps_on_average(recall_table, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    deltas = [b - a for a, b in recall_table.values()]
    assert np.mean(deltas) > 0.0, recall_table


def test_ablation_timing(benchmark, mhealth_exp):
    benchmark.pedantic(
        lambda: mhealth_exp.run(aasr_policy(12), seed=3, n_windows=120),
        rounds=1,
        iterations=1,
    )
