"""Energy-aware structured pruning.

Implements the Baseline-2 recipe of the paper (§IV-C): starting from the
unpruned per-location CNN (Baseline-1), greedily remove channels/units —
always from the currently most energy-hungry layer, always the unit with
the smallest L2 norm — until the model's estimated per-inference energy
fits a joule budget derived from the average harvested power (the
approach of Yang et al., CVPR'17, adapted to 1-D CNNs).  An optional
fine-tuning pass recovers accuracy after surgery.

Pruning is *structural*: a new, genuinely smaller ``Sequential`` is
rebuilt each step, so the energy model sees the real reduced shapes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.energy_model import EnergyCostModel, estimate_inference_energy, layer_energy
from repro.nn.layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1D,
    Layer,
    MaxPool1D,
    ReLU,
)
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer, TrainingHistory
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class PruneStep:
    """One unit removal."""

    layer_name: str
    unit_index: int
    unit_norm: float
    energy_after_j: float


@dataclass
class PruningResult:
    """Outcome of :meth:`EnergyAwarePruner.prune_to_budget`."""

    model: Sequential
    energy_before_j: float
    energy_after_j: float
    budget_j: float
    steps: List[PruneStep] = field(default_factory=list)
    finetune_history: Optional[TrainingHistory] = None

    @property
    def met_budget(self) -> bool:
        """Whether the final model fits the budget."""
        return self.energy_after_j <= self.budget_j

    @property
    def n_removed(self) -> int:
        """Total units removed."""
        return len(self.steps)


# ---------------------------------------------------------------------------
# model surgery
# ---------------------------------------------------------------------------


def _layer_seed(layer: Layer) -> int:
    """A stable per-layer seed so rebuilt models stay deterministic.

    Conv/Dense initializations are overwritten by the saved weights, but
    the Dropout mask stream is live during fine-tuning — an entropy-
    seeded generator there would make pruning non-reproducible.
    """
    return zlib.crc32(layer.name.encode("utf-8"))


def fresh_layer_from_weights(layer: Layer, weights: dict) -> Layer:
    """A new, unbuilt layer matching ``layer`` but sized from ``weights``.

    Conv/Dense widths come from the weight shapes; everything else
    (type, name, kernel size, pool size, dropout rate) is copied from
    ``layer``.  Used by the pruner's model surgery and by
    :mod:`repro.store.bundles` to rebuild a pruned checkpoint on top of
    the unpruned architecture template.
    """
    if isinstance(layer, Conv1D):
        filters = weights["W"].shape[0]
        return Conv1D(filters, layer.kernel_size, seed=_layer_seed(layer), name=layer.name)
    if isinstance(layer, Dense):
        units = weights["W"].shape[1]
        return Dense(units, seed=_layer_seed(layer), name=layer.name)
    if isinstance(layer, BatchNorm1D):
        return BatchNorm1D(layer.momentum, layer.epsilon, name=layer.name)
    if isinstance(layer, Dropout):
        return Dropout(layer.rate, seed=_layer_seed(layer), name=layer.name)
    if isinstance(layer, MaxPool1D):
        return MaxPool1D(layer.pool_size, name=layer.name)
    if isinstance(layer, GlobalAvgPool1D):
        return GlobalAvgPool1D(name=layer.name)
    if isinstance(layer, ReLU):
        return ReLU(name=layer.name)
    if isinstance(layer, Flatten):
        return Flatten(name=layer.name)
    raise ModelError(f"pruner cannot rebuild layer type {type(layer).__name__}")


def _collect_weights(model: Sequential) -> List[dict]:
    """Deep copies of every layer's parameter dict (plus BN stats)."""
    collected = []
    for layer in model.layers:
        weights = {key: value.copy() for key, value in layer.params.items()}
        if isinstance(layer, BatchNorm1D):
            weights["running_mean"] = layer.running_mean.copy()
            weights["running_var"] = layer.running_var.copy()
        collected.append(weights)
    return collected


def _rebuild(model: Sequential, weights: List[dict]) -> Sequential:
    """A new Sequential with ``weights``' shapes, parameters assigned."""
    layers = [
        fresh_layer_from_weights(layer, layer_weights)
        for layer, layer_weights in zip(model.layers, weights)
    ]
    rebuilt = Sequential(layers, name=model.name)
    rebuilt.build(model.input_shape)
    for layer, layer_weights in zip(rebuilt.layers, weights):
        for key, value in layer.params.items():
            incoming = layer_weights[key]
            if incoming.shape != value.shape:
                raise ModelError(
                    f"surgery produced inconsistent shape for {layer.name}.{key}: "
                    f"{incoming.shape} vs {value.shape}"
                )
            value[...] = incoming
        if isinstance(layer, BatchNorm1D):
            layer.running_mean[...] = layer_weights["running_mean"]
            layer.running_var[...] = layer_weights["running_var"]
    return rebuilt


def prune_output_unit(model: Sequential, layer_index: int, unit_index: int) -> Sequential:
    """Remove output unit ``unit_index`` of layer ``layer_index``.

    Handles the downstream consumer: the next ``Conv1D`` loses an input
    channel, the next ``Dense`` loses input rows (a contiguous block when
    a ``Flatten`` sits in between), and any ``BatchNorm1D`` on the way is
    sliced.  Returns a new model; the input model is untouched.
    """
    if not model.built:
        raise ModelError("model must be built before pruning")
    target = model.layers[layer_index]
    if not isinstance(target, (Conv1D, Dense)):
        raise ModelError(f"layer {target.name!r} is not prunable")

    width = target.filters if isinstance(target, Conv1D) else target.units
    if not 0 <= unit_index < width:
        raise ModelError(f"unit {unit_index} out of range for {target.name!r} ({width})")
    if width <= 1:
        raise ModelError(f"cannot prune the last unit of {target.name!r}")

    weights = _collect_weights(model)
    keep = np.delete(np.arange(width), unit_index)

    # Shrink the producing layer.
    if isinstance(target, Conv1D):
        weights[layer_index]["W"] = weights[layer_index]["W"][keep]
    else:
        weights[layer_index]["W"] = weights[layer_index]["W"][:, keep]
    weights[layer_index]["b"] = weights[layer_index]["b"][keep]

    # Walk downstream to the consumer.
    flatten_length: Optional[int] = None
    for index in range(layer_index + 1, len(model.layers)):
        layer = model.layers[index]
        if isinstance(layer, (ReLU, Dropout, MaxPool1D)):
            continue
        if isinstance(layer, GlobalAvgPool1D):
            flatten_length = 1
            continue
        if isinstance(layer, BatchNorm1D):
            for key in ("gamma", "beta", "running_mean", "running_var"):
                weights[index][key] = weights[index][key][keep]
            continue
        if isinstance(layer, Flatten):
            flatten_length = layer.input_shape[1]
            continue
        if isinstance(layer, Conv1D):
            weights[index]["W"] = weights[index]["W"][:, keep, :]
            break
        if isinstance(layer, Dense):
            if flatten_length is None:
                row_keep = keep
            else:
                rows = np.arange(layer.input_shape[0]).reshape(width, flatten_length)
                row_keep = rows[keep].reshape(-1)
            weights[index]["W"] = weights[index]["W"][row_keep]
            break
    else:
        raise ModelError(
            f"no consumer found downstream of {target.name!r}; refusing to prune "
            "the output layer"
        )

    return _rebuild(model, weights)


# ---------------------------------------------------------------------------
# greedy pruner
# ---------------------------------------------------------------------------


def _unit_norms(layer: Layer) -> np.ndarray:
    """L2 norm of each output unit's weights."""
    if isinstance(layer, Conv1D):
        return np.linalg.norm(layer.W.reshape(layer.filters, -1), axis=1)
    if isinstance(layer, Dense):
        return np.linalg.norm(layer.W, axis=0)
    raise ModelError(f"layer {layer.name!r} has no unit norms")


class EnergyAwarePruner:
    """Greedy energy-aware structured pruner.

    Parameters
    ----------
    cost_model:
        Energy constants used to evaluate candidates.
    min_width:
        Never shrink a layer below this many output units.
    finetune_epochs / finetune_lr:
        Recovery training after pruning (skipped when no data is given).
    """

    def __init__(
        self,
        cost_model: EnergyCostModel = EnergyCostModel(),
        *,
        min_width: int = 2,
        finetune_epochs: int = 4,
        final_finetune_epochs: int = 12,
        finetune_every: int = 4,
        finetune_lr: float = 5e-4,
    ) -> None:
        if min_width < 1:
            raise ModelError(f"min_width must be >= 1, got {min_width}")
        if finetune_epochs < 0 or final_finetune_epochs < 0:
            raise ModelError("finetune epoch counts must be >= 0")
        if finetune_every < 1:
            raise ModelError(f"finetune_every must be >= 1, got {finetune_every}")
        self.cost_model = cost_model
        self.min_width = int(min_width)
        self.finetune_epochs = int(finetune_epochs)
        self.final_finetune_epochs = int(final_finetune_epochs)
        self.finetune_every = int(finetune_every)
        self.finetune_lr = float(finetune_lr)

    # ------------------------------------------------------------------

    def _prunable_indices(self, model: Sequential) -> List[int]:
        """Indices of layers whose outputs may shrink (not the logits)."""
        parametric = [
            index
            for index, layer in enumerate(model.layers)
            if isinstance(layer, (Conv1D, Dense))
        ]
        return parametric[:-1]  # final Dense produces class logits

    def _current_width(self, layer: Layer) -> int:
        return layer.filters if isinstance(layer, Conv1D) else layer.units

    def prune_to_budget(
        self,
        model: Sequential,
        budget_j: float,
        *,
        finetune_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        seed: SeedLike = None,
        max_steps: int = 10_000,
    ) -> PruningResult:
        """Prune until the inference energy fits ``budget_j``.

        Fine-tunes on ``finetune_data`` every ``finetune_every``
        removals (NetAdapt-style iterative recovery) and once more at
        the end.  Returns the pruned model along with the full step log.
        Raises if the budget is unreachable even at ``min_width``
        everywhere.
        """
        if budget_j <= 0:
            raise ModelError(f"budget_j must be positive, got {budget_j}")
        current = _rebuild(model, _collect_weights(model))  # work on a copy
        energy_before = estimate_inference_energy(current, self.cost_model)
        steps: List[PruneStep] = []
        rng = as_generator(seed)

        def finetune(epochs: int) -> Optional[TrainingHistory]:
            if finetune_data is None or epochs == 0:
                return None
            X, y = finetune_data
            trainer = Trainer(current, optimizer=Adam(learning_rate=self.finetune_lr))
            return trainer.fit(X, y, epochs=epochs, batch_size=32, seed=rng)

        energy = energy_before
        while energy > budget_j and len(steps) < max_steps:
            candidates = [
                index
                for index in self._prunable_indices(current)
                if self._current_width(current.layers[index]) > self.min_width
            ]
            if not candidates:
                raise ModelError(
                    f"budget {budget_j * 1e6:.1f} uJ unreachable: all layers at "
                    f"min_width={self.min_width} with energy {energy * 1e6:.1f} uJ"
                )
            # Yang'17: attack the most energy-hungry prunable layer.
            hungriest = max(
                candidates,
                key=lambda index: layer_energy(
                    current.layers[index], self.cost_model
                ).energy_j,
            )
            norms = _unit_norms(current.layers[hungriest])
            victim = int(norms.argmin())
            current = prune_output_unit(current, hungriest, victim)
            energy = estimate_inference_energy(current, self.cost_model)
            steps.append(
                PruneStep(
                    layer_name=current.layers[hungriest].name,
                    unit_index=victim,
                    unit_norm=float(norms[victim]),
                    energy_after_j=energy,
                )
            )
            if len(steps) % self.finetune_every == 0 and energy > budget_j:
                finetune(self.finetune_epochs)

        history = finetune(self.final_finetune_epochs) if steps else None

        return PruningResult(
            model=current,
            energy_before_j=energy_before,
            energy_after_j=energy,
            budget_j=float(budget_j),
            steps=steps,
            finetune_history=history,
        )
