"""DecisionEngine: the extracted decision core reproduces the scalar loop."""

from __future__ import annotations

import pytest

from repro.core.engine import NodeSlotState, make_vote
from repro.core.ensemble.voting import MajorityVote, WeightedMajorityVote
from repro.core.policies import (
    aas_policy,
    aasr_policy,
    naive_policy,
    origin_policy,
    rr_policy,
)
from repro.errors import SimulationError
from repro.serve.client import DeviceSim
from repro.serve.session import ServeProfile


def profile_for(experiment) -> ServeProfile:
    return ServeProfile.from_experiment("test", experiment)


def drive(experiment, policy, seed):
    """Run the engine against simulated device physics, no simulation loop."""
    sim = DeviceSim(experiment, seed=seed)
    engine = ServeProfile(
        name="test",
        dataset=experiment.dataset,
        bundle=experiment.bundle,
        config=sim.config,
    ).build_engine(policy)
    labels, actives = [], []
    active = engine.begin_slot(0, sim.states())
    for slot in range(sim.n_windows):
        actives.append(list(active))
        outcomes = sim.step(slot, active)
        labels.append(engine.finish_slot(slot, outcomes, receive=True))
        if slot + 1 < sim.n_windows:
            active = engine.begin_slot(slot + 1, sim.states())
    return labels, actives, engine


class TestReplayIdentity:
    """The extraction contract: engine-driven == inline scalar loop."""

    @pytest.mark.parametrize(
        "policy",
        [rr_policy(3), aas_policy(6), aasr_policy(6), origin_policy(6)],
        ids=lambda policy: policy.name,
    )
    def test_matches_offline_run(self, tiny_experiment, policy):
        labels, actives, _ = drive(tiny_experiment, policy, seed=9)
        offline = tiny_experiment.run(policy, seed=9)
        assert labels == [r.predicted_label for r in offline.records]
        assert actives == [list(r.active_nodes) for r in offline.records]

    def test_adaptive_confidence_counted(self, tiny_experiment):
        _, _, adaptive = drive(tiny_experiment, origin_policy(6), seed=9)
        _, _, frozen = drive(tiny_experiment, aasr_policy(6), seed=9)
        assert adaptive.confidence_updates > 0
        assert frozen.confidence_updates == 0

    def test_sessions_do_not_share_confidence(self, tiny_experiment):
        # Each engine adapts a private copy of the bundle's matrix.
        profile = profile_for(tiny_experiment)
        first = profile.build_engine(origin_policy(6))
        second = profile.build_engine(origin_policy(6))
        assert first.confidence is not second.confidence
        assert first.confidence is not tiny_experiment.bundle.confidence_matrix


class TestSlotPhases:
    def test_offline_node_masked_from_active_set(self, tiny_experiment):
        profile = profile_for(tiny_experiment)
        engine = profile.build_engine(naive_policy(len(profile.node_ids)))
        states = {
            node_id: NodeSlotState(energy_j=1e-3, ready=True)
            for node_id in profile.node_ids
        }
        assert engine.begin_slot(0, states) == profile.node_ids  # all-on
        dead = profile.node_ids[0]
        states[dead] = NodeSlotState(energy_j=1e-3, ready=True, online=False)
        assert dead not in engine.begin_slot(1, states)

    def test_decide_false_skips_vote_keeps_last_final(self, tiny_experiment):
        sim = DeviceSim(tiny_experiment, seed=9)
        engine = profile_for(tiny_experiment).build_engine(origin_policy(6))
        active = engine.begin_slot(0, sim.states())
        outcomes = sim.step(0, active)
        engine.finish_slot(0, outcomes, receive=True)
        anchor = engine.last_final
        active = engine.begin_slot(1, sim.states())
        outcomes = sim.step(1, active)
        shed = engine.finish_slot(1, outcomes, receive=True, decide=False)
        assert shed is None
        assert engine.last_final == anchor

    def test_on_completion_hook_sees_completed_outcomes(self, tiny_experiment):
        sim = DeviceSim(tiny_experiment, seed=9)
        engine = profile_for(tiny_experiment).build_engine(origin_policy(6))
        seen = []
        for slot in range(4):
            active = engine.begin_slot(slot, sim.states())
            outcomes = sim.step(slot, active)
            engine.finish_slot(
                slot, outcomes, receive=True, on_completion=seen.append
            )
        assert all(outcome.completed for outcome in seen)


class TestMakeVote:
    def test_vote_flavors(self, tiny_bundle):
        matrix = tiny_bundle.confidence_matrix
        assert isinstance(make_vote(aasr_policy(6), matrix), MajorityVote)
        assert isinstance(
            make_vote(origin_policy(6), matrix), WeightedMajorityVote
        )

    def test_last_inference_has_no_host_vote(self, tiny_bundle):
        with pytest.raises(SimulationError):
            make_vote(rr_policy(3), tiny_bundle.confidence_matrix)
