"""Wire protocol for the online serving path.

Frames are length-prefixed JSON: a 4-byte big-endian payload size
followed by a UTF-8 JSON object.  JSON keeps the stream debuggable
(``nc`` + eyeballs) and — because python's ``json`` round-trips floats
through the shortest-repr algorithm — *exact*: an energy value decoded
on the server compares equal to the float the device serialized, which
is what lets a served session reproduce an offline run bit for bit.

One exchange per scheduling slot::

    device                          server
    ------                          ------
    hello{profile, policy, seed,
          n_windows, states}   -->
                               <--  hello_ack{session, active}   (slot 0)
    window{slot=0, reports,
           states for slot 1}  -->
                               <--  decision{slot=0, label, shed,
                                             active_next}        (slot 1)
    ...
    window{slot=N-1, reports}  -->      (no next states: timeline over)
                               <--  decision{slot=N-1, ..., active_next=None}
    bye{}                      -->
                               <--  bye_ack{stats}

The decision frame piggybacks the *next* slot's active set, so steady
state costs one round-trip per slot.  Any protocol violation is answered
with an ``error`` frame and the connection closes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.engine import NodeSlotState
from repro.core.policies import AggregationMode, PolicySpec
from repro.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "WireReport",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "validate_frame",
    "policy_to_wire",
    "policy_from_wire",
    "states_to_wire",
    "states_from_wire",
    "report_to_wire",
    "report_from_wire",
]

#: Bump on any incompatible frame-layout change.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's JSON payload.  A window frame carries at
#: most a handful of per-node reports and states — kilobytes — so any
#: larger length prefix is garbage (or an attack) and drops the session.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

#: ``{frame type: required fields}`` (beyond ``type`` itself).
FRAME_FIELDS: Dict[str, Sequence[str]] = {
    "hello": ("version", "profile", "policy", "seed", "n_windows", "states"),
    "hello_ack": ("version", "session", "active"),
    "window": ("slot", "reports"),
    "decision": ("slot", "label", "shed", "active_next"),
    "bye": (),
    "bye_ack": ("stats",),
    "error": ("message",),
}


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialize one frame to its on-wire bytes (prefix + JSON)."""
    payload = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES="
            f"{MAX_FRAME_BYTES}"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, Any]:
    """Parse one frame's JSON payload (the bytes after the prefix)."""
    try:
        frame = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeError(f"undecodable frame: {error}") from None
    if not isinstance(frame, dict):
        raise ServeError(f"frame must be a JSON object, got {type(frame).__name__}")
    return frame


def validate_frame(
    frame: Dict[str, Any], expected_type: Optional[str] = None
) -> str:
    """Check a decoded frame's type and required fields; returns the type."""
    kind = frame.get("type")
    if kind not in FRAME_FIELDS:
        raise ServeError(f"unknown frame type {kind!r}")
    if expected_type is not None and kind != expected_type:
        raise ServeError(f"expected a {expected_type!r} frame, got {kind!r}")
    missing = [name for name in FRAME_FIELDS[kind] if name not in frame]
    if missing:
        raise ServeError(f"{kind!r} frame is missing fields {missing}")
    return kind


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF before the prefix."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between frames
        raise ServeError("connection dropped mid-prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ServeError(
            f"frame length {length} exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ServeError("connection dropped mid-frame") from None
    return decode_frame(payload)


async def write_frame(
    writer: asyncio.StreamWriter, frame: Dict[str, Any]
) -> None:
    """Serialize and send one frame, honouring transport backpressure."""
    writer.write(encode_frame(frame))
    await writer.drain()


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------


def policy_to_wire(spec: PolicySpec) -> Dict[str, Any]:
    """A :class:`PolicySpec` as a wire dict."""
    return {
        "name": spec.name,
        "rr_length": spec.rr_length,
        "activity_aware": spec.activity_aware,
        "aggregation": spec.aggregation.value,
        "adaptive_confidence": spec.adaptive_confidence,
        "all_on": spec.all_on,
    }


def policy_from_wire(wire: Dict[str, Any]) -> PolicySpec:
    """Rebuild a :class:`PolicySpec` from its wire dict."""
    try:
        return PolicySpec(
            name=str(wire["name"]),
            rr_length=int(wire["rr_length"]),
            activity_aware=bool(wire["activity_aware"]),
            aggregation=AggregationMode(wire["aggregation"]),
            adaptive_confidence=bool(wire.get("adaptive_confidence", False)),
            all_on=bool(wire.get("all_on", False)),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ServeError(f"bad policy spec on the wire: {error}") from None


def states_to_wire(states: Dict[int, NodeSlotState]) -> Dict[str, Any]:
    """Scheduler-visible node states as a wire dict.

    JSON object keys are strings, so node ids stringify; insertion order
    survives the round trip (python dicts and ``json`` both preserve
    it), which scheduling tie-breaks depend on.
    """
    return {
        str(node_id): [state.energy_j, state.ready, state.online]
        for node_id, state in states.items()
    }


def states_from_wire(wire: Dict[str, Any]) -> Dict[int, NodeSlotState]:
    """Rebuild the ordered ``{node_id: NodeSlotState}`` map."""
    try:
        return {
            int(node_id): NodeSlotState(
                energy_j=float(raw[0]), ready=bool(raw[1]), online=bool(raw[2])
            )
            for node_id, raw in wire.items()
        }
    except (ValueError, TypeError, IndexError) as error:
        raise ServeError(f"bad node states on the wire: {error}") from None


@dataclass(frozen=True)
class WireReport:
    """A node's slot report as the decision core consumes it.

    Duck-types the report fields of
    :class:`~repro.wsn.node.InferenceOutcome` (the engine only reads
    these) without the outcome's completed-implies-probabilities
    invariant — softmax vectors never cross the wire, only the label and
    the variance-of-softmax confidence, exactly what the paper's result
    message carries.
    """

    node_id: int
    slot_index: int
    started_slot: int
    completed: bool
    delivered: bool = True
    predicted_label: Optional[int] = None
    confidence: Optional[float] = None
    reported_label: Optional[int] = None
    probabilities: Optional[Any] = None

    @property
    def delivered_label(self) -> Optional[int]:
        """The label as the host receives it (garbled if corrupted)."""
        return (
            self.reported_label
            if self.reported_label is not None
            else self.predicted_label
        )


def report_to_wire(outcome: Any) -> List[Any]:
    """An outcome/report as a compact wire list.

    ``[node_id, slot, started_slot, completed, delivered, label,
    confidence, reported_label]`` — positional, because a window frame
    carries one per active node every 2.56 simulated seconds.
    """
    return [
        outcome.node_id,
        outcome.slot_index,
        outcome.started_slot,
        outcome.completed,
        outcome.delivered,
        outcome.predicted_label,
        (None if outcome.confidence is None else float(outcome.confidence)),
        outcome.reported_label,
    ]


def report_from_wire(wire: Sequence[Any]) -> WireReport:
    """Rebuild a :class:`WireReport` from its wire list."""
    if not isinstance(wire, (list, tuple)) or len(wire) != 8:
        raise ServeError(f"bad report on the wire: {wire!r}")
    try:
        return WireReport(
            node_id=int(wire[0]),
            slot_index=int(wire[1]),
            started_slot=(wire[2] if wire[2] is None else int(wire[2])),
            completed=bool(wire[3]),
            delivered=bool(wire[4]),
            predicted_label=(wire[5] if wire[5] is None else int(wire[5])),
            confidence=(wire[6] if wire[6] is None else float(wire[6])),
            reported_label=(wire[7] if wire[7] is None else int(wire[7])),
        )
    except (ValueError, TypeError) as error:
        raise ServeError(f"bad report on the wire: {error}") from None
