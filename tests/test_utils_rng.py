"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    SeedSequenceFactory,
    as_generator,
    iter_batches,
    permutation_indices,
    spawn_generators,
)


class TestAsGenerator:
    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_children_are_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_reproducible_from_int(self):
        first = [g.random() for g in spawn_generators(9, 3)]
        second = [g.random() for g in spawn_generators(9, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestSeedSequenceFactory:
    def test_same_label_same_stream(self):
        factory = SeedSequenceFactory(3)
        a = factory.generator("x").random(4)
        b = factory.generator("x").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_differ(self):
        factory = SeedSequenceFactory(3)
        assert not np.allclose(
            factory.generator("x").random(8), factory.generator("y").random(8)
        )

    def test_order_independent(self):
        f1 = SeedSequenceFactory(3)
        _ = f1.generator("a")
        x1 = f1.generator("b").random(4)
        f2 = SeedSequenceFactory(3)
        x2 = f2.generator("b").random(4)
        np.testing.assert_array_equal(x1, x2)

    def test_different_root_seeds_differ(self):
        a = SeedSequenceFactory(1).generator("x").random(8)
        b = SeedSequenceFactory(2).generator("x").random(8)
        assert not np.allclose(a, b)

    def test_child_factory_independent(self):
        parent = SeedSequenceFactory(3)
        child = parent.child("sub")
        assert isinstance(child, SeedSequenceFactory)
        assert child.root_seed != parent.root_seed

    def test_integers_reproducible(self):
        factory = SeedSequenceFactory(5)
        assert factory.integers("s", 4) == factory.integers("s", 4)
        assert len(factory.integers("s", 4)) == 4


class TestIterBatches:
    def test_exact_split(self):
        assert list(iter_batches([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_remainder(self):
        assert list(iter_batches([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_empty(self):
        assert list(iter_batches([], 3)) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches([1], 0))


class TestPermutationIndices:
    def test_none_rng_identity(self):
        np.testing.assert_array_equal(permutation_indices(None, 5), np.arange(5))

    def test_rng_permutes(self):
        result = permutation_indices(np.random.default_rng(0), 100)
        assert sorted(result) == list(range(100))
