"""The paper's contribution: scheduling + adaptive ensemble learning.

* :mod:`repro.core.scheduling` — naive, extended round-robin (RR3..RR12)
  and activity-aware scheduling (AAS) with the per-activity rank table;
* :mod:`repro.core.ensemble` — majority voting, the variance-of-softmax
  confidence matrix, and confidence-weighted voting;
* :mod:`repro.core.policies` — complete system configurations
  (RR / AAS / AASR / Origin) and the two fully-powered baselines.
"""

from repro.core.engine import DecisionEngine, NodeSlotState, make_vote
from repro.core.ensemble import (
    ConfidenceMatrix,
    MajorityVote,
    WeightedMajorityVote,
)
from repro.core.scheduling import (
    ActivityAwareScheduler,
    ExtendedRoundRobin,
    NaiveAllOn,
    RankTable,
    SchedulingContext,
    SchedulingPolicy,
)
from repro.core.policies import (
    AggregationMode,
    Baseline1,
    Baseline2,
    OriginPolicy,
    PolicySpec,
    aas_policy,
    aasr_policy,
    naive_policy,
    origin_policy,
    rr_policy,
)

__all__ = [
    "DecisionEngine",
    "NodeSlotState",
    "make_vote",
    "ConfidenceMatrix",
    "MajorityVote",
    "WeightedMajorityVote",
    "ActivityAwareScheduler",
    "ExtendedRoundRobin",
    "NaiveAllOn",
    "RankTable",
    "SchedulingContext",
    "SchedulingPolicy",
    "AggregationMode",
    "Baseline1",
    "Baseline2",
    "OriginPolicy",
    "PolicySpec",
    "aas_policy",
    "aasr_policy",
    "naive_policy",
    "origin_policy",
    "rr_policy",
]
