"""Activity classes and their physical metadata.

The paper reports per-activity accuracy for six MHEALTH activities
(walking, climbing stairs, cycling, running, jogging, jumping) and five
PAMAP2 activities (same minus jogging).  Each activity carries the
physical parameters the synthesizer needs: a fundamental cadence,
movement intensity, and a typical dwell time that drives the Markov
sequence model (temporal continuity, paper §III-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import DatasetError


class Activity(enum.Enum):
    """Human activities used across both datasets."""

    WALKING = "walking"
    CLIMBING = "climbing"
    CYCLING = "cycling"
    RUNNING = "running"
    JOGGING = "jogging"
    JUMPING = "jumping"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def label(self) -> str:
        """Capitalized display name matching the paper's figures."""
        return self.value.capitalize()


@dataclass(frozen=True)
class ActivityProfile:
    """Physical characteristics of one activity.

    Attributes
    ----------
    activity:
        The activity this profile describes.
    cadence_hz:
        Fundamental movement frequency (steps/pedal strokes per second).
    intensity:
        Dimensionless overall movement amplitude scale (1.0 = walking).
    mean_dwell_s:
        Mean duration of one bout of the activity, in seconds.  Drives
        the self-transition probability of the Markov sequence model.
    """

    activity: Activity
    cadence_hz: float
    intensity: float
    mean_dwell_s: float

    def __post_init__(self) -> None:
        if self.cadence_hz <= 0:
            raise DatasetError(f"cadence_hz must be positive, got {self.cadence_hz}")
        if self.intensity <= 0:
            raise DatasetError(f"intensity must be positive, got {self.intensity}")
        if self.mean_dwell_s <= 0:
            raise DatasetError(f"mean_dwell_s must be positive, got {self.mean_dwell_s}")


_CATALOG: Dict[Activity, ActivityProfile] = {
    Activity.WALKING: ActivityProfile(Activity.WALKING, cadence_hz=1.8, intensity=1.0, mean_dwell_s=45.0),
    Activity.CLIMBING: ActivityProfile(Activity.CLIMBING, cadence_hz=1.4, intensity=1.2, mean_dwell_s=25.0),
    Activity.CYCLING: ActivityProfile(Activity.CYCLING, cadence_hz=1.5, intensity=0.9, mean_dwell_s=60.0),
    Activity.RUNNING: ActivityProfile(Activity.RUNNING, cadence_hz=2.9, intensity=2.4, mean_dwell_s=35.0),
    Activity.JOGGING: ActivityProfile(Activity.JOGGING, cadence_hz=2.3, intensity=1.7, mean_dwell_s=35.0),
    Activity.JUMPING: ActivityProfile(Activity.JUMPING, cadence_hz=2.0, intensity=2.8, mean_dwell_s=12.0),
}


def activity_catalog(activities: Iterable[Activity]) -> List[ActivityProfile]:
    """Profiles for ``activities``, in the given order.

    Raises
    ------
    DatasetError
        If any activity has no registered profile (cannot happen for the
        built-in enum, but guards subclass-style extension mistakes).
    """
    profiles = []
    for activity in activities:
        if activity not in _CATALOG:
            raise DatasetError(f"no profile registered for activity {activity!r}")
        profiles.append(_CATALOG[activity])
    return profiles


def profile_of(activity: Activity) -> ActivityProfile:
    """The registered profile for a single activity."""
    return activity_catalog([activity])[0]
