"""Tests for repro.utils.text."""

import pytest

from repro.utils.text import (
    format_percent,
    format_table,
    horizontal_bar_chart,
    indent_block,
)


class TestFormatPercent:
    def test_fraction_input(self):
        assert format_percent(0.5) == "50.00%"

    def test_percentage_input(self):
        assert format_percent(83.88) == "83.88%"

    def test_digits(self):
        assert format_percent(0.12345, digits=1) == "12.3%"


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(
            ["name", "value"], [["walking", 1.234], ["x", 2.0]], float_digits=2
        )
        lines = table.splitlines()
        assert "walking" in lines[2]
        assert "1.23" in lines[2]
        assert len(lines) == 4

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_widths_consistent(self):
        table = format_table(["h"], [["a-long-cell"], ["b"]])
        lines = table.splitlines()
        # Separator spans the widest cell.
        assert len(lines[1]) == len("a-long-cell")


class TestHorizontalBarChart:
    def test_basic_render(self):
        chart = horizontal_bar_chart({"a": 1.0, "b": 2.0}, max_width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10  # max value fills the width

    def test_scales_to_max_value(self):
        chart = horizontal_bar_chart({"a": 5.0}, max_width=10, max_value=10.0)
        assert chart.count("█") == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bar_chart({})

    def test_unit_suffix(self):
        chart = horizontal_bar_chart({"a": 1.0}, unit="%")
        assert "1.00%" in chart


class TestIndentBlock:
    def test_indents_nonempty_lines(self):
        assert indent_block("a\n\nb", "  ") == "  a\n\n  b"
