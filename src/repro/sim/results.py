"""Result containers for the slot-by-slot simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.datasets.activities import Activity
from repro.errors import SimulationError
from repro.faults.stats import FaultStats
from repro.wsn.node import NodeStats


@dataclass(frozen=True)
class SlotRecord:
    """What happened in one scheduling slot.

    ``dropped_messages`` counts completed inferences whose result
    message was lost in transit this slot (always 0 without link
    faults).
    """

    slot_index: int
    true_label: int
    predicted_label: Optional[int]
    active_nodes: tuple
    completions: int
    attempts: int
    dropped_messages: int = 0

    @property
    def correct(self) -> bool:
        """Whether the system's output matched the true activity."""
        return self.predicted_label == self.true_label


@dataclass(frozen=True)
class CompletionBreakdown:
    """Fig. 1-style inference completion statistics."""

    n_slots: int
    slots_all_completed: int
    slots_some_completed: int
    slots_none_completed: int

    def __post_init__(self) -> None:
        total = (
            self.slots_all_completed
            + self.slots_some_completed
            + self.slots_none_completed
        )
        if total != self.n_slots:
            raise SimulationError(
                f"breakdown does not add up: {total} != {self.n_slots}"
            )

    @property
    def all_fraction(self) -> float:
        """Fraction of slots where every active node completed."""
        return self.slots_all_completed / self.n_slots if self.n_slots else 0.0

    @property
    def some_fraction(self) -> float:
        """Fraction where at least one (but not all) completed."""
        return self.slots_some_completed / self.n_slots if self.n_slots else 0.0

    @property
    def any_fraction(self) -> float:
        """Fraction where at least one completed."""
        return self.all_fraction + self.some_fraction

    @property
    def failed_fraction(self) -> float:
        """Fraction with no completion at all."""
        return self.slots_none_completed / self.n_slots if self.n_slots else 0.0


@dataclass
class ExperimentResult:
    """Full outcome of one policy run."""

    policy_name: str
    activities: List[Activity]
    records: List[SlotRecord] = field(default_factory=list)
    node_stats: Dict[int, NodeStats] = field(default_factory=dict)
    comm_energy_j: float = 0.0
    confidence_updates: int = 0
    #: Degradation accounting, attached when a non-empty fault plan ran.
    fault_stats: Optional[FaultStats] = None

    # ------------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        """Simulated slot count."""
        return len(self.records)

    @property
    def n_classes(self) -> int:
        """Activity class count."""
        return len(self.activities)

    def true_labels(self) -> np.ndarray:
        """Ground-truth label per slot."""
        return np.array([record.true_label for record in self.records], dtype=np.int64)

    def predicted_labels(self) -> np.ndarray:
        """System output per slot; -1 where no decision existed yet."""
        return np.array(
            [
                record.predicted_label if record.predicted_label is not None else -1
                for record in self.records
            ],
            dtype=np.int64,
        )

    @property
    def overall_accuracy(self) -> float:
        """Fraction of slots classified correctly (no-decision = wrong).

        The strict stream metric: every window counts, skipped windows
        fall back to the recalled output and transitions are penalized
        in full.
        """
        if not self.records:
            raise SimulationError("no slots recorded")
        return float(np.mean([record.correct for record in self.records]))

    def per_activity_accuracy(self) -> Dict[Activity, float]:
        """Per-slot accuracy restricted to slots of each activity."""
        true = self.true_labels()
        pred = self.predicted_labels()
        report = {}
        for label, activity in enumerate(self.activities):
            mask = true == label
            report[activity] = (
                float((pred[mask] == label).mean()) if mask.any() else float("nan")
            )
        return report

    # ------------------------------------------------------------------
    # classification-event metrics (the paper's regime)
    # ------------------------------------------------------------------

    def _event_records(self) -> List[SlotRecord]:
        return [record for record in self.records if record.completions > 0]

    @property
    def n_events(self) -> int:
        """Slots in which at least one inference completed."""
        return len(self._event_records())

    @property
    def event_accuracy(self) -> float:
        """Accuracy over classification events.

        The paper reports accuracy per classification (e.g. Fig. 6's
        "10000 successful classifications"): a window that is skipped to
        harvest costs nothing, but an inference that completes *late*
        (NVP spanning several slots) is judged against the activity at
        completion time — staleness is penalized, skipping is not.
        """
        events = self._event_records()
        if not events:
            return 0.0
        return float(np.mean([record.correct for record in events]))

    def per_activity_event_accuracy(self) -> Dict[Activity, float]:
        """Event accuracy restricted to each activity."""
        events = self._event_records()
        report = {}
        for label, activity in enumerate(self.activities):
            of_class = [r for r in events if r.true_label == label]
            report[activity] = (
                float(np.mean([r.correct for r in of_class]))
                if of_class
                else float("nan")
            )
        return report

    # ------------------------------------------------------------------

    @property
    def total_attempts(self) -> int:
        """Active-slot inference attempts across all nodes."""
        return sum(record.attempts for record in self.records)

    @property
    def total_completions(self) -> int:
        """Completed inferences across all nodes."""
        return sum(record.completions for record in self.records)

    @property
    def completion_rate(self) -> float:
        """Completions per attempt slot."""
        return (
            self.total_completions / self.total_attempts if self.total_attempts else 0.0
        )

    @property
    def total_dropped_messages(self) -> int:
        """Result messages lost in transit across the run."""
        return sum(record.dropped_messages for record in self.records)

    # ------------------------------------------------------------------
    # graceful-degradation accounting
    # ------------------------------------------------------------------

    def degradation_vs(self, fault_free: "ExperimentResult") -> Dict[str, float]:
        """Accuracy-under-fault deltas against a fault-free run.

        Returns absolute accuracy deltas (fault-free minus faulted, so
        positive = degradation) and the retained fraction of fault-free
        event accuracy — the headline graceful-degradation number.
        """
        if fault_free.n_slots == 0 or self.n_slots == 0:
            raise SimulationError("both runs need recorded slots")
        baseline_event = fault_free.event_accuracy
        return {
            "event_accuracy_delta": baseline_event - self.event_accuracy,
            "overall_accuracy_delta": (
                fault_free.overall_accuracy - self.overall_accuracy
            ),
            "retained_event_accuracy": (
                self.event_accuracy / baseline_event if baseline_event else 0.0
            ),
        }

    def completion_breakdown(self) -> CompletionBreakdown:
        """Fig. 1-style slot breakdown over *attempting* slots.

        Slots with no active node (no-ops) are excluded — the paper's
        Fig. 1 counts inference windows.
        """
        attempting = [record for record in self.records if record.attempts > 0]
        all_done = sum(
            1 for record in attempting if record.completions == record.attempts
        )
        some = sum(
            1
            for record in attempting
            if 0 < record.completions < record.attempts
        )
        none = sum(1 for record in attempting if record.completions == 0)
        return CompletionBreakdown(len(attempting), all_done, some, none)

    def summary(self) -> str:
        """One-paragraph text summary."""
        per_activity = self.per_activity_accuracy()
        lines = [
            f"{self.policy_name}: overall accuracy "
            f"{self.overall_accuracy * 100:.2f}% over {self.n_slots} slots "
            f"({self.total_completions}/{self.total_attempts} inferences completed)"
        ]
        for activity, acc in per_activity.items():
            lines.append(f"  {activity.label:<10} {acc * 100:6.2f}%")
        return "\n".join(lines)
