#!/usr/bin/env python
"""Fig. 6 in miniature: the confidence matrix adapts to unseen users.

Simulates three previously-unseen users whose noisy IMU data (<= 20 dB
SNR) initially confuses the deployed ensemble, then lets the adaptive
confidence matrix personalize over 200 iterations of 10 classifications
each — and contrasts it with a frozen matrix.

Run:  python examples/personalization.py
"""

from repro.reporting import render_fig6_personalization
from repro.sim import HARExperiment, PersonalizationExperiment, SimulationConfig


def main() -> None:
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=200)
    )
    study = PersonalizationExperiment(
        experiment, checkpoints=(1, 10, 50, 200), snr_db=20.0
    )

    # Unseen users differ in gait but stay recognizable (variability
    # beyond ~2 produces users no ensemble re-weighting can recover).
    print("Adaptive confidence matrix (the paper's design):\n")
    adaptive = study.run(n_users=3, seed=17, adaptive=True, user_variability=1.4)
    print(render_fig6_personalization(adaptive))

    print("\nAblation: frozen matrix (no personalization):\n")
    frozen = study.run(n_users=3, seed=17, adaptive=False, user_variability=1.4)
    print(frozen.summary())

    adaptive_final = sum(
        adaptive.user_final_accuracy(u) for u in adaptive.per_user_accuracy
    ) / len(adaptive.per_user_accuracy)
    frozen_final = sum(
        frozen.user_final_accuracy(u) for u in frozen.per_user_accuracy
    ) / len(frozen.per_user_accuracy)
    print(
        f"\nFinal accuracy, mean over users: adaptive {adaptive_final:.1%} "
        f"vs frozen {frozen_final:.1%}"
    )


if __name__ == "__main__":
    main()
