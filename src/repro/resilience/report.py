"""Partial-result salvage accounting for degraded sweeps.

When a sweep runs with ``on_failure="salvage"`` and some cells exhaust
their retries, the sweep returns the merged results of every surviving
cell plus a :class:`DegradationReport` describing exactly what was lost
— the execution-layer analogue of the simulator's
:class:`~repro.faults.stats.FaultStats` graceful-degradation ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class FailedCell:
    """One sweep cell that exhausted its retries."""

    cell: str
    seed: int
    attempts: int
    cause: str
    policy: Optional[str] = None


@dataclass
class DegradationReport:
    """What a salvaged sweep delivered, and what it could not.

    ``retries``/``pool_restarts`` count supervision incidents across
    the whole sweep (successful recoveries included), so a report with
    zero failed cells but nonzero retries records a sweep that was
    perturbed and fully recovered.
    """

    total_cells: int
    failed: List[FailedCell] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    pool_restarts: int = 0

    @property
    def completed_cells(self) -> int:
        """Cells whose results made it into the merged sweep."""
        return self.total_cells - len(self.failed)

    @property
    def failed_cells(self) -> int:
        """Cells lost after exhausting their retries."""
        return len(self.failed)

    @property
    def complete(self) -> bool:
        """Whether every cell survived (possibly via retries)."""
        return not self.failed

    def causes(self) -> Dict[str, int]:
        """Failure-cause histogram over the lost cells."""
        histogram: Dict[str, int] = {}
        for cell in self.failed:
            histogram[cell.cause] = histogram.get(cell.cause, 0) + 1
        return histogram

    def summary(self) -> str:
        """Multi-line human-readable account of the degradation."""
        lines = [
            f"sweep degradation: {self.completed_cells}/{self.total_cells} "
            f"cell(s) completed, {self.failed_cells} failed "
            f"({self.retries} retry(ies), {self.crashes} crash(es), "
            f"{self.timeouts} timeout(s), {self.pool_restarts} pool restart(s))"
        ]
        for cell in self.failed:
            lines.append(
                f"  {cell.cell}: {cell.cause} after {cell.attempts} attempt(s)"
            )
        return "\n".join(lines)
