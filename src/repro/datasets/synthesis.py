"""Raw IMU window synthesis.

Generates fixed-length 6-channel windows (3 accelerometer + 3 gyroscope
axes) for a given activity, body location and subject, following the
signature model in :mod:`repro.datasets.profiles`:

``x_c(t) = gravity_c + A_c * sum_h w_h sin(2*pi*f*h*t + phi_c + phi_s)
          + impacts(t) + sensor noise``

Per-window log-normal amplitude jitter and frequency wobble provide
intra-class variability, so two windows of the same activity are similar
but never identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.activities import Activity
from repro.datasets.body import BodyLocation
from repro.datasets.profiles import ActivitySignature, N_CHANNELS, SignatureTable
from repro.datasets.subjects import SubjectProfile
from repro.errors import DatasetError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class StyleWobble:
    """Momentary execution style of the wearer for one window.

    A person does not perform an activity identically from window to
    window — they speed up, slow down, move more or less vigorously.
    Crucially this wobble is a property of the *movement*, so every
    sensor on the body sees the same one at the same time: sampling one
    wobble per window and passing it to all locations produces the
    correlated errors real multi-sensor deployments exhibit (a sloppy
    window is hard for every sensor at once).

    Attributes
    ----------
    amplitude_scale / frequency_scale:
        Multiplicative deviations from the subject's nominal movement.
    """

    amplitude_scale: float = 1.0
    frequency_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.amplitude_scale <= 0 or self.frequency_scale <= 0:
            raise DatasetError("style scales must be positive")

    @staticmethod
    def sample(
        rng: np.random.Generator,
        *,
        amplitude_sigma: float = 0.25,
        frequency_sigma: float = 0.06,
    ) -> "StyleWobble":
        """Draw one wobble (log-normal, mean-one scales)."""
        return StyleWobble(
            amplitude_scale=float(np.exp(rng.normal(0.0, amplitude_sigma))),
            frequency_scale=float(np.exp(rng.normal(0.0, frequency_sigma))),
        )

#: Fixed per-axis phase offsets: axes of one rigid segment move with a
#: stable relative phase (e.g. vertical acceleration leads the pitch).
_AXIS_PHASE = np.array([0.0, 1.25, 2.1, 0.6, 1.9, 2.8])


class SignalSynthesizer:
    """Produces labeled IMU windows from a :class:`SignatureTable`.

    Parameters
    ----------
    signatures:
        Calibrated table from :func:`~repro.datasets.profiles.mhealth_signatures`
        or :func:`~repro.datasets.profiles.pamap2_signatures`.
    sample_rate_hz:
        IMU sampling rate; both real datasets use 50 Hz.
    window_size:
        Samples per window (128 at 50 Hz = 2.56 s, the paper's regime of
        "hundreds of milliseconds to seconds" per activity bout).
    """

    def __init__(
        self,
        signatures: SignatureTable,
        *,
        sample_rate_hz: float = 50.0,
        window_size: int = 128,
    ) -> None:
        if sample_rate_hz <= 0:
            raise DatasetError(f"sample_rate_hz must be positive, got {sample_rate_hz}")
        if window_size < 8:
            raise DatasetError(f"window_size must be >= 8, got {window_size}")
        self.signatures = signatures
        self.sample_rate_hz = float(sample_rate_hz)
        self.window_size = int(window_size)
        self._time = np.arange(self.window_size) / self.sample_rate_hz

    @property
    def window_duration_s(self) -> float:
        """Length of one window in seconds."""
        return self.window_size / self.sample_rate_hz

    def window(
        self,
        activity: Activity,
        location: BodyLocation,
        subject: Optional[SubjectProfile] = None,
        seed: SeedLike = None,
        *,
        style: Optional[StyleWobble] = None,
    ) -> np.ndarray:
        """One window, shape ``(N_CHANNELS, window_size)``, float32.

        Pass the *same* ``style`` for every location of one time window
        to model the shared execution wobble (see :class:`StyleWobble`);
        ``None`` draws an independent wobble per call (fine for
        training data, wrong for simulating one instant on a body).
        """
        return self.batch(
            activity, location, count=1, subject=subject, seed=seed, style=style
        )[0]

    def batch(
        self,
        activity: Activity,
        location: BodyLocation,
        count: int,
        subject: Optional[SubjectProfile] = None,
        seed: SeedLike = None,
        *,
        style: Optional[StyleWobble] = None,
    ) -> np.ndarray:
        """``count`` windows, shape ``(count, N_CHANNELS, window_size)``."""
        if count < 1:
            raise DatasetError(f"count must be >= 1, got {count}")
        rng = as_generator(seed)
        subject = subject or SubjectProfile.canonical()
        signature = self.signatures.signature(location, activity)
        noise_sigma = self.signatures.noise(location) * subject.noise_factor

        windows = np.empty((count, N_CHANNELS, self.window_size), dtype=np.float32)
        for index in range(count):
            wobble = style if style is not None else StyleWobble.sample(rng)
            windows[index] = self._one_window(
                signature, subject, noise_sigma, wobble, rng
            )
        return windows

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _one_window(
        self,
        signature: ActivitySignature,
        subject: SubjectProfile,
        noise_sigma: float,
        style: StyleWobble,
        rng: np.random.Generator,
    ) -> np.ndarray:
        jitter = signature.jitter
        freq = (
            signature.frequency_hz
            * subject.frequency_scale
            * style.frequency_scale
            * float(np.exp(rng.normal(0.0, 0.03 + 0.25 * jitter)))
        )
        amp_scale = (
            subject.amplitude_scale
            * style.amplitude_scale
            * float(np.exp(rng.normal(0.0, jitter)))
        )
        window_phase = float(rng.uniform(0.0, 2.0 * np.pi)) + subject.phase_offset

        amplitudes = np.concatenate(
            [np.asarray(signature.accel_amplitude), np.asarray(signature.gyro_amplitude)]
        )
        gravity = np.concatenate([np.asarray(signature.gravity), np.zeros(3)])

        # Periodic component: harmonic series per channel.
        signal = np.tile(gravity[:, None], (1, self.window_size)).astype(np.float64)
        phases = _AXIS_PHASE[:, None] + window_phase
        omega_t = 2.0 * np.pi * freq * self._time[None, :]
        for order, weight in enumerate(signature.harmonics, start=1):
            if weight <= 0:
                continue
            signal += (
                amplitudes[:, None]
                * amp_scale
                * weight
                * np.sin(order * omega_t + order * phases)
            )

        # Impact spikes at each footfall (decaying half-sine bursts on the
        # accelerometer channels only).
        if signature.impact > 0:
            signal[:3] += self._impact_train(signature.impact * amp_scale, freq, rng)

        # Per-channel subject gains and white sensor noise.
        signal *= np.asarray(subject.channel_gains)[:, None]
        if noise_sigma > 0:
            signal += rng.normal(0.0, noise_sigma, size=signal.shape)
        return signal.astype(np.float32)

    def _impact_train(
        self, amplitude: float, freq: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sharp decaying impacts once per period, on 3 accel axes."""
        impacts = np.zeros((3, self.window_size))
        period_samples = max(int(self.sample_rate_hz / max(freq, 1e-3)), 2)
        burst_len = max(period_samples // 6, 2)
        decay = np.exp(-np.linspace(0.0, 4.0, burst_len))
        start = int(rng.integers(0, period_samples))
        direction = np.array([0.3, 1.0, 0.35])
        while start < self.window_size:
            stop = min(start + burst_len, self.window_size)
            scale = amplitude * float(np.exp(rng.normal(0.0, 0.2)))
            impacts[:, start:stop] += direction[:, None] * scale * decay[: stop - start]
            start += period_samples
        return impacts
