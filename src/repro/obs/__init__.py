"""Observability: structured tracing, metrics, and profiling hooks.

The package is the cross-cutting instrumentation seam of the simulation
stack:

``repro.obs.schema``
    Typed event registry and the versioned trace schema (with the
    changelog CI enforces).
``repro.obs.trace``
    :class:`Tracer` / :class:`NullTracer` span-and-event recording with
    JSONL export.
``repro.obs.metrics``
    :class:`MetricsRegistry` of counters/gauges/histograms/timers with
    deterministic field-wise merge (the parallel sweep's aggregation
    substrate).
``repro.obs.observer``
    :class:`Observability` — the handle threaded through
    ``HARExperiment.run(obs=...)``, ``PolicySweep.run(obs=...)`` and the
    WSN/energy/fault layers; :data:`NULL_OBS` is the zero-overhead
    default.
``repro.obs.timeline``
    :class:`TimeSeriesRecorder` — streams cadenced metric snapshots to
    ``timeseries.jsonl`` so in-flight runs can be watched live.
``repro.obs.runs``
    Run registry: ``python -m repro.obs.runs ls|info|diff`` over
    finished runs' metadata + final metrics.
``repro.obs.watch``
    ``python -m repro.obs.watch <run-dir>`` — live terminal dashboard
    tailing an in-flight run's journal + timeseries (read-only).
``repro.obs.bench``
    ``python -m repro.obs.bench update|check`` — benchmark trajectory
    ledger + headline-metric regression gate.
``repro.obs.summarize``
    ``python -m repro.obs.summarize trace.jsonl`` — per-run report with
    per-node timelines, top timers and the fault ledger.
``repro.obs.smoke``
    ``python -m repro.obs.smoke`` — generates a small traced run's
    artifacts (used by CI).

Quickstart::

    from repro.obs import Observability

    obs = Observability()
    result = experiment.run(origin_policy(3), obs=obs)
    obs.export("trace.jsonl", "metrics.json", meta={"policy": "Origin-RR3"})
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimerStat,
)
from repro.obs.observer import NULL_OBS, NullObservability, Observability
from repro.obs.schema import (
    EVENT_KINDS,
    SCHEMA_CHANGELOG,
    TRACE_SCHEMA_VERSION,
    check_schema_changelog,
)
from repro.obs.timeline import (
    TimeSeriesRecorder,
    attach_recorder,
    read_timeseries,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    read_trace,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimerStat",
    "NULL_OBS",
    "NullObservability",
    "Observability",
    "EVENT_KINDS",
    "SCHEMA_CHANGELOG",
    "TRACE_SCHEMA_VERSION",
    "check_schema_changelog",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "read_trace",
    "write_trace",
    "TimeSeriesRecorder",
    "attach_recorder",
    "read_timeseries",
]
