"""Fig. 6 — confidence-matrix adaptation for unseen users.

Paper: three previously unseen users, Gaussian noise at <= 20 dB SNR;
the adaptive confidence matrix recovers accuracy to the base model's
level within ~100 iterations (each iteration = 10 classifications).

The bench runs 300 iterations (the paper's curve is flat by then) and
checks the recovery shape: late-phase accuracy exceeds the early phase
and lands near the clean base accuracy.
"""

import numpy as np
import pytest

from repro.reporting import render_fig6_personalization
from repro.sim.personalization import PersonalizationExperiment

CHECKPOINTS = (1, 10, 100, 300)


@pytest.fixture(scope="module")
def study(mhealth_exp):
    experiment = PersonalizationExperiment(mhealth_exp, checkpoints=CHECKPOINTS)
    # The paper's unseen users differ in gait but remain recognizable;
    # variability 1.4 keeps them in that regime (2.0 produces users so
    # far off-distribution that no ensemble re-weighting can recover).
    return experiment.run(n_users=3, seed=17, user_variability=1.4)


def test_fig6_render(study, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_result("fig6_personalization", render_fig6_personalization(study))


def test_fig6_adaptation_recovers(study, benchmark):
    """Late accuracy (iter >= 100) beats the early phase (iter <= 10)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    improvements = []
    for trajectory in study.per_user_accuracy.values():
        early = np.mean(trajectory[:2])  # iterations 1 and 10
        late = np.mean(trajectory[2:])  # iterations 100 and 300
        improvements.append(late - early)
    assert np.mean(improvements) > 0.0, study.per_user_accuracy


def test_fig6_reaches_base_level(study, benchmark):
    """Paper: steady state ~= base accuracy (sometimes above)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    finals = [study.user_final_accuracy(uid) for uid in study.per_user_accuracy]
    assert np.mean(finals) > study.base_accuracy - 0.10


def test_fig6_adaptive_beats_frozen_matrix(mhealth_exp, benchmark):
    """Ablation inside the figure: freezing the matrix removes the gain."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    experiment = PersonalizationExperiment(
        mhealth_exp, checkpoints=(1, 60), measure_window_iters=20
    )
    adaptive = experiment.run(n_users=2, seed=23, adaptive=True)
    frozen = experiment.run(n_users=2, seed=23, adaptive=False)
    adaptive_final = np.mean(
        [adaptive.user_final_accuracy(u) for u in adaptive.per_user_accuracy]
    )
    frozen_final = np.mean(
        [frozen.user_final_accuracy(u) for u in frozen.per_user_accuracy]
    )
    assert adaptive_final > frozen_final - 0.03


def test_fig6_timing(benchmark, mhealth_exp):
    experiment = PersonalizationExperiment(mhealth_exp, checkpoints=(1, 5))
    benchmark.pedantic(
        lambda: experiment.run(n_users=1, seed=3), rounds=1, iterations=1
    )
