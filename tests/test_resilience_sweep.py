"""Sweep-level resilience integration: chaos-perturbed parallel sweeps
must recover byte-identically, journaled sweeps must resume exactly, and
salvage mode must account for every lost cell.

All tests reuse the session ``tiny_experiment``; the store-deletion
chaos test trains its own micro bundle against a private store (the
idiom from ``test_store_bundles.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.errors import ConfigurationError, ResilienceError
from repro.obs.observer import Observability
from repro.resilience import ChaosAction, ChaosPlan, SweepJournal, sweep_fingerprint
from repro.sim.sweep import PolicySweep

GRID = [rr_policy(3), origin_policy(3)]


def _assert_identical(a, b, *, baselines=True):
    assert sorted(a.policies) == sorted(b.policies)
    for name in a.policies:
        lhs, rhs = a.policy(name), b.policy(name)
        assert lhs.records == rhs.records
        assert lhs.node_stats == rhs.node_stats
        assert lhs.comm_energy_j == rhs.comm_energy_j
        assert lhs.confidence_updates == rhs.confidence_updates
        assert lhs.fault_stats == rhs.fault_stats
    if baselines:
        assert sorted(a.baselines) == sorted(b.baselines)
        for name in a.baselines:
            lhs, rhs = a.baseline(name), b.baseline(name)
            np.testing.assert_array_equal(lhs.true_labels, rhs.true_labels)
            np.testing.assert_array_equal(lhs.predicted_labels, rhs.predicted_labels)


@pytest.fixture(scope="module")
def sweep(tiny_experiment):
    return PolicySweep(tiny_experiment, n_seeds=2, include_baselines=True)


@pytest.fixture(scope="module")
def reference(sweep):
    """The unperturbed sequential ground truth."""
    return sweep.run(GRID, workers=1)


class TestChaosByteIdentity:
    # With n_seeds=2 and workers=2 the sweep builds exactly 2 units
    # (one per seed), so a one-unit plan perturbs 50% of the workers.

    def test_crashed_workers_recover_identically(self, sweep, reference):
        plan = ChaosPlan(actions={0: ChaosAction(kind="crash")})
        result = sweep.run(GRID, workers=2, chaos=plan)
        _assert_identical(reference, result)
        report = result.degradation
        assert report is not None and report.complete
        assert report.crashes >= 1 and report.retries >= 1
        assert report.pool_restarts >= 1

    def test_hung_worker_reaped_by_timeout_identically(self, sweep, reference):
        plan = ChaosPlan(actions={0: ChaosAction(kind="hang", hang_s=30.0)})
        result = sweep.run(GRID, workers=2, chaos=plan, task_timeout_s=6.0)
        _assert_identical(reference, result)
        report = result.degradation
        assert report is not None and report.complete
        assert report.timeouts == 1

    def test_chaos_requires_a_pool(self, sweep):
        plan = ChaosPlan(actions={0: ChaosAction(kind="crash")})
        with pytest.raises(ConfigurationError, match="workers > 1"):
            sweep.run(GRID, workers=1, chaos=plan)

    def test_bad_on_failure_rejected(self, sweep):
        with pytest.raises(ConfigurationError, match="on_failure"):
            sweep.run(GRID, workers=1, on_failure="shrug")


class TestJournalResume:
    def test_journaled_run_matches_clean(self, sweep, reference, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        first = sweep.run(GRID, workers=1, journal=path)
        _assert_identical(reference, first)
        journal = SweepJournal.open(path, sweep_fingerprint(sweep.experiment))
        # 2 policies x 2 seeds + 2 baselines x 2 seeds
        assert len(journal) == 8
        journal.close()

    def test_resume_after_interrupt_is_byte_identical(
        self, sweep, reference, tmp_path
    ):
        path = str(tmp_path / "sweep.jsonl")
        # "Interrupt": unit 0 hangs past its timeout with retries
        # disabled, so the first run dies after journaling only the
        # surviving unit.  (A hang, not a crash: a crash would break
        # the pool and charge the innocent sibling too, while a timeout
        # requeues innocents uncharged — deterministic partial state.)
        plan = ChaosPlan(actions={0: ChaosAction(kind="hang", hang_s=30.0)})
        with pytest.raises(ResilienceError, match="degradation"):
            sweep.run(
                GRID, workers=2, journal=path, chaos=plan,
                task_timeout_s=5.0, max_retries=0, on_failure="raise",
            )
        partial = SweepJournal.open(path, sweep_fingerprint(sweep.experiment))
        n_partial = len(partial)
        partial.close()
        assert 0 < n_partial < 8

        # Resume: journaled cells are served from disk, the rest is
        # recomputed, and the merged result is byte-identical.
        obs = Observability()
        resumed = sweep.run(GRID, workers=2, journal=path, obs=obs)
        _assert_identical(reference, resumed)
        hits = obs.metrics.to_dict()["counters"].get("resilience.journal.hit", 0)
        assert hits == n_partial

        # A second resume serves everything from the journal.
        fully = sweep.run(GRID, workers=1, journal=path)
        _assert_identical(reference, fully)

    def test_journal_refuses_foreign_sweep(self, sweep, tiny_experiment, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        SweepJournal.open(path, "someone-elses-fingerprint").close()
        with pytest.raises(ResilienceError, match="different sweep"):
            sweep.run(GRID, workers=1, journal=path)
        # resume=False replaces it and proceeds.
        result = sweep.run(GRID, workers=1, journal=path, resume=False)
        assert set(result.policies) == {spec.name for spec in GRID}

    def test_open_journal_instance_is_validated(self, sweep, tmp_path):
        journal = SweepJournal.open(str(tmp_path / "sweep.jsonl"), "wrong-fp")
        with pytest.raises(ResilienceError, match="fingerprint"):
            sweep.run(GRID, workers=1, journal=journal)
        journal.close()


class TestSalvage:
    def test_parallel_salvage_reports_lost_cells(self, sweep, reference):
        # A hang (not a crash) so the innocent unit is never charged:
        # exactly unit 0's cells are lost, deterministically.
        plan = ChaosPlan(actions={0: ChaosAction(kind="hang", hang_s=30.0)})
        result = sweep.run(
            GRID, workers=2, chaos=plan, task_timeout_s=5.0,
            max_retries=0, on_failure="salvage",
        )
        report = result.degradation
        assert report is not None and not report.complete
        # Unit 0 is seed offset 0 with both policies: 2 cells lost.
        assert report.failed_cells == 2
        assert report.total_cells == 4
        assert {cell.policy for cell in report.failed} == {
            spec.name for spec in GRID
        }
        assert all("timed out" in cell.cause for cell in report.failed)
        assert all(cell.attempts == 1 for cell in report.failed)
        # Each policy keeps its surviving seed; merged results cover
        # half the records of the full run.
        for spec in GRID:
            survived = result.policy(spec.name)
            full = reference.policy(spec.name)
            assert len(survived.records) * 2 == len(full.records)

    def test_sequential_salvage_catches_cell_errors(self, tiny_experiment,
                                                    monkeypatch):
        # Inject the failure at experiment.run, so pin the sweep to the
        # scalar per-cell path (the batched kernel path never calls it;
        # its fallback salvage is covered in test_sim_kernel.py).
        scalar_sweep = PolicySweep(
            tiny_experiment, n_seeds=2, include_baselines=True, use_kernel=False
        )
        real_run = type(tiny_experiment).run

        def flaky(self, spec, **kwargs):
            if spec.name == GRID[0].name:
                raise RuntimeError("synthetic cell failure")
            return real_run(self, spec, **kwargs)

        monkeypatch.setattr(type(tiny_experiment), "run", flaky)
        result = scalar_sweep.run(GRID, workers=1, on_failure="salvage")
        report = result.degradation
        assert report is not None and report.failed_cells == 2  # both seeds
        assert GRID[0].name not in result.policies
        assert GRID[1].name in result.policies
        assert all(
            "synthetic cell failure" in cell.cause for cell in report.failed
        )

    def test_sequential_raise_propagates_original_error(self, tiny_experiment,
                                                        monkeypatch):
        scalar_sweep = PolicySweep(
            tiny_experiment, n_seeds=2, include_baselines=True, use_kernel=False
        )

        def broken(self, spec, **kwargs):
            raise RuntimeError("synthetic cell failure")

        monkeypatch.setattr(type(tiny_experiment), "run", broken)
        with pytest.raises(RuntimeError, match="synthetic cell failure"):
            scalar_sweep.run(GRID, workers=1, on_failure="raise")

    def test_parallel_raise_reports_after_finishing(self, sweep):
        plan = ChaosPlan(actions={0: ChaosAction(kind="crash")})
        with pytest.raises(ResilienceError, match="cell\\(s\\) completed"):
            sweep.run(GRID, workers=2, chaos=plan, max_retries=0)


class TestStoreDropChaos:
    def test_dropped_entry_falls_back_to_recipe_retrain(self, tmp_path, monkeypatch):
        from repro.datasets.mhealth import make_mhealth
        from repro.sim.experiment import HARExperiment, SimulationConfig
        from repro.sim.training import TrainedSensorBundle, TrainingConfig
        from repro.store import (
            ENV_STORE_DIR,
            ENV_STORE_SWITCH,
            load_trained_bundle,
            save_trained_bundle,
            trained_bundle_key,
        )
        from repro.store.core import default_store

        monkeypatch.setenv(ENV_STORE_DIR, str(tmp_path / "store"))
        monkeypatch.delenv(ENV_STORE_SWITCH, raising=False)
        fast = TrainingConfig(
            epochs=1, batch_size=32, early_stopping_patience=1,
            finetune_epochs=1, final_finetune_epochs=1, finetune_every=8,
        )
        dataset = make_mhealth(
            seed=11, train_windows_per_activity=6, val_windows_per_activity=4,
            test_windows_per_activity=4, n_train_subjects=2, n_eval_subjects=1,
        )
        bundle = TrainedSensorBundle.train(
            dataset, budget_j=160e-6, seed=5, config=fast
        )
        store = default_store()
        key = trained_bundle_key(
            dataset, 160e-6, seed=5, config=fast, cost_model=bundle.cost_model
        )
        assert save_trained_bundle(store, key, bundle) is not None
        stored = load_trained_bundle(store, key, dataset)
        assert stored is not None and stored.store_key == key
        experiment = HARExperiment(
            dataset, stored, config=SimulationConfig(n_windows=30), seed=3
        )
        sweep = PolicySweep(experiment, n_seeds=2, include_baselines=False)
        clean = sweep.run(GRID, workers=1)

        # The chaos plan deletes the entry after worker initargs are
        # computed, so rehydration misses and the recorded recipe must
        # retrain an identical bundle in each worker.
        plan = ChaosPlan(drop_store_keys=(key,))
        perturbed = sweep.run(GRID, workers=2, chaos=plan)
        assert not store.contains(key)
        _assert_identical(clean, perturbed, baselines=False)
        assert perturbed.degradation is None  # drops are not pool incidents
