"""Battery-backed host device (the user's phone).

The host receives tiny result messages from the nodes, remembers each
node's *most recent* classification (the paper's recall mechanism,
§III-B), and produces the final per-window classification by applying a
pluggable voting function — naive majority for AASR, confidence-weighted
majority for Origin.  The host is mains/battery powered, so its own
energy is not modelled; its compute is deliberately limited to lookups
and a vote, matching the paper's "minimal overhead on the host device".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.wsn.node import InferenceOutcome


@dataclass(frozen=True)
class ReceivedVote:
    """One node's most recent classification, as the host remembers it."""

    node_id: int
    label: int
    confidence: float
    probabilities: Optional[np.ndarray]
    received_slot: int
    started_slot: int

    def age(self, current_slot: int) -> int:
        """Slots since the classified window was sensed."""
        return current_slot - self.started_slot


VoteFunction = Callable[[Sequence[ReceivedVote], int], Optional[int]]


class HostDevice:
    """Aggregation endpoint with recall memory.

    Parameters
    ----------
    vote:
        ``vote(votes, current_slot) -> label or None``.  Receives every
        remembered vote (fresh and recalled); ``None`` means "no
        decision yet" (before any node has reported).
    max_recall_age_slots:
        Drop remembered votes older than this (``None`` = never expire).
    """

    def __init__(
        self,
        vote: VoteFunction,
        *,
        max_recall_age_slots: Optional[int] = None,
    ) -> None:
        if not callable(vote):
            raise SimulationError("vote must be callable")
        if max_recall_age_slots is not None and max_recall_age_slots < 1:
            raise SimulationError("max_recall_age_slots must be >= 1 or None")
        self.vote = vote
        self.max_recall_age_slots = max_recall_age_slots
        self._memory: Dict[int, ReceivedVote] = {}
        self._messages_received = 0
        self._decisions = 0

    # ------------------------------------------------------------------

    @property
    def messages_received(self) -> int:
        """Result messages received so far."""
        return self._messages_received

    @property
    def decisions_made(self) -> int:
        """Final classifications produced so far."""
        return self._decisions

    def remembered_votes(self) -> List[ReceivedVote]:
        """Current recall memory, one entry per reporting node."""
        return list(self._memory.values())

    def remembered_for(self, node_id: int) -> Optional[ReceivedVote]:
        """The remembered vote of one node (None if never reported)."""
        return self._memory.get(node_id)

    # ------------------------------------------------------------------

    def receive(self, outcome: InferenceOutcome) -> None:
        """Ingest a completed inference result from a node."""
        if not outcome.completed:
            raise SimulationError("host only receives completed inferences")
        self._messages_received += 1
        self._memory[outcome.node_id] = ReceivedVote(
            node_id=outcome.node_id,
            label=outcome.predicted_label,
            confidence=outcome.confidence if outcome.confidence is not None else 0.0,
            probabilities=outcome.probabilities,
            received_slot=outcome.slot_index,
            started_slot=outcome.started_slot,
        )

    def classify(self, current_slot: int) -> Optional[int]:
        """Final classification for the current window (or None)."""
        votes = self.remembered_votes()
        if self.max_recall_age_slots is not None:
            votes = [
                vote for vote in votes if vote.age(current_slot) <= self.max_recall_age_slots
            ]
        if not votes:
            return None
        label = self.vote(votes, current_slot)
        if label is not None:
            self._decisions += 1
        return label

    def reset(self) -> None:
        """Forget everything (new user / new run)."""
        self._memory.clear()
        self._messages_received = 0
        self._decisions = 0
