"""Harvester front-end.

Converts ambient RF power (a :class:`~repro.energy.traces.PowerTrace`)
into energy deposited in the node's capacitor, applying the rectifier
efficiency and the antenna/location gain.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.energy.traces import PowerTrace
from repro.errors import EnergyModelError
from repro.utils.validation import check_fraction, check_non_negative


class Harvester:
    """RF energy harvester attached to one node.

    Parameters
    ----------
    trace:
        Ambient RF power available at this node's location.
    efficiency:
        RF-to-stored-energy conversion efficiency in (0, 1].
    gain:
        Extra multiplicative antenna/placement gain.
    supplemental_w:
        Constant additional supply (a battery trickle): the paper's
        Discussion notes Origin "can also be used with battery-powered
        or hybrid" systems — this models the hybrid case.
    """

    def __init__(
        self,
        trace: PowerTrace,
        efficiency: float = 1.0,
        gain: float = 1.0,
        *,
        supplemental_w: float = 0.0,
    ) -> None:
        check_fraction("efficiency", efficiency)
        if efficiency == 0:
            raise EnergyModelError("efficiency must be > 0")
        self.trace = trace
        self.efficiency = float(efficiency)
        self.gain = check_non_negative("gain", gain)
        self.supplemental_w = check_non_negative("supplemental_w", supplemental_w)

    def energy_between(self, t0_s: float, t1_s: float) -> float:
        """Joules delivered to storage over ``[t0, t1)``."""
        harvested = self.trace.energy_between(t0_s, t1_s) * self.efficiency * self.gain
        return harvested + self.supplemental_w * max(t1_s - t0_s, 0.0)

    def slot_energy(self, slot_index: int, slot_duration_s: float) -> float:
        """Joules delivered during one scheduling slot."""
        return (
            self.trace.slot_energy(slot_index, slot_duration_s)
            * self.efficiency
            * self.gain
            + self.supplemental_w * slot_duration_s
        )

    def slot_energies(self, slot_duration_s: float, *, n_slots: Optional[int] = None):
        """Vector of per-slot delivered joules (fast path).

        With ``n_slots`` the vector is truncated or zero-padded to that
        length.  Padded slots deliver exactly 0.0 J — no supplemental
        trickle either — mirroring the scalar simulator, which stops
        harvesting (and supplementing) once the trace runs out.
        """
        vec = (
            self.trace.slot_energies(slot_duration_s) * self.efficiency * self.gain
            + self.supplemental_w * slot_duration_s
        )
        if n_slots is None:
            return vec
        if n_slots < 0:
            raise EnergyModelError(f"n_slots must be >= 0, got {n_slots}")
        if vec.size >= n_slots:
            return vec[:n_slots].copy()
        out = np.zeros(n_slots, dtype=np.float64)
        out[: vec.size] = vec
        return out

    @property
    def average_power_w(self) -> float:
        """Mean delivered power over the whole trace."""
        return (
            self.trace.average_power_w * self.efficiency * self.gain
            + self.supplemental_w
        )
