"""Naive all-on scheduling (the paper's Fig. 1a strawman)."""

from __future__ import annotations

from typing import List, Sequence

from repro.core.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.errors import SchedulingError


class NaiveAllOn(SchedulingPolicy):
    """Every node attempts an inference every slot.

    This is the conventional ensemble execution model: it needs all
    sensors to finish, and on harvested energy it almost never gets
    them (Fig. 1a: ~90% of windows see no completion at all).
    """

    def __init__(self, node_ids: Sequence[int]) -> None:
        if not node_ids:
            raise SchedulingError("node_ids must be non-empty")
        self.node_ids = list(node_ids)
        self.name = "naive-all-on"

    def active_nodes(self, slot_index: int, context: SchedulingContext) -> List[int]:
        return list(self.node_ids)
