"""PAMAP2-like synthetic dataset.

The real PAMAP2 dataset (Reiss & Stricker) uses IMUs on the hand, chest
and ankle; the paper evaluates five activities from it (Fig. 5b drops
jogging).  The hand sensor maps onto this package's wrist location.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.datasets.activities import Activity
from repro.datasets.base import DatasetSpec, HARDataset, synthesize_split
from repro.datasets.profiles import pamap2_signatures
from repro.datasets.subjects import sample_subjects
from repro.utils.rng import SeedSequenceFactory

#: The five PAMAP2 activities the paper reports (Fig. 5b).
PAMAP2_ACTIVITIES: Tuple[Activity, ...] = (
    Activity.WALKING,
    Activity.CLIMBING,
    Activity.CYCLING,
    Activity.RUNNING,
    Activity.JUMPING,
)


def pamap2_spec() -> DatasetSpec:
    """The static PAMAP2-like dataset description."""
    return DatasetSpec(
        name="PAMAP2",
        activities=PAMAP2_ACTIVITIES,
        signature_factory=pamap2_signatures,
    )


def make_pamap2(
    seed: int = 0,
    *,
    train_windows_per_activity: int = 140,
    val_windows_per_activity: int = 50,
    test_windows_per_activity: int = 45,
    n_train_subjects: int = 14,
    n_eval_subjects: int = 2,
    spec: Optional[DatasetSpec] = None,
) -> HARDataset:
    """Build the full PAMAP2-like dataset (same recipe as MHEALTH)."""
    spec = spec or pamap2_spec()
    factory = SeedSequenceFactory(seed)
    synthesizer = spec.make_synthesizer()
    train_subjects = sample_subjects(
        n_train_subjects, factory.generator("subjects/train"), first_id=0
    )
    eval_subjects = sample_subjects(
        n_eval_subjects,
        factory.generator("subjects/eval"),
        first_id=n_train_subjects,
    )
    return HARDataset(
        spec=spec,
        train=synthesize_split(
            spec, synthesizer, train_subjects, train_windows_per_activity,
            factory.generator("split/train"),
        ),
        val=synthesize_split(
            spec, synthesizer, eval_subjects, val_windows_per_activity,
            factory.generator("split/val"),
        ),
        test=synthesize_split(
            spec, synthesizer, eval_subjects, test_windows_per_activity,
            factory.generator("split/test"),
        ),
        synthesizer=synthesizer,
        train_subjects=train_subjects,
        eval_subjects=eval_subjects,
    )
