"""Tests for repro.datasets.profiles — signatures and calibration."""

import numpy as np
import pytest

from repro.datasets.activities import Activity
from repro.datasets.body import BodyLocation
from repro.datasets.profiles import (
    ActivitySignature,
    SignatureTable,
    mhealth_signatures,
    pamap2_signatures,
)
from repro.errors import DatasetError


def _signature(**overrides):
    params = dict(
        frequency_hz=2.0,
        harmonics=(1.0, 0.5),
        accel_amplitude=(1.0, 2.0, 1.0),
        gyro_amplitude=(0.5, 0.5, 0.5),
        gravity=(0.0, 9.81, 0.0),
    )
    params.update(overrides)
    return ActivitySignature(**params)


class TestActivitySignature:
    def test_vector_roundtrip(self):
        sig = _signature(impact=1.5)
        vector = sig.as_vector()
        rebuilt = ActivitySignature.from_vector(vector, n_harmonics=2, jitter=sig.jitter)
        np.testing.assert_allclose(rebuilt.as_vector(), vector)

    def test_from_vector_clamps_negatives(self):
        sig = _signature()
        vector = sig.as_vector()
        vector[1] = -0.5  # negative harmonic weight
        rebuilt = ActivitySignature.from_vector(vector, 2, jitter=0.1)
        assert rebuilt.harmonics[0] == 0.0

    def test_wrong_vector_size_rejected(self):
        with pytest.raises(DatasetError):
            ActivitySignature.from_vector(np.zeros(3), 2, jitter=0.1)

    @pytest.mark.parametrize(
        "overrides",
        [dict(frequency_hz=0), dict(harmonics=()), dict(gravity=(0.0, 1.0))],
    )
    def test_invalid_rejected(self, overrides):
        with pytest.raises(DatasetError):
            _signature(**overrides)


class TestMHealthSignatures:
    @pytest.fixture(scope="class")
    def table(self):
        return mhealth_signatures()

    def test_complete(self, table):
        assert len(table.activities) == 6
        for location in BodyLocation:
            for activity in table.activities:
                assert table.signature(location, activity) is not None

    def test_noise_per_location(self, table):
        for location in BodyLocation:
            assert table.noise(location) > 0

    def test_wrist_noisier_than_ankle(self, table):
        # The wrist is the weakest classifier in Fig. 2.
        assert table.noise(BodyLocation.RIGHT_WRIST) > table.noise(BodyLocation.LEFT_ANKLE)

    def test_chest_frequency_doubled(self, table):
        # The torso bounces at 2x the stride frequency.
        chest = table.signature(BodyLocation.CHEST, Activity.RUNNING)
        ankle = table.signature(BodyLocation.LEFT_ANKLE, Activity.RUNNING)
        assert chest.frequency_hz > ankle.frequency_hz

    def test_unknown_pair_raises(self, table):
        pamap = pamap2_signatures()
        with pytest.raises(DatasetError):
            pamap.signature(BodyLocation.CHEST, Activity.JOGGING)

    def test_low_distinctiveness_widens_jitter(self, table):
        # The wrist's walking signature is blended hard toward the mean
        # and should carry more within-class jitter than the ankle's.
        wrist = table.signature(BodyLocation.RIGHT_WRIST, Activity.WALKING)
        ankle = table.signature(BodyLocation.LEFT_ANKLE, Activity.WALKING)
        assert wrist.jitter > ankle.jitter


class TestPamap2Signatures:
    def test_five_activities_no_jogging(self):
        table = pamap2_signatures()
        assert len(table.activities) == 5
        assert Activity.JOGGING not in table.activities


class TestSignatureTableValidation:
    def test_missing_signature_rejected(self):
        good = mhealth_signatures()
        partial = {
            key: value
            for key, value in good.signatures.items()
            if key[1] is not Activity.WALKING
        }
        with pytest.raises(DatasetError):
            SignatureTable(
                signatures=partial,
                sensor_noise=good.sensor_noise,
                activities=good.activities,
            )

    def test_missing_noise_rejected(self):
        good = mhealth_signatures()
        with pytest.raises(DatasetError):
            SignatureTable(
                signatures=good.signatures,
                sensor_noise={BodyLocation.CHEST: 0.5},
                activities=good.activities,
            )
