"""Asyncio session server for the online serving path.

One :class:`ServeServer` accepts device connections on a TCP port and
runs each as an independent :class:`~repro.serve.session.Session`.  The
per-connection plumbing is a bounded queue between a socket reader and a
decision worker, which is where the overload policy lives:

* ``overload="block"`` (default) — a full queue makes the reader await,
  which stops draining the socket, which propagates TCP backpressure to
  the device.  Every window is decided; an overloaded server slows
  devices down instead of degrading, and determinism is preserved.
* ``overload="shed"`` — the worker sheds a window frame whenever the
  backlog behind it exceeds ``shed_watermark``: the reports are still
  ingested (recall memory and scheduler feedback stay consistent) but
  no vote runs, and the device is told to keep its previous decision
  (``decision{shed: true}``).  Latency stays bounded at the cost of
  skipped votes, every one of them accounted in ``serve.windows.shed``.

With ``run_dir`` set the server becomes watchable: it streams cadenced
metric samples (sessions, windows/s, decisions, sheds) into
``run_dir/timeseries.jsonl`` via the standard
:class:`~repro.obs.timeline.TimeSeriesRecorder`, so
``python -m repro.obs.watch RUN_DIR`` renders a live serving dashboard,
and it registers the finished run in the :class:`~repro.obs.runs.RunRegistry`.

Shutdown is a graceful drain: :meth:`stop` closes the listener, gives
in-flight sessions ``drain_timeout_s`` to finish their exchanges, then
cancels stragglers — leaving no orphan tasks behind (asserted by the
test suite).
"""

from __future__ import annotations

import asyncio
import logging
import os
from typing import Any, Dict, Optional, Set

from repro.errors import ConfigurationError, ServeError
from repro.obs.observer import NULL_OBS, Observability
from repro.obs.trace import Tracer
from repro.serve.protocol import read_frame, write_frame
from repro.serve.session import EngineCatalog, Session

__all__ = ["ServeServer"]

logger = logging.getLogger(__name__)

#: Default seconds in-flight sessions get to finish during :meth:`stop`.
DEFAULT_DRAIN_TIMEOUT_S = 5.0

#: Default per-session frame queue depth.
DEFAULT_QUEUE_SIZE = 8


class ServeServer:
    """Serve decision engines to streaming devices over TCP.

    Parameters
    ----------
    catalog:
        The :class:`~repro.serve.session.EngineCatalog` of servable
        profiles.
    host / port:
        Bind address; port 0 (default) picks a free port, readable from
        :attr:`port` after :meth:`start`.
    queue_size:
        Per-session frame queue depth (the backpressure buffer).
    overload:
        ``"block"`` or ``"shed"`` (see module docstring).
    shed_watermark:
        Backlog depth above which the shed policy drops votes; defaults
        to half the queue.
    run_dir:
        Arm live observability: stream ``timeseries.jsonl`` here, write
        per-session decision traces under ``run_dir/sessions/`` when
        ``session_traces`` is set, and register the run on :meth:`stop`.
    session_traces:
        Write each session's engine trace (``slot.scheduled`` /
        ``vote.cast`` / ...) as a standard v2 trace file under
        ``run_dir/sessions/``.
    registry:
        A :class:`~repro.obs.runs.RunRegistry` to record the finished
        run into (``kind="serve"``).  ``None`` skips registration.
    obs:
        Externally owned observability bundle; defaults to a live one
        when ``run_dir`` is set, else ``NULL_OBS``.
    worker_pause_s:
        Artificial per-frame decision delay — a deterministic way to
        make a fast local client outrun the worker in tests and demos
        of the overload policies.
    drain_timeout_s / sample_interval_s:
        Shutdown grace period and timeseries cadence.
    """

    def __init__(
        self,
        catalog: EngineCatalog,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        overload: str = "block",
        shed_watermark: Optional[int] = None,
        run_dir: Optional[str] = None,
        session_traces: bool = False,
        registry: Optional[Any] = None,
        obs: Optional[Observability] = None,
        worker_pause_s: float = 0.0,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        sample_interval_s: float = 0.5,
    ) -> None:
        if overload not in ("block", "shed"):
            raise ConfigurationError(
                f"overload must be 'block' or 'shed', got {overload!r}"
            )
        if queue_size < 1:
            raise ConfigurationError(f"queue_size must be >= 1, got {queue_size}")
        if shed_watermark is None:
            shed_watermark = max(1, queue_size // 2)
        if shed_watermark < 0:
            raise ConfigurationError(
                f"shed_watermark must be >= 0, got {shed_watermark}"
            )
        if worker_pause_s < 0:
            raise ConfigurationError(
                f"worker_pause_s must be >= 0, got {worker_pause_s}"
            )
        self.catalog = catalog
        self.host = host
        self._requested_port = port
        self.queue_size = int(queue_size)
        self.overload = overload
        self.shed_watermark = int(shed_watermark)
        self.run_dir = os.fspath(run_dir) if run_dir is not None else None
        self.session_traces = bool(session_traces)
        self.registry = registry
        self.worker_pause_s = float(worker_pause_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.sample_interval_s = float(sample_interval_s)
        if obs is not None:
            self.obs = obs
        elif self.run_dir is not None:
            self.obs = Observability()
        else:
            self.obs = NULL_OBS
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task"] = set()
        self._sampler_task: Optional["asyncio.Task"] = None
        self._recorder = None
        self._session_seq = 0
        self._active_sessions = 0
        self.run_id: Optional[str] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listener (and the timeseries stream, if armed)."""
        if self._server is not None:
            raise ServeError("server already started")
        if self.run_dir is not None and self.obs.enabled:
            from repro.obs.timeline import attach_recorder

            os.makedirs(self.run_dir, exist_ok=True)
            self._recorder = attach_recorder(
                self.obs,
                os.path.join(self.run_dir, "timeseries.jsonl"),
                interval_s=self.sample_interval_s,
                meta={
                    "job": "serve",
                    "profiles": ",".join(self.catalog.names()),
                    "overload": self.overload,
                },
            )
            self._recorder.mark("serve.run.started")
            self._sampler_task = asyncio.ensure_future(self._sampler())
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self._requested_port
        )
        logger.info("serving %s on %s:%d", self.catalog.names(), self.host, self.port)

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI ``run`` mode)."""
        if self._server is None:
            raise ServeError("server is not started")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: close, wait, cancel stragglers, finalize."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=self.drain_timeout_s
            )
            if pending:
                logger.warning(
                    "drain timeout: cancelling %d in-flight session(s)",
                    len(pending),
                )
                for task in pending:
                    task.cancel()
                await asyncio.wait(pending)
        self._conn_tasks.clear()
        if self._sampler_task is not None:
            self._sampler_task.cancel()
            try:
                await self._sampler_task
            except asyncio.CancelledError:
                pass
            self._sampler_task = None
        if self._recorder is not None:
            self._recorder.mark("serve.run.finished")
            self._recorder.close()
            self._recorder = None
        if self.registry is not None and self.obs.enabled:
            self.run_id = self.registry.record(
                kind="serve",
                metrics=self.obs.metrics,
                meta={
                    "profiles": ",".join(self.catalog.names()),
                    "overload": self.overload,
                },
                timeseries=(
                    os.path.join(self.run_dir, "timeseries.jsonl")
                    if self.run_dir is not None
                    else None
                ),
                run_dir=self.run_dir,
            )

    async def _sampler(self) -> None:
        while True:
            await asyncio.sleep(self.sample_interval_s)
            if self._recorder is not None:
                self._recorder.sample()

    # ------------------------------------------------------------------
    # per-connection plumbing
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        metrics = self.obs.metrics
        self._session_seq += 1
        session_id = f"sess-{self._session_seq}"
        self._active_sessions += 1
        metrics.inc("serve.sessions.opened")
        metrics.set_gauge("serve.sessions.active", self._active_sessions)
        session_obs = NULL_OBS
        if self.session_traces and self.run_dir is not None:
            session_obs = Observability(tracer=Tracer(), metrics=self.obs.metrics)
        session = Session(
            self.catalog,
            session_id=session_id,
            metrics=metrics if self.obs.enabled else None,
            obs=session_obs,
        )
        queue: "asyncio.Queue" = asyncio.Queue(maxsize=self.queue_size)
        pump = asyncio.ensure_future(self._pump(reader, queue))
        try:
            await self._worker(session, queue, writer)
        finally:
            pump.cancel()
            try:
                await pump
            except (asyncio.CancelledError, Exception):
                pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._active_sessions -= 1
            metrics.inc("serve.sessions.closed")
            metrics.set_gauge("serve.sessions.active", self._active_sessions)
            if session_obs is not NULL_OBS and len(session_obs.tracer):
                self._export_session_trace(session, session_obs)
            if task is not None:
                self._conn_tasks.discard(task)

    async def _pump(
        self, reader: asyncio.StreamReader, queue: "asyncio.Queue"
    ) -> None:
        """Socket → queue.  A full queue blocks the read loop, which is
        exactly the ``block`` policy's TCP backpressure."""
        try:
            while True:
                frame = await read_frame(reader)
                await queue.put(frame)
                if frame is None:
                    return
        except ServeError as error:
            await queue.put(error)
        except (ConnectionError, OSError):
            await queue.put(None)

    async def _worker(
        self,
        session: Session,
        queue: "asyncio.Queue",
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            item = await queue.get()
            if item is None:  # EOF or dead socket
                return
            if isinstance(item, ServeError):
                await self._send_error(writer, item)
                return
            # Shed decision at dequeue time: qsize() is the backlog that
            # piled up behind this frame while it waited.
            shed = (
                self.overload == "shed"
                and item.get("type") == "window"
                and queue.qsize() > self.shed_watermark
            )
            if self.worker_pause_s:
                await asyncio.sleep(self.worker_pause_s)
            try:
                replies = session.handle(item, shed=shed)
            except ServeError as error:
                await self._send_error(writer, error)
                return
            for reply in replies:
                await write_frame(writer, reply)
            if session.closed:
                return

    @staticmethod
    async def _send_error(
        writer: asyncio.StreamWriter, error: ServeError
    ) -> None:
        try:
            await write_frame(writer, {"type": "error", "message": str(error)})
        except (ConnectionError, OSError):
            pass

    def _export_session_trace(self, session: Session, obs: Observability) -> None:
        sessions_dir = os.path.join(self.run_dir, "sessions")
        os.makedirs(sessions_dir, exist_ok=True)
        obs.tracer.write_jsonl(
            os.path.join(sessions_dir, f"{session.session_id}.jsonl"),
            meta={
                "session": session.session_id,
                "profile": session.profile.name if session.profile else None,
                "policy": session.policy.name if session.policy else None,
            },
        )

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Current serving counters (zeros when observability is off)."""
        if not self.obs.enabled:
            return {}
        exported = self.obs.metrics.to_dict()
        counters = exported.get("counters", {})
        return {
            name: counters.get(name, 0.0)
            for name in (
                "serve.sessions.opened",
                "serve.sessions.closed",
                "serve.windows",
                "serve.decisions",
                "serve.windows.shed",
            )
        }
