"""Radio cost model.

The paper assumes communication cost is "negligible since it
infrequently sends a few bytes of data to the host" (§IV-A).  Instead of
hard-coding zero, this module models per-message energy and latency so
that the assumption is *checkable* (and breakable, for sensitivity
studies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive_int


@dataclass(frozen=True)
class RadioProfile:
    """Energy/latency characteristics of one radio technology."""

    name: str
    energy_per_byte_j: float
    wakeup_energy_j: float
    latency_per_message_s: float

    def __post_init__(self) -> None:
        check_non_negative("energy_per_byte_j", self.energy_per_byte_j)
        check_non_negative("wakeup_energy_j", self.wakeup_energy_j)
        check_non_negative("latency_per_message_s", self.latency_per_message_s)

    @staticmethod
    def ble() -> "RadioProfile":
        """Bluetooth Low Energy: cheap short messages."""
        return RadioProfile(
            name="BLE",
            energy_per_byte_j=0.25e-6,
            wakeup_energy_j=1.5e-6,
            latency_per_message_s=0.012,
        )

    @staticmethod
    def wifi() -> "RadioProfile":
        """WiFi: faster but more expensive per message."""
        return RadioProfile(
            name="WiFi",
            energy_per_byte_j=0.9e-6,
            wakeup_energy_j=12e-6,
            latency_per_message_s=0.004,
        )


class CommLink:
    """Point-to-point link from a node to the host.

    Tracks cumulative energy and message counts so experiments can
    verify the paper's negligible-communication assumption.
    """

    def __init__(self, profile: RadioProfile) -> None:
        if not isinstance(profile, RadioProfile):
            raise ConfigurationError("profile must be a RadioProfile")
        self.profile = profile
        self._messages = 0
        self._bytes = 0
        self._energy_j = 0.0

    @property
    def messages_sent(self) -> int:
        """Messages transmitted so far."""
        return self._messages

    @property
    def bytes_sent(self) -> int:
        """Payload bytes transmitted so far."""
        return self._bytes

    @property
    def energy_spent_j(self) -> float:
        """Total radio energy so far."""
        return self._energy_j

    def message_cost_j(self, payload_bytes: int) -> float:
        """Energy one message of ``payload_bytes`` will cost."""
        check_positive_int("payload_bytes", payload_bytes)
        return (
            self.profile.wakeup_energy_j
            + payload_bytes * self.profile.energy_per_byte_j
        )

    def send(self, payload_bytes: int) -> float:
        """Account for one message; returns its energy cost."""
        cost = self.message_cost_j(payload_bytes)
        self._messages += 1
        self._bytes += payload_bytes
        self._energy_j += cost
        return cost

    @property
    def latency_s(self) -> float:
        """Delivery latency of one message."""
        return self.profile.latency_per_message_s
