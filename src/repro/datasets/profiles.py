"""Per-(location, activity) signal signatures.

A *signature* captures what one body-worn IMU sees during one activity:
a quasi-periodic waveform with a location-specific fundamental frequency,
harmonic profile, per-axis amplitudes, a gravity orientation, impact
spikes, and an intra-class variability level.

Per-location discriminability — the property Fig. 2 of the paper hinges
on — is controlled by a single *distinctiveness* knob per (location,
activity): signatures are blended toward the location's mean signature,
so a low distinctiveness makes activities look alike to that sensor.
The shipped tables are calibrated so that

* the left-ankle classifier is the strongest overall,
* the chest classifier beats the ankle for *climbing* (torso pitch), and
* the right-wrist classifier is the weakest,

which reproduces the ordering of the paper's Fig. 2 and, through it,
drives the rank table used by activity-aware scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.datasets.activities import Activity, profile_of
from repro.datasets.body import BodyLocation
from repro.errors import DatasetError

#: Channel layout of every synthesized window: 3 accelerometer axes
#: followed by 3 gyroscope axes.
N_CHANNELS = 6


@dataclass(frozen=True)
class ActivitySignature:
    """Numeric description of one (location, activity) waveform.

    Attributes
    ----------
    frequency_hz:
        Fundamental frequency seen at this location (the body segment may
        move at half or double the gait cadence).
    harmonics:
        Relative weights of the harmonic series, starting at the
        fundamental.
    accel_amplitude / gyro_amplitude:
        Per-axis amplitude (m/s^2 and rad/s respectively) of the periodic
        component, length 3 each.
    gravity:
        Static accelerometer offset (orientation of the segment), length 3.
    impact:
        Amplitude of impact spikes at each footfall (0 = smooth motion).
    jitter:
        Intra-class variability: log-normal sigma applied per window to
        amplitudes, plus relative frequency wobble.
    """

    frequency_hz: float
    harmonics: Tuple[float, ...]
    accel_amplitude: Tuple[float, float, float]
    gyro_amplitude: Tuple[float, float, float]
    gravity: Tuple[float, float, float]
    impact: float = 0.0
    jitter: float = 0.12

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise DatasetError(f"frequency_hz must be positive, got {self.frequency_hz}")
        if not self.harmonics:
            raise DatasetError("harmonics must be non-empty")
        for name in ("accel_amplitude", "gyro_amplitude", "gravity"):
            if len(getattr(self, name)) != 3:
                raise DatasetError(f"{name} must have 3 axes")

    def as_vector(self) -> np.ndarray:
        """Flatten to a numeric vector (used for blending)."""
        return np.concatenate(
            [
                [self.frequency_hz],
                np.asarray(self.harmonics, dtype=float),
                np.asarray(self.accel_amplitude, dtype=float),
                np.asarray(self.gyro_amplitude, dtype=float),
                np.asarray(self.gravity, dtype=float),
                [self.impact],
            ]
        )

    @staticmethod
    def from_vector(vector: np.ndarray, n_harmonics: int, jitter: float) -> "ActivitySignature":
        """Inverse of :meth:`as_vector` (jitter is carried separately)."""
        vec = np.asarray(vector, dtype=float)
        expected = 1 + n_harmonics + 3 + 3 + 3 + 1
        if vec.size != expected:
            raise DatasetError(f"expected vector of size {expected}, got {vec.size}")
        cursor = 1 + n_harmonics
        return ActivitySignature(
            frequency_hz=max(float(vec[0]), 1e-3),
            harmonics=tuple(np.clip(vec[1:cursor], 0.0, None)),
            accel_amplitude=tuple(np.clip(vec[cursor : cursor + 3], 0.0, None)),
            gyro_amplitude=tuple(np.clip(vec[cursor + 3 : cursor + 6], 0.0, None)),
            gravity=tuple(vec[cursor + 6 : cursor + 9]),
            impact=max(float(vec[cursor + 9]), 0.0),
            jitter=jitter,
        )


@dataclass(frozen=True)
class SignatureTable:
    """All signatures for one dataset, plus per-location noise floors.

    ``sensor_noise`` is the white-noise standard deviation added to each
    channel at a location; together with ``distinctiveness`` blending it
    sets how well each location separates the activity classes.
    """

    signatures: Mapping[Tuple[BodyLocation, Activity], ActivitySignature]
    sensor_noise: Mapping[BodyLocation, float]
    activities: Tuple[Activity, ...]
    locations: Tuple[BodyLocation, ...] = field(
        default=(BodyLocation.CHEST, BodyLocation.RIGHT_WRIST, BodyLocation.LEFT_ANKLE)
    )

    def __post_init__(self) -> None:
        for location in self.locations:
            if location not in self.sensor_noise:
                raise DatasetError(f"missing sensor_noise for {location}")
            for activity in self.activities:
                if (location, activity) not in self.signatures:
                    raise DatasetError(f"missing signature for ({location}, {activity})")

    def signature(self, location: BodyLocation, activity: Activity) -> ActivitySignature:
        """The signature of ``activity`` as seen from ``location``."""
        try:
            return self.signatures[(location, activity)]
        except KeyError as error:
            raise DatasetError(f"no signature for ({location}, {activity})") from error

    def noise(self, location: BodyLocation) -> float:
        """White sensor-noise sigma at ``location``."""
        return self.sensor_noise[location]


# ---------------------------------------------------------------------------
# Base signature construction
# ---------------------------------------------------------------------------

#: Fraction of the gait cadence observed at each location.
_FREQ_RATIO: Dict[BodyLocation, float] = {
    BodyLocation.CHEST: 2.0,  # the torso bounces once per step (2x stride)
    BodyLocation.LEFT_ANKLE: 1.0,  # one swing per stride
    BodyLocation.RIGHT_WRIST: 1.0,  # arm swing matches stride
}

#: Overall movement energy at each location, per activity intensity unit.
_AMPLITUDE_RATIO: Dict[BodyLocation, float] = {
    BodyLocation.CHEST: 0.55,
    BodyLocation.LEFT_ANKLE: 1.35,
    BodyLocation.RIGHT_WRIST: 0.75,
}


def _base_signature(location: BodyLocation, activity: Activity) -> ActivitySignature:
    """Physically-motivated signature before distinctiveness blending."""
    profile = profile_of(activity)
    freq = profile.cadence_hz * _FREQ_RATIO[location]
    scale = profile.intensity * _AMPLITUDE_RATIO[location]

    # Axis emphasis by movement type: gait loads the vertical axis,
    # cycling loads the sagittal rotation, climbing pitches the torso.
    accel = np.array([0.35, 1.0, 0.45]) * scale * 2.2
    gyro = np.array([0.8, 0.3, 0.5]) * scale * 1.4
    gravity = np.array([0.0, 9.81, 0.0])
    impact = 0.0
    harmonics: Tuple[float, ...] = (1.0, 0.45, 0.18)

    if activity is Activity.CYCLING:
        if location is BodyLocation.LEFT_ANKLE:
            # Smooth, dominant circular pedalling: strong periodic gyro.
            gyro = np.array([2.2, 0.4, 1.6]) * profile.intensity
            accel = np.array([0.9, 0.5, 0.8]) * profile.intensity
            harmonics = (1.0, 0.15, 0.05)
        elif location is BodyLocation.CHEST:
            # Torso nearly static, slightly leaned forward.
            accel = np.array([0.18, 0.28, 0.14])
            gyro = np.array([0.10, 0.06, 0.08])
            gravity = np.array([2.5, 9.45, 0.0])
        else:
            # Hands resting on the handlebar: road vibration only.
            accel = np.array([0.30, 0.22, 0.26])
            gyro = np.array([0.12, 0.10, 0.10])
            gravity = np.array([4.9, 8.5, 0.0])
    elif activity is Activity.CLIMBING:
        if location is BodyLocation.CHEST:
            # Strong periodic torso pitch and lift: the chest's hallmark.
            accel = np.array([0.9, 1.7, 0.4]) * profile.intensity
            gyro = np.array([1.6, 0.35, 0.5]) * profile.intensity
            gravity = np.array([3.2, 9.25, 0.0])
            harmonics = (1.0, 0.6, 0.3)
        elif location is BodyLocation.LEFT_ANKLE:
            # Step-up resembles walking at the ankle (deliberately close).
            accel = np.array([0.45, 1.25, 0.5]) * profile.intensity * 1.6
            gyro = np.array([1.0, 0.4, 0.6]) * profile.intensity
            impact = 1.0
        else:
            # Hand on the rail: weak, irregular signal.
            accel = np.array([0.35, 0.5, 0.3])
            gyro = np.array([0.4, 0.25, 0.3])
    elif activity is Activity.JUMPING:
        impact = 4.0 * _AMPLITUDE_RATIO[location]
        harmonics = (1.0, 0.7, 0.4, 0.2)
        gravity = gravity * np.array([1.0, 0.95, 1.0])
    elif activity in (Activity.RUNNING, Activity.JOGGING):
        impact = (1.8 if activity is Activity.RUNNING else 1.0) * _AMPLITUDE_RATIO[location]
        harmonics = (1.0, 0.5, 0.25, 0.1)
    elif activity is Activity.WALKING:
        impact = 0.4 * _AMPLITUDE_RATIO[location]

    return ActivitySignature(
        frequency_hz=freq,
        harmonics=harmonics,
        accel_amplitude=tuple(accel),
        gyro_amplitude=tuple(gyro),
        gravity=tuple(gravity),
        impact=impact,
    )


def _blend_toward_mean(
    signatures: Dict[Activity, ActivitySignature],
    distinctiveness: Mapping[Activity, float],
) -> Dict[Activity, ActivitySignature]:
    """Blend each signature toward the location mean.

    ``blended = mean + d * (signature - mean)`` with ``d`` in (0, 1]; a
    small ``d`` collapses classes together and makes the location a weak
    classifier for that activity.
    """
    n_harmonics = max(len(sig.harmonics) for sig in signatures.values())

    def padded_vector(sig: ActivitySignature) -> np.ndarray:
        harmonics = tuple(sig.harmonics) + (0.0,) * (n_harmonics - len(sig.harmonics))
        return replace(sig, harmonics=harmonics).as_vector()

    vectors = {activity: padded_vector(sig) for activity, sig in signatures.items()}
    mean = np.mean(list(vectors.values()), axis=0)
    blended = {}
    for activity, vector in vectors.items():
        d = float(distinctiveness[activity])
        if not 0.0 < d <= 1.0:
            raise DatasetError(f"distinctiveness must be in (0, 1], got {d} for {activity}")
        mixed = mean + d * (vector - mean)
        # Less distinctive classes also vary more within-class: the same
        # knob that collapses class means widens per-window jitter, so a
        # weak location is weak for both reasons (as real placements are).
        widened_jitter = signatures[activity].jitter * (1.0 + 1.2 * (1.0 - d))
        blended[activity] = ActivitySignature.from_vector(
            mixed, n_harmonics, jitter=widened_jitter
        )
    return blended


# ---------------------------------------------------------------------------
# Calibrated distinctiveness tables (the Fig. 2 shape)
# ---------------------------------------------------------------------------

_MHEALTH_DISTINCTIVENESS: Dict[BodyLocation, Dict[Activity, float]] = {
    BodyLocation.LEFT_ANKLE: {
        Activity.WALKING: 0.95,
        Activity.CLIMBING: 0.78,  # step-up vs walking: the ankle's weak spot
        Activity.CYCLING: 0.95,
        Activity.RUNNING: 0.88,
        Activity.JOGGING: 0.85,
        Activity.JUMPING: 0.92,
    },
    BodyLocation.CHEST: {
        Activity.WALKING: 0.58,
        Activity.CLIMBING: 0.95,  # torso pitch: the chest's strength
        Activity.CYCLING: 0.70,
        Activity.RUNNING: 0.58,
        Activity.JOGGING: 0.52,
        Activity.JUMPING: 0.62,
    },
    BodyLocation.RIGHT_WRIST: {
        Activity.WALKING: 0.55,
        Activity.CLIMBING: 0.48,
        Activity.CYCLING: 0.70,
        Activity.RUNNING: 0.60,
        Activity.JOGGING: 0.50,
        Activity.JUMPING: 0.65,
    },
}

_MHEALTH_NOISE: Dict[BodyLocation, float] = {
    BodyLocation.LEFT_ANKLE: 0.40,
    BodyLocation.CHEST: 0.72,
    BodyLocation.RIGHT_WRIST: 0.60,
}

#: PAMAP2 drops jogging; its hand sensor is a bit more informative than
#: MHEALTH's wrist placement, and climbing remains the chest's specialty.
_PAMAP2_DISTINCTIVENESS: Dict[BodyLocation, Dict[Activity, float]] = {
    BodyLocation.LEFT_ANKLE: {
        Activity.WALKING: 0.92,
        Activity.CLIMBING: 0.70,
        Activity.CYCLING: 0.93,
        Activity.RUNNING: 0.88,
        Activity.JUMPING: 0.90,
    },
    BodyLocation.CHEST: {
        Activity.WALKING: 0.58,
        Activity.CLIMBING: 0.93,
        Activity.CYCLING: 0.70,
        Activity.RUNNING: 0.58,
        Activity.JUMPING: 0.62,
    },
    BodyLocation.RIGHT_WRIST: {
        Activity.WALKING: 0.56,
        Activity.CLIMBING: 0.50,
        Activity.CYCLING: 0.72,
        Activity.RUNNING: 0.62,
        Activity.JUMPING: 0.66,
    },
}

_PAMAP2_NOISE: Dict[BodyLocation, float] = {
    BodyLocation.LEFT_ANKLE: 0.42,
    BodyLocation.CHEST: 0.72,
    BodyLocation.RIGHT_WRIST: 0.60,
}


def _build_table(
    activities: Iterable[Activity],
    distinctiveness: Mapping[BodyLocation, Mapping[Activity, float]],
    noise: Mapping[BodyLocation, float],
) -> SignatureTable:
    activity_tuple = tuple(activities)
    table: Dict[Tuple[BodyLocation, Activity], ActivitySignature] = {}
    for location in (BodyLocation.CHEST, BodyLocation.RIGHT_WRIST, BodyLocation.LEFT_ANKLE):
        base = {activity: _base_signature(location, activity) for activity in activity_tuple}
        blended = _blend_toward_mean(base, distinctiveness[location])
        for activity, signature in blended.items():
            table[(location, activity)] = signature
    return SignatureTable(signatures=table, sensor_noise=dict(noise), activities=activity_tuple)


def mhealth_signatures() -> SignatureTable:
    """Calibrated signature table for the MHEALTH-like dataset."""
    ordered: List[Activity] = [
        Activity.WALKING,
        Activity.CLIMBING,
        Activity.CYCLING,
        Activity.RUNNING,
        Activity.JOGGING,
        Activity.JUMPING,
    ]
    return _build_table(ordered, _MHEALTH_DISTINCTIVENESS, _MHEALTH_NOISE)


def pamap2_signatures() -> SignatureTable:
    """Calibrated signature table for the PAMAP2-like dataset."""
    ordered: List[Activity] = [
        Activity.WALKING,
        Activity.CLIMBING,
        Activity.CYCLING,
        Activity.RUNNING,
        Activity.JUMPING,
    ]
    return _build_table(ordered, _PAMAP2_DISTINCTIVENESS, _PAMAP2_NOISE)
