"""Radio cost model.

The paper assumes communication cost is "negligible since it
infrequently sends a few bytes of data to the host" (§IV-A).  Instead of
hard-coding zero, this module models per-message energy and latency so
that the assumption is *checkable* (and breakable, for sensitivity
studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive_int


@dataclass(frozen=True)
class Delivery:
    """What happened to one transmitted message.

    ``label`` is the class label as the host will see it: the sent label
    when delivered cleanly, a garbled one when ``corrupted``, and
    ``None`` when the message was dropped in transit.
    """

    delivered: bool
    label: Optional[int]
    corrupted: bool = False


#: Per-message fault hook: ``hook(slot_index, label) -> Delivery``.
#: Installed on a link by the fault engine; ``None`` means lossless.
DeliveryHook = Callable[[int, int], Delivery]


@dataclass(frozen=True)
class RadioProfile:
    """Energy/latency characteristics of one radio technology."""

    name: str
    energy_per_byte_j: float
    wakeup_energy_j: float
    latency_per_message_s: float

    def __post_init__(self) -> None:
        check_non_negative("energy_per_byte_j", self.energy_per_byte_j)
        check_non_negative("wakeup_energy_j", self.wakeup_energy_j)
        check_non_negative("latency_per_message_s", self.latency_per_message_s)

    @staticmethod
    def ble() -> "RadioProfile":
        """Bluetooth Low Energy: cheap short messages."""
        return RadioProfile(
            name="BLE",
            energy_per_byte_j=0.25e-6,
            wakeup_energy_j=1.5e-6,
            latency_per_message_s=0.012,
        )

    @staticmethod
    def wifi() -> "RadioProfile":
        """WiFi: faster but more expensive per message."""
        return RadioProfile(
            name="WiFi",
            energy_per_byte_j=0.9e-6,
            wakeup_energy_j=12e-6,
            latency_per_message_s=0.004,
        )


class CommLink:
    """Point-to-point link from a node to the host.

    Tracks cumulative energy and message counts so experiments can
    verify the paper's negligible-communication assumption.
    """

    def __init__(
        self,
        profile: RadioProfile,
        *,
        delivery_hook: Optional[DeliveryHook] = None,
    ) -> None:
        if not isinstance(profile, RadioProfile):
            raise ConfigurationError("profile must be a RadioProfile")
        self.profile = profile
        self.delivery_hook = delivery_hook
        self._messages = 0
        self._bytes = 0
        self._energy_j = 0.0
        self._delivered = 0
        self._dropped = 0
        self._corrupted = 0

    @property
    def messages_sent(self) -> int:
        """Messages transmitted so far."""
        return self._messages

    @property
    def bytes_sent(self) -> int:
        """Payload bytes transmitted so far."""
        return self._bytes

    @property
    def energy_spent_j(self) -> float:
        """Total radio energy so far."""
        return self._energy_j

    @property
    def messages_delivered(self) -> int:
        """Messages that reached the host (including corrupted ones)."""
        return self._delivered

    @property
    def messages_dropped(self) -> int:
        """Messages lost in transit (energy was still spent)."""
        return self._dropped

    @property
    def messages_corrupted(self) -> int:
        """Delivered messages whose payload was garbled."""
        return self._corrupted

    @property
    def delivery_rate(self) -> float:
        """Fraction of sent messages that arrived."""
        return self._delivered / self._messages if self._messages else 0.0

    def message_cost_j(self, payload_bytes: int) -> float:
        """Energy one message of ``payload_bytes`` will cost."""
        check_positive_int("payload_bytes", payload_bytes)
        return (
            self.profile.wakeup_energy_j
            + payload_bytes * self.profile.energy_per_byte_j
        )

    def send(self, payload_bytes: int) -> float:
        """Account for one message; returns its energy cost.

        Bypasses the delivery hook (the message counts as delivered) —
        use :meth:`transmit` for fault-aware sends.
        """
        cost = self.message_cost_j(payload_bytes)
        self._messages += 1
        self._bytes += payload_bytes
        self._energy_j += cost
        self._delivered += 1
        return cost

    def transmit(self, payload_bytes: int, slot_index: int, label: int) -> "TransmitResult":
        """Send one result message through the (possibly faulty) link.

        The radio spends the full message energy regardless of delivery
        — a dropped packet is lost after transmission, not before.
        """
        cost = self.message_cost_j(payload_bytes)
        self._messages += 1
        self._bytes += payload_bytes
        self._energy_j += cost
        if self.delivery_hook is None:
            delivery = Delivery(delivered=True, label=label)
        else:
            delivery = self.delivery_hook(slot_index, label)
        if delivery.delivered:
            self._delivered += 1
            if delivery.corrupted:
                self._corrupted += 1
        else:
            self._dropped += 1
        return TransmitResult(cost_j=cost, delivery=delivery)

    @property
    def latency_s(self) -> float:
        """Delivery latency of one message."""
        return self.profile.latency_per_message_s


@dataclass(frozen=True)
class TransmitResult:
    """Energy cost and delivery outcome of one :meth:`CommLink.transmit`."""

    cost_j: float
    delivery: Delivery
