"""Activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers.base import Layer, Shape


class ReLU(Layer):
    """Rectified linear unit, shape-preserving."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._cached_mask: Optional[np.ndarray] = None

    def _build(self, input_shape: Shape) -> Shape:
        return tuple(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        mask = x > 0
        if training:
            self._cached_mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_mask is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        return grad_output * self._cached_mask


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)
