"""Counters, gauges, histograms and timers with deterministic merge.

A :class:`MetricsRegistry` is the numeric side of observability: named
counters (slots, attempts, completions, joules harvested/spent), gauges
(cache hits, pool sizes), histograms (recall staleness, slots per
inference) and wall-time timers (the ``obs.timed(...)`` profiling
scopes).

Merge semantics mirror :meth:`repro.wsn.node.NodeStats.merged`: metric
values are combined *field-wise* (counters and histogram bins sum, timer
calls/totals sum, mins/maxes combine), and :meth:`MetricsRegistry.merge`
is applied in deterministic unit order by the parallel sweep executor —
so ``PolicySweep.run(workers=N)`` aggregates across processes to exactly
the values a sequential sweep records.

Counters and histograms are *deterministic* metrics: their merged values
are a pure function of the simulated runs, independent of wall clock,
process count or host load (asserted by the test suite).  Gauges and
timers are environment-dependent by nature (a timer measures this
machine, a gauge snapshots whichever process observed last) and are
excluded from :meth:`MetricsRegistry.deterministic_dict`.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ObservabilityError

#: Default histogram bucket upper bounds (values above the last bound
#: land in the overflow bucket).  Tuned for slot-count-like quantities.
DEFAULT_BOUNDS: Tuple[float, ...] = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


@dataclass
class Counter:
    """Monotonically accumulating value (int or float)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


@dataclass
class Gauge:
    """Last-observed value (merge is last-write-wins in merge order)."""

    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def merge(self, other: "Gauge") -> None:
        if other.updates:
            self.value = other.value
        self.updates += other.updates


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/total/min/max sidecars."""

    bounds: Tuple[float, ...] = DEFAULT_BOUNDS
    counts: list = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        self.bounds = tuple(self.bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ObservabilityError(f"histogram bounds must be sorted, got {self.bounds}")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        elif len(self.counts) != len(self.bounds) + 1:
            raise ObservabilityError(
                f"histogram needs {len(self.bounds) + 1} buckets, got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        # bisect_left = first bound >= value, i.e. the bucket the value
        # belongs to (len(bounds) = overflow); C-speed on the hot path.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of observed values (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ObservabilityError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        for name in ("min", "max"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if theirs is not None:
                pick = min if name == "min" else max
                setattr(self, name, theirs if mine is None else pick(mine, theirs))


@dataclass
class TimerStat:
    """Accumulated wall time of one named profiling scope."""

    calls: int = 0
    total_s: float = 0.0
    min_s: Optional[float] = None
    max_s: Optional[float] = None

    def record(self, elapsed_s: float) -> None:
        self.calls += 1
        self.total_s += elapsed_s
        if self.min_s is None or elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if self.max_s is None or elapsed_s > self.max_s:
            self.max_s = elapsed_s

    @property
    def mean_s(self) -> float:
        """Mean scope duration (0 when never entered)."""
        return self.total_s / self.calls if self.calls else 0.0

    def merge(self, other: "TimerStat") -> None:
        self.calls += other.calls
        self.total_s += other.total_s
        for name, pick in (("min_s", min), ("max_s", max)):
            mine, theirs = getattr(self, name), getattr(other, name)
            if theirs is not None:
                setattr(self, name, theirs if mine is None else pick(mine, theirs))


class MetricsRegistry:
    """Named metric store with get-or-create accessors.

    All accessors are cheap dict lookups; instrumentation sites in hot
    loops additionally guard on ``obs.enabled`` so the default
    (observability off) path never even reaches the registry.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, TimerStat] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the named gauge."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, *, bounds: Tuple[float, ...] = DEFAULT_BOUNDS
    ) -> Histogram:
        """Get-or-create the named histogram (bounds fixed at creation)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds=bounds)
        return histogram

    def timer(self, name: str) -> TimerStat:
        """Get-or-create the named timer."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = TimerStat()
        return timer

    # convenience mutators ------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the named counter."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Observe one value into the named histogram."""
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge."""
        self.gauge(name).set(value)

    # ------------------------------------------------------------------
    # merge + serialization
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry, field-wise per metric.

        Call order defines gauge last-write-wins semantics, so callers
        (e.g. the parallel sweep) must merge in deterministic unit
        order.
        """
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name, bounds=histogram.bounds).merge(histogram)
        for name, timer in other._timers.items():
            self.timer(name).merge(timer)

    def to_dict(self) -> Dict[str, Any]:
        """Plain nested dict (sorted names) for JSON export."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self._histograms.items())
            },
            "timers": {
                name: {
                    "calls": t.calls,
                    "total_s": t.total_s,
                    "min_s": t.min_s,
                    "max_s": t.max_s,
                }
                for name, t in sorted(self._timers.items())
            },
        }

    def deterministic_dict(self) -> Dict[str, Any]:
        """The merge-deterministic subset (counters + histograms).

        These values are a pure function of the simulated runs — the
        same grid merged from any worker count compares equal on this
        dict.  Gauges (last-write) and timers (wall clock) are excluded.
        """
        exported = self.to_dict()
        return {"counters": exported["counters"], "histograms": exported["histograms"]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in data.get("gauges", {}).items():
            gauge = registry.gauge(name)
            gauge.value = value
            gauge.updates = 1
        for name, spec in data.get("histograms", {}).items():
            histogram = registry.histogram(name, bounds=tuple(spec["bounds"]))
            histogram.counts = list(spec["counts"])
            histogram.count = spec["count"]
            histogram.total = spec["total"]
            histogram.min = spec["min"]
            histogram.max = spec["max"]
        for name, spec in data.get("timers", {}).items():
            timer = registry.timer(name)
            timer.calls = spec["calls"]
            timer.total_s = spec["total_s"]
            timer.min_s = spec["min_s"]
            timer.max_s = spec["max_s"]
        return registry


class NullMetrics(MetricsRegistry):
    """Registry whose mutators no-op (belt and braces for the null path).

    Instrumentation sites guard on ``obs.enabled`` before touching the
    registry at all; this class additionally guarantees that a missed
    guard cannot accumulate state on the shared null singleton.
    """

    def inc(self, name: str, amount: float = 1.0) -> None:  # noqa: ARG002
        pass

    def observe(self, name: str, value: float) -> None:  # noqa: ARG002
        pass

    def set_gauge(self, name: str, value: float) -> None:  # noqa: ARG002
        pass
