"""Tests for the energy model, serialization, architectures and pruning."""

import numpy as np
import pytest

from repro.datasets.body import BodyLocation
from repro.errors import ModelError
from repro.nn import (
    Adam,
    EnergyAwarePruner,
    EnergyCostModel,
    Sequential,
    Trainer,
    build_har_cnn,
    estimate_inference_energy,
    har_architecture_for,
    load_model_weights,
    save_model_weights,
)
from repro.nn.architectures import HARArchitecture
from repro.nn.energy_model import energy_breakdown, format_energy_report, layer_energy
from repro.nn.layers import Conv1D, Dense, Flatten, MaxPool1D, ReLU
from repro.nn.pruning import prune_output_unit


@pytest.fixture
def cnn():
    return build_har_cnn(6, 64, 4, seed=0)


class TestEnergyModel:
    def test_total_positive_and_dominated_by_conv(self, cnn):
        breakdown = energy_breakdown(cnn)
        total = estimate_inference_energy(cnn)
        assert total > 0
        conv_energy = sum(e.energy_j for e in breakdown if "conv" in e.layer_name)
        assert conv_energy > 0.5 * (total - EnergyCostModel().fixed_overhead_j)

    def test_macs_match_formula(self):
        layer = Conv1D(8, 5, seed=0)
        layer.build((6, 64))
        entry = layer_energy(layer, EnergyCostModel())
        assert entry.macs == 8 * 6 * 5 * 60

    def test_dense_macs(self):
        layer = Dense(10, seed=0)
        layer.build((20,))
        entry = layer_energy(layer, EnergyCostModel())
        assert entry.macs == 200

    def test_wider_model_costs_more(self):
        small = build_har_cnn(6, 64, 4, architecture=HARArchitecture().scaled(0.5), seed=0)
        large = build_har_cnn(6, 64, 4, architecture=HARArchitecture().scaled(1.5), seed=0)
        assert estimate_inference_energy(large) > estimate_inference_energy(small)

    def test_unbuilt_layer_rejected(self):
        with pytest.raises(Exception):
            layer_energy(Dense(3), EnergyCostModel())

    def test_report_renders(self, cnn):
        report = format_energy_report(cnn)
        assert "uJ/inference" in report
        assert "fixed overhead" in report

    def test_negative_cost_rejected(self):
        with pytest.raises(Exception):
            EnergyCostModel(mac_j=-1)


class TestSerialization:
    def test_roundtrip(self, cnn, tmp_path):
        path = str(tmp_path / "weights.npz")
        save_model_weights(cnn, path)
        other = build_har_cnn(6, 64, 4, seed=99)
        load_model_weights(other, path)
        x = np.random.default_rng(0).normal(size=(3, 6, 64))
        np.testing.assert_allclose(cnn.predict_logits(x), other.predict_logits(x))

    def test_missing_file(self, cnn):
        with pytest.raises(ModelError):
            load_model_weights(cnn, "/nonexistent/checkpoint.npz")

    def test_mismatched_checkpoint_names_keys(self, cnn, tmp_path):
        path = str(tmp_path / "dense.npz")
        other = Sequential([Flatten(), Dense(4, seed=0)], name="dense-only")
        other.build((6, 64))
        save_model_weights(other, path)
        with pytest.raises(ModelError, match="missing keys"):
            load_model_weights(cnn, path)
        with pytest.raises(ModelError, match="unexpected keys"):
            load_model_weights(cnn, path)

    def test_unbuilt_model_rejected(self, tmp_path):
        model = Sequential([Dense(3, seed=0)])
        with pytest.raises(ModelError):
            save_model_weights(model, str(tmp_path / "x.npz"))


class TestArchitectures:
    def test_per_location_architectures_differ(self):
        archs = {loc: har_architecture_for(loc) for loc in BodyLocation}
        assert len({a.conv_filters for a in archs.values()}) > 1

    def test_ankle_is_widest(self):
        ankle = har_architecture_for(BodyLocation.LEFT_ANKLE)
        wrist = har_architecture_for(BodyLocation.RIGHT_WRIST)
        assert sum(ankle.conv_filters) > sum(wrist.conv_filters)

    def test_scaled(self):
        arch = HARArchitecture(conv_filters=(16, 24))
        half = arch.scaled(0.5)
        assert half.conv_filters == (8, 12)

    def test_scaled_floor(self):
        arch = HARArchitecture(conv_filters=(4, 4))
        tiny = arch.scaled(0.01)
        assert min(tiny.conv_filters) >= 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            HARArchitecture(conv_filters=(8,), kernel_sizes=(5, 3))

    def test_invalid_input_spec(self):
        with pytest.raises(ModelError):
            build_har_cnn(0, 64, 4)


class TestPruneOutputUnit:
    def test_conv_prune_shrinks_and_preserves_function_shape(self, cnn):
        pruned = prune_output_unit(cnn, 0, 0)  # conv1 channel 0
        assert pruned.layers[0].filters == cnn.layers[0].filters - 1
        x = np.random.default_rng(0).normal(size=(2, 6, 64))
        assert pruned.predict_logits(x).shape == (2, 4)

    def test_dense_prune(self, cnn):
        dense_index = next(
            i for i, l in enumerate(cnn.layers) if isinstance(l, Dense)
        )
        pruned = prune_output_unit(cnn, dense_index, 3)
        assert pruned.layers[dense_index].units == cnn.layers[dense_index].units - 1

    def test_surviving_weights_copied(self, cnn):
        pruned = prune_output_unit(cnn, 0, 2)
        keep = [i for i in range(cnn.layers[0].filters) if i != 2]
        np.testing.assert_allclose(pruned.layers[0].W, cnn.layers[0].W[keep])

    def test_flatten_consumer_rows_removed_consistently(self):
        """Pruning the last conv before Flatten must keep outputs of the
        dense layer identical for the surviving channels' features."""
        model = Sequential(
            [
                Conv1D(3, 3, seed=0, name="c"),
                ReLU(name="r"),
                Flatten(name="f"),
                Dense(2, seed=1, name="d"),
                Dense(2, seed=2, name="out"),
            ]
        ).build((2, 8))
        x = np.random.default_rng(0).normal(size=(4, 2, 8))
        pruned = prune_output_unit(model, 0, 1)
        # Zeroing channel 1's outgoing dense rows in the original gives
        # the same logits as the pruned model.
        zeroed = Sequential(
            [
                Conv1D(3, 3, seed=0, name="c"),
                ReLU(name="r"),
                Flatten(name="f"),
                Dense(2, seed=1, name="d"),
                Dense(2, seed=2, name="out"),
            ]
        ).build((2, 8))
        zeroed.load_state_dict(model.state_dict())
        length = 6  # conv output length
        zeroed.layers[3].W[length : 2 * length, :] = 0.0
        np.testing.assert_allclose(
            pruned.predict_logits(x), zeroed.predict_logits(x), atol=1e-10
        )

    def test_cannot_prune_logits_layer(self, cnn):
        last = len(cnn.layers) - 1
        with pytest.raises(ModelError):
            prune_output_unit(cnn, last, 0)

    def test_cannot_prune_nonparametric(self, cnn):
        with pytest.raises(ModelError):
            prune_output_unit(cnn, 1, 0)  # ReLU

    def test_unit_out_of_range(self, cnn):
        with pytest.raises(ModelError):
            prune_output_unit(cnn, 0, 999)


class TestEnergyAwarePruner:
    def test_meets_budget(self, cnn):
        before = estimate_inference_energy(cnn)
        pruner = EnergyAwarePruner(finetune_epochs=0, final_finetune_epochs=0)
        result = pruner.prune_to_budget(cnn, before * 0.6)
        assert result.met_budget
        assert result.energy_after_j <= before * 0.6
        assert result.n_removed > 0

    def test_original_untouched(self, cnn):
        state_before = {k: v.copy() for k, v in cnn.state_dict().items()}
        shapes_before = [l.output_shape for l in cnn.layers]
        EnergyAwarePruner(finetune_epochs=0, final_finetune_epochs=0).prune_to_budget(
            cnn, estimate_inference_energy(cnn) * 0.7
        )
        assert [l.output_shape for l in cnn.layers] == shapes_before
        for key, value in cnn.state_dict().items():
            np.testing.assert_array_equal(value, state_before[key])

    def test_unreachable_budget_raises(self, cnn):
        with pytest.raises(ModelError, match="unreachable"):
            EnergyAwarePruner(finetune_epochs=0, final_finetune_epochs=0).prune_to_budget(
                cnn, 1e-9
            )

    def test_finetune_runs_and_is_deterministic(self, cnn):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 6, 64))
        y = rng.integers(0, 4, size=40)
        budget = estimate_inference_energy(cnn) * 0.7

        def run():
            pruner = EnergyAwarePruner(
                finetune_epochs=1, final_finetune_epochs=2, finetune_every=3
            )
            return pruner.prune_to_budget(cnn, budget, finetune_data=(X, y), seed=5)

        a, b = run(), run()
        assert a.finetune_history is not None
        for key in a.model.state_dict():
            np.testing.assert_array_equal(
                a.model.state_dict()[key], b.model.state_dict()[key]
            )

    def test_step_log_monotone_energy(self, cnn):
        result = EnergyAwarePruner(
            finetune_epochs=0, final_finetune_epochs=0
        ).prune_to_budget(cnn, estimate_inference_energy(cnn) * 0.5)
        energies = [step.energy_after_j for step in result.steps]
        assert all(a >= b for a, b in zip(energies, energies[1:]))

    def test_invalid_budget(self, cnn):
        with pytest.raises(ModelError):
            EnergyAwarePruner().prune_to_budget(cnn, 0.0)
