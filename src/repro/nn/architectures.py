"""Per-location HAR CNN factories.

The paper designs "three different smaller DNNs that work on their
individual data" (§IV-B), following Ha & Choi (IJCNN'16) and Rueda et
al.: small 1-D CNNs over fixed IMU windows.  Each body location gets a
slightly different architecture — kernel widths and channel counts tuned
to the motion dynamics seen at that placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.datasets.body import BodyLocation
from repro.errors import ModelError
from repro.nn.layers import Conv1D, Dense, Dropout, Flatten, MaxPool1D, ReLU
from repro.nn.model import Sequential
from repro.utils.rng import SeedLike, spawn_generators


@dataclass(frozen=True)
class HARArchitecture:
    """Hyperparameters of one per-location CNN."""

    conv_filters: Tuple[int, ...] = (16, 24)
    kernel_sizes: Tuple[int, ...] = (7, 5)
    pool_sizes: Tuple[int, ...] = (4, 2)
    dense_units: int = 48
    dropout_rate: float = 0.3

    def __post_init__(self) -> None:
        lengths = {len(self.conv_filters), len(self.kernel_sizes), len(self.pool_sizes)}
        if len(lengths) != 1:
            raise ModelError(
                "conv_filters, kernel_sizes and pool_sizes must have equal length"
            )
        if any(f < 1 for f in self.conv_filters) or any(k < 1 for k in self.kernel_sizes):
            raise ModelError("filters and kernels must be >= 1")
        if self.dense_units < 1:
            raise ModelError("dense_units must be >= 1")

    def scaled(self, width_scale: float) -> "HARArchitecture":
        """Scale every width by ``width_scale`` (>= such that >=2 remain)."""
        if width_scale <= 0:
            raise ModelError(f"width_scale must be positive, got {width_scale}")
        return HARArchitecture(
            conv_filters=tuple(max(int(round(f * width_scale)), 2) for f in self.conv_filters),
            kernel_sizes=self.kernel_sizes,
            pool_sizes=self.pool_sizes,
            dense_units=max(int(round(self.dense_units * width_scale)), 4),
            dropout_rate=self.dropout_rate,
        )


#: The ankle sees the richest dynamics, so it gets the widest network;
#: the chest uses longer kernels (slower torso oscillation); the wrist
#: model is the smallest (weakest, noisiest signal).
_LOCATION_ARCHITECTURES = {
    BodyLocation.LEFT_ANKLE: HARArchitecture(
        conv_filters=(20, 28), kernel_sizes=(7, 5), pool_sizes=(4, 2), dense_units=56
    ),
    BodyLocation.CHEST: HARArchitecture(
        conv_filters=(18, 24), kernel_sizes=(9, 5), pool_sizes=(4, 2), dense_units=48
    ),
    BodyLocation.RIGHT_WRIST: HARArchitecture(
        conv_filters=(16, 22), kernel_sizes=(7, 5), pool_sizes=(4, 2), dense_units=44
    ),
}


def har_architecture_for(location: BodyLocation) -> HARArchitecture:
    """The architecture assigned to a body location."""
    try:
        return _LOCATION_ARCHITECTURES[location]
    except KeyError as error:  # pragma: no cover - enum is exhaustive
        raise ModelError(f"no architecture registered for {location}") from error


def build_har_cnn(
    n_channels: int,
    window: int,
    n_classes: int,
    *,
    architecture: Optional[HARArchitecture] = None,
    seed: SeedLike = None,
    name: str = "har-cnn",
) -> Sequential:
    """Build (and shape-infer) one HAR CNN.

    The stack is ``[Conv1D -> ReLU -> MaxPool1D]*n -> Flatten ->
    Dense -> ReLU -> Dropout -> Dense(n_classes)``, returning logits.
    """
    if n_channels < 1 or window < 8 or n_classes < 2:
        raise ModelError(
            f"invalid input spec: channels={n_channels}, window={window}, "
            f"classes={n_classes}"
        )
    arch = architecture or HARArchitecture()
    n_stages = len(arch.conv_filters)
    rngs = spawn_generators(seed, n_stages + 2)

    layers = []
    for stage, (filters, kernel, pool) in enumerate(
        zip(arch.conv_filters, arch.kernel_sizes, arch.pool_sizes)
    ):
        layers.append(Conv1D(filters, kernel, seed=rngs[stage], name=f"conv{stage + 1}"))
        layers.append(ReLU(name=f"relu{stage + 1}"))
        layers.append(MaxPool1D(pool, name=f"pool{stage + 1}"))
    layers.append(Flatten(name="flatten"))
    layers.append(Dense(arch.dense_units, seed=rngs[n_stages], name="dense1"))
    layers.append(ReLU(name="relu_dense"))
    layers.append(Dropout(arch.dropout_rate, seed=rngs[n_stages + 1], name="dropout"))
    layers.append(Dense(n_classes, seed=rngs[n_stages + 1], name="logits"))

    model = Sequential(layers, name=name)
    model.build((n_channels, window))
    return model
