"""Benchmark trajectory: a longitudinal ledger + regression gate.

The repo commits one ``BENCH_<name>.json`` per benchmark family
(``benchmarks/results/``), each stamped with run metadata — but until
now every refresh *overwrote* the previous numbers, so nothing noticed
a headline metric quietly sliding.  This module gives the numbers a
history:

``python -m repro.obs.bench update``
    Extracts each BENCH file's **headline metrics** (the table below)
    and appends one record per benchmark to the committed
    ``benchmarks/results/TRAJECTORY.jsonl`` — deduplicated, so re-running
    against unchanged BENCH files appends nothing.

``python -m repro.obs.bench check``
    Read-only regression gate (run by CI): compares every BENCH file
    against its *previous* trajectory entry and fails when a headline
    regresses beyond tolerance — a higher-is-better metric dropping more
    than ``--tolerance`` (relative, default 15%), or a lower-is-better
    one (overhead fractions) climbing more than the tolerance in
    absolute terms (they sit near zero, so relative slack is
    meaningless).  A benchmark with no history passes: the gate tightens
    as the ledger grows.

The ledger is append-only JSONL so its git history *is* the trajectory:
every refresh lands as one added line per benchmark.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

__all__ = ["HEADLINES", "extract_headlines", "update", "check", "main"]

#: Version of a trajectory record's layout.
TRAJECTORY_SCHEMA_VERSION = 1

#: Default ledger location, relative to the results dir.
TRAJECTORY_NAME = "TRAJECTORY.jsonl"

#: Relative drop a higher-is-better headline may take before the gate
#: fails (and the absolute climb allowed for lower-is-better ones).
DEFAULT_TOLERANCE = 0.15

#: ``{bench name: ((dotted value path, direction), ...)}`` — the
#: headline metrics the gate watches.  ``direction`` is ``"higher"``
#: (speedups, throughput) or ``"lower"`` (overhead fractions).
HEADLINES: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "policy_sweep_performance": (
        ("speedup.cached_vs_uncached", "higher"),
        ("speedup.parallel_vs_uncached", "higher"),
    ),
    "vectorized_slot_kernel": (("speedup.physics_kernel_vs_scalar", "higher"),),
    "trained_bundle_store_cold_start": (("speedup.warm_vs_cold", "higher"),),
    "sweep_resilience_chaos": (("supervision.overhead_fraction", "lower"),),
    "fleet": (
        ("users_per_second", "higher"),
        ("speedup.speedup", "higher"),
    ),
    "serve": (("sessions_per_core", "higher"),),
}


def _bench_name(document: Dict[str, Any], path: str) -> str:
    # Historical quirk: BENCH_fleet.json says "benchmark", the rest "bench".
    name = document.get("bench") or document.get("benchmark")
    if not name:
        raise ObservabilityError(f"{path} has neither a 'bench' nor 'benchmark' key")
    return str(name)


def _dig(document: Dict[str, Any], dotted: str) -> Optional[float]:
    node: Any = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def extract_headlines(path: str) -> Dict[str, Any]:
    """One BENCH file → its trajectory record (not yet appended)."""
    with open(path) as handle:
        document = json.load(handle)
    name = _bench_name(document, path)
    watched = HEADLINES.get(name)
    if watched is None:
        raise ObservabilityError(
            f"{path}: benchmark {name!r} has no HEADLINES entry; add one in "
            f"repro.obs.bench so the trajectory gate covers it"
        )
    headlines: Dict[str, float] = {}
    for dotted, _direction in watched:
        value = _dig(document, dotted)
        if value is None:
            raise ObservabilityError(
                f"{path}: headline metric {dotted!r} is missing"
            )
        headlines[dotted] = value
    meta = document.get("meta") or {}  # the oldest BENCH file predates meta
    return {
        "schema_version": TRAJECTORY_SCHEMA_VERSION,
        "bench": name,
        "source": os.path.basename(path),
        "git_sha": meta.get("git_sha"),
        "timestamp_utc": meta.get("timestamp_utc"),
        "headlines": headlines,
    }


def _identity(record: Dict[str, Any]) -> Tuple[Any, Any, str]:
    """What makes two trajectory records "the same measurement"."""
    return (
        record.get("git_sha"),
        record.get("timestamp_utc"),
        json.dumps(record.get("headlines", {}), sort_keys=True),
    )


def _read_trajectory(path: str) -> List[Dict[str, Any]]:
    if not os.path.exists(path):
        return []
    records = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                records.append(json.loads(stripped))
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"{path}:{line_no} is not valid JSON ({error}); the "
                    f"trajectory is committed — fix or regenerate it"
                ) from error
    return records


def _bench_files(results_dir: str) -> List[str]:
    return sorted(glob.glob(os.path.join(results_dir, "BENCH_*.json")))


# ----------------------------------------------------------------------
# update / check
# ----------------------------------------------------------------------


def update(results_dir: str, trajectory_path: str) -> List[Dict[str, Any]]:
    """Append each BENCH file's headlines unless already recorded.

    Returns the records actually appended (empty = ledger already
    current).
    """
    history = _read_trajectory(trajectory_path)
    latest_by_bench: Dict[str, Dict[str, Any]] = {}
    for record in history:
        latest_by_bench[record["bench"]] = record
    appended = []
    for path in _bench_files(results_dir):
        record = extract_headlines(path)
        previous = latest_by_bench.get(record["bench"])
        if previous is not None and _identity(previous) == _identity(record):
            continue
        appended.append(record)
        latest_by_bench[record["bench"]] = record
    if appended:
        with open(trajectory_path, "a") as handle:
            for record in appended:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    return appended


def check(
    results_dir: str,
    trajectory_path: str,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Compare BENCH files against their previous trajectory entries.

    Returns regression descriptions (empty = gate passes).  Never
    writes.  For each benchmark the baseline is the most recent
    trajectory entry that is *not* the current measurement itself — so
    a freshly-updated ledger still gates against real history, and a
    benchmark with no prior history passes.
    """
    history = _read_trajectory(trajectory_path)
    by_bench: Dict[str, List[Dict[str, Any]]] = {}
    for record in history:
        by_bench.setdefault(record["bench"], []).append(record)

    regressions = []
    for path in _bench_files(results_dir):
        current = extract_headlines(path)
        name = current["bench"]
        previous = None
        for record in reversed(by_bench.get(name, [])):
            if _identity(record) != _identity(current):
                previous = record
                break
        if previous is None:
            continue
        for dotted, direction in HEADLINES[name]:
            now = current["headlines"].get(dotted)
            then = previous["headlines"].get(dotted)
            if now is None or then is None:
                continue
            if direction == "higher":
                floor = then * (1.0 - tolerance)
                if now < floor:
                    regressions.append(
                        f"{name}: {dotted} regressed {then:g} -> {now:g} "
                        f"(floor {floor:g} at {tolerance:.0%} tolerance)"
                    )
            else:
                ceiling = then + tolerance
                if now > ceiling:
                    regressions.append(
                        f"{name}: {dotted} regressed {then:g} -> {now:g} "
                        f"(ceiling {ceiling:g} at +{tolerance:g} absolute)"
                    )
    return regressions


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Benchmark trajectory ledger and regression gate.",
    )
    parser.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="directory holding BENCH_*.json",
    )
    parser.add_argument(
        "--trajectory",
        default=None,
        help=f"ledger path (default: <results-dir>/{TRAJECTORY_NAME})",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("update", help="append new measurements to the ledger")
    gate = commands.add_parser("check", help="fail on headline regressions")
    gate.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drop (higher-is-better) or absolute climb "
        "(lower-is-better)",
    )
    args = parser.parse_args(argv)
    trajectory_path = args.trajectory or os.path.join(
        args.results_dir, TRAJECTORY_NAME
    )

    try:
        if args.command == "update":
            appended = update(args.results_dir, trajectory_path)
            if appended:
                for record in appended:
                    print(f"appended {record['bench']}: {record['headlines']}")
            else:
                print(f"{trajectory_path} already current")
            return 0
        regressions = check(
            args.results_dir, trajectory_path, tolerance=args.tolerance
        )
    except ObservabilityError as error:
        print(f"error: {error}")
        return 1
    if regressions:
        for line in regressions:
            print(f"REGRESSION {line}")
        return 1
    count = len(_bench_files(args.results_dir))
    print(f"trajectory gate: {count} benchmark(s), no headline regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
