"""Graceful-degradation accounting.

A faulted run reports *how* it degraded, not just its final accuracy:
per-link delivery statistics, per-node offline time, and time-to-recover
after each transient outage.  :class:`FaultStats` is attached to
:class:`~repro.sim.results.ExperimentResult` by the experiment loop when
a non-empty fault plan is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LinkStats:
    """Delivery counters of one node→host link."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_corrupted: int = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of sent messages that never arrived."""
        return self.messages_dropped / self.messages_sent if self.messages_sent else 0.0

    def __add__(self, other: "LinkStats") -> "LinkStats":
        """Counter-wise sum (merging one link across runs)."""
        return LinkStats(
            messages_sent=self.messages_sent + other.messages_sent,
            messages_delivered=self.messages_delivered + other.messages_delivered,
            messages_dropped=self.messages_dropped + other.messages_dropped,
            messages_corrupted=self.messages_corrupted + other.messages_corrupted,
        )


@dataclass(frozen=True)
class RecoveryEvent:
    """One transient outage and how long the node took to come back.

    ``recovered_slot`` is the slot of the node's first *completed*
    inference after power returned (``None`` if it never recovered
    within the run); ``time_to_recover_slots`` counts from the end of
    the outage window to that completion.
    """

    node_id: int
    start_slot: int
    end_slot: int
    recovered_slot: Optional[int] = None

    @property
    def recovered(self) -> bool:
        """Whether the node completed an inference after power-up."""
        return self.recovered_slot is not None

    @property
    def time_to_recover_slots(self) -> Optional[int]:
        """Slots from power-up until the first completion (None if never)."""
        if self.recovered_slot is None:
            return None
        return self.recovered_slot - self.end_slot


@dataclass
class FaultStats:
    """Aggregated degradation accounting for one faulted run."""

    per_link: Dict[int, LinkStats] = field(default_factory=dict)
    offline_slots: Dict[int, int] = field(default_factory=dict)
    recoveries: Tuple[RecoveryEvent, ...] = ()
    host_restarts: int = 0

    @classmethod
    def merged(cls, runs: Sequence["FaultStats"]) -> "FaultStats":
        """Aggregate several runs' accounting into one.

        Delivery counters sum per link, offline slots sum per node,
        recovery events concatenate in run order, restarts sum — so a
        multi-seed sweep reports the fault exposure of *all* its runs,
        not just the last one.
        """
        per_link: Dict[int, LinkStats] = {}
        offline_slots: Dict[int, int] = {}
        recoveries: list = []
        host_restarts = 0
        for stats in runs:
            for node_id, link in stats.per_link.items():
                per_link[node_id] = (
                    per_link[node_id] + link if node_id in per_link else link
                )
            for node_id, slots in stats.offline_slots.items():
                offline_slots[node_id] = offline_slots.get(node_id, 0) + slots
            recoveries.extend(stats.recoveries)
            host_restarts += stats.host_restarts
        return cls(
            per_link=per_link,
            offline_slots=offline_slots,
            recoveries=tuple(recoveries),
            host_restarts=host_restarts,
        )

    # ------------------------------------------------------------------

    @property
    def messages_sent(self) -> int:
        """Result messages transmitted across all links."""
        return sum(s.messages_sent for s in self.per_link.values())

    @property
    def messages_delivered(self) -> int:
        """Messages that reached the host (including corrupted ones)."""
        return sum(s.messages_delivered for s in self.per_link.values())

    @property
    def messages_dropped(self) -> int:
        """Messages lost in transit."""
        return sum(s.messages_dropped for s in self.per_link.values())

    @property
    def messages_corrupted(self) -> int:
        """Delivered messages whose label was garbled."""
        return sum(s.messages_corrupted for s in self.per_link.values())

    @property
    def drop_rate(self) -> float:
        """Overall fraction of sent messages lost."""
        sent = self.messages_sent
        return self.messages_dropped / sent if sent else 0.0

    @property
    def total_offline_slots(self) -> int:
        """Node-slots spent dead or browned out, summed over nodes."""
        return sum(self.offline_slots.values())

    def mean_time_to_recover(self) -> Optional[float]:
        """Mean slots-to-first-completion over recovered outages."""
        times = [
            event.time_to_recover_slots
            for event in self.recoveries
            if event.time_to_recover_slots is not None
        ]
        return sum(times) / len(times) if times else None

    def summary(self) -> str:
        """One-line human-readable account of the degradation."""
        parts = [
            f"{self.messages_dropped}/{self.messages_sent} msgs dropped",
            f"{self.messages_corrupted} corrupted",
            f"{self.total_offline_slots} node-slots offline",
        ]
        ttr = self.mean_time_to_recover()
        if ttr is not None:
            parts.append(f"mean time-to-recover {ttr:.1f} slots")
        if self.host_restarts:
            parts.append(f"{self.host_restarts} host restart(s)")
        return ", ".join(parts)
