"""Tests for repro.utils.stats — the confidence metric and EMAs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.stats import (
    ExponentialMovingAverage,
    RunningMean,
    confidence_from_softmax,
    max_confidence,
    signal_power,
    snr_db,
)


class TestConfidenceFromSoftmax:
    def test_one_hot_is_maximal(self):
        one_hot = confidence_from_softmax([1, 0, 0, 0])
        uniform = confidence_from_softmax([0.25, 0.25, 0.25, 0.25])
        assert one_hot > uniform

    def test_uniform_is_zero(self):
        assert confidence_from_softmax([0.25] * 4) == pytest.approx(0.0)

    def test_matches_paper_example(self):
        # VC1 = [0.94, 0.01, 0.02, 0.01] is more confident than
        # VC2 = [0.80, 0.05, 0.08, 0.07] (paper SIII-C).
        vc1 = confidence_from_softmax([0.94, 0.01, 0.02, 0.01])
        vc2 = confidence_from_softmax([0.80, 0.05, 0.08, 0.07])
        assert vc1 > vc2

    def test_matches_numpy_variance(self):
        vector = np.array([0.5, 0.3, 0.2])
        assert confidence_from_softmax(vector) == pytest.approx(np.var(vector))

    def test_rejects_scalar_and_matrix(self):
        with pytest.raises(ConfigurationError):
            confidence_from_softmax(np.array(0.5))
        with pytest.raises(ConfigurationError):
            confidence_from_softmax(np.eye(2))


class TestMaxConfidence:
    def test_equals_one_hot_variance(self):
        assert max_confidence(4) == pytest.approx(
            confidence_from_softmax([1, 0, 0, 0])
        )

    def test_decreases_with_classes(self):
        assert max_confidence(2) > max_confidence(10)

    def test_rejects_single_class(self):
        with pytest.raises(ConfigurationError):
            max_confidence(1)


class TestRunningMean:
    def test_basic(self):
        mean = RunningMean()
        for value in [1.0, 2.0, 3.0]:
            mean.update(value)
        assert mean.value == pytest.approx(2.0)
        assert mean.count == 3

    def test_empty_value(self):
        assert RunningMean().value == 0.0

    def test_merge(self):
        a, b = RunningMean(), RunningMean()
        for value in [1.0, 2.0]:
            a.update(value)
        for value in [3.0, 4.0]:
            b.update(value)
        merged = a.merge(b)
        assert merged.value == pytest.approx(2.5)
        assert merged.count == 4


class TestExponentialMovingAverage:
    def test_alpha_one_tracks_input(self):
        ema = ExponentialMovingAverage(alpha=1.0, initial=5.0)
        assert ema.update(3.0) == pytest.approx(3.0)

    def test_converges_to_constant(self):
        ema = ExponentialMovingAverage(alpha=0.5)
        for _ in range(50):
            ema.update(10.0)
        assert ema.value == pytest.approx(10.0, abs=1e-6)

    def test_update_count(self):
        ema = ExponentialMovingAverage(alpha=0.2)
        ema.update(1.0)
        ema.update(2.0)
        assert ema.updates == 2

    @pytest.mark.parametrize("alpha", [0.0, 1.5, -0.2])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ConfigurationError):
            ExponentialMovingAverage(alpha=alpha)


class TestSignalPower:
    def test_constant_signal(self):
        assert signal_power(np.full(10, 2.0)) == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            signal_power(np.array([]))


class TestSnrDb:
    def test_equal_power_is_zero_db(self):
        signal = np.ones(100)
        assert snr_db(signal, signal) == pytest.approx(0.0)

    def test_zero_noise_is_infinite(self):
        assert snr_db(np.ones(10), np.zeros(10)) == float("inf")

    def test_ten_db(self):
        signal = np.full(10, np.sqrt(10.0))
        noise = np.ones(10)
        assert snr_db(signal, noise) == pytest.approx(10.0)
