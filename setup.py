"""Setuptools shim.

The environment ships setuptools without the ``wheel`` package, so PEP
517 editable installs fail with ``invalid command 'bdist_wheel'``; this
shim lets ``pip install -e . --no-use-pep517`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
