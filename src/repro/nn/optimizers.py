"""Gradient-descent optimizers.

Optimizers update parameter arrays *in place* (layers hand out live
references), keyed by ``id(param)`` so per-parameter state survives
across steps without the layers knowing about the optimizer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import ModelError
from repro.utils.validation import check_non_negative, check_positive

ParamGrad = Tuple[np.ndarray, np.ndarray]


class Optimizer(ABC):
    """Base optimizer."""

    def __init__(self, learning_rate: float) -> None:
        self.learning_rate = check_positive("learning_rate", learning_rate)

    def step(self, params_and_grads: Iterable[ParamGrad]) -> None:
        """Apply one update to every ``(param, grad)`` pair."""
        for param, grad in params_and_grads:
            if param.shape != grad.shape:
                raise ModelError(
                    f"param/grad shape mismatch: {param.shape} vs {grad.shape}"
                )
            self._update(param, grad)

    @abstractmethod
    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        """Apply the rule to one parameter in place."""


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        self.momentum = check_non_negative("momentum", momentum)
        if self.momentum >= 1.0:
            raise ModelError(f"momentum must be < 1, got {momentum}")
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        velocity = self._velocity.setdefault(id(param), np.zeros_like(param))
        velocity *= self.momentum
        velocity -= self.learning_rate * grad
        param += velocity


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ModelError(f"betas must be in [0, 1), got {beta1}/{beta2}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = check_positive("epsilon", epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        key = id(param)
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        self._t[key] = self._t.get(key, 0) + 1
        t = self._t[key]

        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2

        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
