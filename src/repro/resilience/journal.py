"""Sweep journal: durable JSONL checkpoints of completed sweep cells.

A journal makes a long sweep resumable: every completed ``(policy,
seed)`` cell (and every baseline run) is appended to a JSONL file the
moment it finishes, and ``PolicySweep.run(journal=..., resume=True)``
skips cells already on disk — after a crash, an OOM kill or a Ctrl-C
only the unfinished remainder is recomputed, and the resumed sweep is
byte-identical to a clean one (gated by tests).

File layout — one JSON document per line::

    {"kind": "sweep-journal", "schema_version": 1, "fingerprint": "..."}
    {"kind": "cell", "cell": "policy:RR3:<digest>:seed=11", "payload": {...}}
    {"kind": "cell", "cell": "baseline:Baseline-1:seed=11", "payload": {...}}

The header **fingerprint** keys the journal to the sweep that wrote it:
a SHA-256 over the trained bundle's content-addressed store digest (or
an equivalent recipe-derived key), the dataset name and the full
simulation config.  Opening a journal whose fingerprint disagrees with
the current sweep raises :class:`~repro.errors.ResilienceError` instead
of silently serving another experiment's results.

Cell payloads are exact: every numeric field round-trips bit-for-bit
(Python floats serialize via ``repr`` shortest-round-trip), so a decoded
:class:`~repro.sim.results.ExperimentResult` compares equal to the run
that produced it.  A torn final line (the writer died mid-append) is
detected on open and truncated away — the journal loses at most the
cell being written at the instant of the crash.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from repro.core.policies import PolicySpec
from repro.datasets.activities import Activity
from repro.errors import ResilienceError
from repro.faults.stats import FaultStats, LinkStats, RecoveryEvent
from repro.wsn.node import NodeStats

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.sim.baselines import BaselineResult
    from repro.sim.results import ExperimentResult

# NOTE: repro.sim.* and repro.store.keys are imported lazily inside the
# functions below — repro.sim.sweep imports this module, so importing
# them here would make ``import repro.resilience`` circular.

logger = logging.getLogger(__name__)

#: Bump on any incompatible change to the fingerprint derivation, the
#: cell key scheme or the payload encoding.  Old journals stop matching
#: and are rejected (resume) or rewritten (fresh start).
JOURNAL_SCHEMA_VERSION = 1

_HEADER_KIND = "sweep-journal"
_CELL_KIND = "cell"


def _digest(document: Any) -> str:
    from repro.store.keys import _canonical

    payload = json.dumps(
        _canonical(document), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def sweep_fingerprint(experiment: Any) -> str:
    """The digest keying a journal to one sweep's inputs.

    Folds in the trained bundle's content-addressed store key (computed
    from its recorded training recipe when the store never saw it — the
    same derivation as :func:`repro.store.keys.trained_bundle_key`, so
    it covers the dataset array digests), the dataset name and the full
    :class:`~repro.sim.experiment.SimulationConfig`.  Per-cell seeds are
    deliberately excluded: they key individual cells, not the journal.
    """
    from repro.store.keys import trained_bundle_key

    bundle = experiment.bundle
    bundle_key = getattr(bundle, "store_key", None)
    if (
        bundle_key is None
        and getattr(bundle, "train_seed", None) is not None
        and getattr(bundle, "train_config", None) is not None
    ):
        bundle_key = trained_bundle_key(
            experiment.dataset,
            bundle.budget_j,
            seed=bundle.train_seed,
            config=bundle.train_config,
            cost_model=bundle.cost_model,
        )
    return _digest(
        {
            "kind": _HEADER_KIND,
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "dataset": experiment.dataset.spec.name,
            "bundle": bundle_key if bundle_key is not None else "unkeyed",
            "config": asdict(experiment.config),
        }
    )


def policy_cell(spec: PolicySpec, seed: int) -> str:
    """The journal key of one ``(policy, seed)`` cell.

    The display name is included for readability, but the digest over
    every :class:`~repro.core.policies.PolicySpec` field is what makes
    the key exact — two specs sharing a name never collide.
    """
    return f"policy:{spec.name}:{_digest(asdict(spec))[:12]}:seed={int(seed)}"


def baseline_cell(name: str, seed: int) -> str:
    """The journal key of one fully-powered baseline run."""
    return f"baseline:{name}:seed={int(seed)}"


# ---------------------------------------------------------------------------
# exact result encoding
# ---------------------------------------------------------------------------


def encode_experiment_result(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-safe document that decodes back to an equal result."""
    return {
        "type": "experiment",
        "policy_name": result.policy_name,
        "activities": [activity.value for activity in result.activities],
        "records": [
            [
                int(record.slot_index),
                int(record.true_label),
                None if record.predicted_label is None else int(record.predicted_label),
                [int(node_id) for node_id in record.active_nodes],
                int(record.completions),
                int(record.attempts),
                int(record.dropped_messages),
            ]
            for record in result.records
        ],
        "node_stats": {
            str(node_id): {
                "slots": int(stats.slots),
                "active_slots": int(stats.active_slots),
                "attempts_started": int(stats.attempts_started),
                "completions": int(stats.completions),
                "failed_active_slots": int(stats.failed_active_slots),
                "harvested_j": float(stats.harvested_j),
                "consumed_j": float(stats.consumed_j),
                "comm_j": float(stats.comm_j),
                "leaked_j": float(stats.leaked_j),
            }
            for node_id, stats in result.node_stats.items()
        },
        "comm_energy_j": float(result.comm_energy_j),
        "confidence_updates": int(result.confidence_updates),
        "fault_stats": (
            None
            if result.fault_stats is None
            else _encode_fault_stats(result.fault_stats)
        ),
    }


def _encode_fault_stats(stats: FaultStats) -> Dict[str, Any]:
    return {
        "per_link": {
            str(node_id): [
                int(link.messages_sent),
                int(link.messages_delivered),
                int(link.messages_dropped),
                int(link.messages_corrupted),
            ]
            for node_id, link in stats.per_link.items()
        },
        "offline_slots": {
            str(node_id): int(slots) for node_id, slots in stats.offline_slots.items()
        },
        "recoveries": [
            [
                int(event.node_id),
                int(event.start_slot),
                int(event.end_slot),
                None if event.recovered_slot is None else int(event.recovered_slot),
            ]
            for event in stats.recoveries
        ],
        "host_restarts": int(stats.host_restarts),
    }


def decode_experiment_result(data: Dict[str, Any]) -> "ExperimentResult":
    """Rebuild the exact :class:`ExperimentResult` a cell recorded."""
    from repro.sim.results import ExperimentResult, SlotRecord

    result = ExperimentResult(
        policy_name=data["policy_name"],
        activities=[Activity(value) for value in data["activities"]],
    )
    result.records = [
        SlotRecord(
            slot_index=slot_index,
            true_label=true_label,
            predicted_label=predicted,
            active_nodes=tuple(active),
            completions=completions,
            attempts=attempts,
            dropped_messages=dropped,
        )
        for slot_index, true_label, predicted, active, completions, attempts, dropped
        in data["records"]
    ]
    result.node_stats = {
        int(node_id): NodeStats(**stats)
        for node_id, stats in data["node_stats"].items()
    }
    result.comm_energy_j = float(data["comm_energy_j"])
    result.confidence_updates = int(data["confidence_updates"])
    if data.get("fault_stats") is not None:
        fault = data["fault_stats"]
        result.fault_stats = FaultStats(
            per_link={
                int(node_id): LinkStats(*counts)
                for node_id, counts in fault["per_link"].items()
            },
            offline_slots={
                int(node_id): slots
                for node_id, slots in fault["offline_slots"].items()
            },
            recoveries=tuple(
                RecoveryEvent(
                    node_id=node_id,
                    start_slot=start,
                    end_slot=end,
                    recovered_slot=recovered,
                )
                for node_id, start, end, recovered in fault["recoveries"]
            ),
            host_restarts=fault["host_restarts"],
        )
    return result


def encode_baseline_result(result: BaselineResult) -> Dict[str, Any]:
    """JSON-safe document for one fully-powered baseline run."""
    return {
        "type": "baseline",
        "baseline_name": result.baseline_name,
        "activities": [activity.value for activity in result.activities],
        "true_labels": [int(value) for value in result.true_labels],
        "predicted_labels": [int(value) for value in result.predicted_labels],
    }


def decode_baseline_result(data: Dict[str, Any]) -> "BaselineResult":
    """Rebuild the exact :class:`BaselineResult` a cell recorded."""
    from repro.sim.baselines import BaselineResult

    return BaselineResult(
        baseline_name=data["baseline_name"],
        activities=[Activity(value) for value in data["activities"]],
        true_labels=np.asarray(data["true_labels"], dtype=np.int64),
        predicted_labels=np.asarray(data["predicted_labels"], dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# the journal file
# ---------------------------------------------------------------------------


class SweepJournal:
    """Append-only JSONL checkpoint store for one sweep (see module doc).

    Use :meth:`open` — it validates or writes the header, recovers from
    a torn tail, and leaves the file positioned for appends.  Close (or
    use as a context manager) to release the handle; the data itself is
    durable after every :meth:`record` (line-buffered ``flush``, plus
    ``os.fsync`` when opened with ``sync=True``).
    """

    def __init__(self, path: str, fingerprint: str, *, sync: bool = False) -> None:
        self.path = os.fspath(path)
        self.fingerprint = fingerprint
        self.sync = bool(sync)
        self._payloads: Dict[str, Dict[str, Any]] = {}
        self._handle: Optional[Any] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        fingerprint: str,
        *,
        resume: bool = True,
        sync: bool = False,
    ) -> "SweepJournal":
        """Open (creating if missing) the journal for one sweep.

        ``resume=True`` loads previously completed cells and refuses a
        fingerprint mismatch (the file belongs to a different sweep);
        ``resume=False`` discards any existing content and starts a
        fresh journal under the current fingerprint.
        """
        journal = cls(path, fingerprint, sync=sync)
        if not resume or not os.path.exists(journal.path):
            journal._start_fresh()
            return journal
        journal._load_existing()
        return journal

    def _start_fresh(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "w")
        self._write_line(
            {
                "kind": _HEADER_KIND,
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "fingerprint": self.fingerprint,
            }
        )

    def _load_existing(self) -> None:
        cells: Dict[str, Dict[str, Any]] = {}
        good_offset = 0
        header_seen = False
        with open(self.path, "r") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn tail: the writer died mid-append
                try:
                    document = json.loads(line)
                except json.JSONDecodeError:
                    break
                if not header_seen:
                    if (
                        document.get("kind") != _HEADER_KIND
                        or document.get("schema_version") != JOURNAL_SCHEMA_VERSION
                    ):
                        raise ResilienceError(
                            f"{self.path} is not a schema-v{JOURNAL_SCHEMA_VERSION} "
                            "sweep journal"
                        )
                    if document.get("fingerprint") != self.fingerprint:
                        raise ResilienceError(
                            f"journal {self.path} belongs to a different sweep "
                            f"(fingerprint {document.get('fingerprint')!r} != "
                            f"{self.fingerprint!r}); pass resume=False to replace it"
                        )
                    header_seen = True
                elif document.get("kind") == _CELL_KIND:
                    cells[document["cell"]] = document["payload"]
                good_offset += len(line.encode("utf-8"))
        if not header_seen:
            # Empty or headerless file: nothing salvageable, rewrite.
            self._start_fresh()
            return
        size = os.path.getsize(self.path)
        if good_offset < size:
            logger.warning(
                "journal %s has a torn tail (%d trailing byte(s)); truncating",
                self.path, size - good_offset,
            )
            with open(self.path, "r+") as handle:
                handle.truncate(good_offset)
        self._payloads = cells
        self._handle = open(self.path, "a")

    # -- reads ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, cell: str) -> bool:
        return cell in self._payloads

    @property
    def cells(self) -> List[str]:
        """Keys of every completed cell (sorted)."""
        return sorted(self._payloads)

    def get(self, cell: str) -> Optional[Dict[str, Any]]:
        """The raw payload of one completed cell, or ``None``."""
        return self._payloads.get(cell)

    # -- writes ---------------------------------------------------------

    def record(self, cell: str, payload: Dict[str, Any]) -> None:
        """Append one completed cell, durably, before returning.

        Re-recording a cell already present is a no-op (a resumed
        worker may race the journal it was restored from); the first
        payload wins, matching at-most-once cell execution.
        """
        if cell in self._payloads:
            return
        if self._handle is None:
            raise ResilienceError(f"journal {self.path} is closed")
        self._payloads[cell] = payload
        self._write_line({"kind": _CELL_KIND, "cell": cell, "payload": payload})

    def _write_line(self, document: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(document, sort_keys=True) + "\n")
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Flush and release the file handle (reads keep working)."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
