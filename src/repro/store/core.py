"""The content-addressed on-disk artifact store.

Layout under the store root::

    objects/<key>/manifest.json     # schema, checksums, payload metadata
    objects/<key>/<payload files>   # e.g. chest.pruned.npz
    objects/<key>/.last_used        # mtime = last hit (GC recency)
    locks/<key>.lock                # per-entry cross-process lock
    locks/_store.lock               # store-wide lock (GC scan)
    tmp/<pid>-<n>/                  # private staging dirs

Concurrency protocol:

* **Writers** stage the full entry (payload + manifest) in a private
  ``tmp/`` directory, then take the per-key lock and ``os.rename`` the
  staged directory into ``objects/`` — atomic on POSIX, so readers only
  ever see complete entries.  A writer that finds the entry already
  present (it lost the race) discards its staging dir; both racers
  succeed.
* **Readers** verify the manifest's per-file SHA-256 checksums on every
  ``get``.  Any mismatch, unreadable file or malformed manifest evicts
  the entry under its lock and reports a miss — corruption is rebuilt,
  never propagated.
* **GC** takes the store-wide lock, then each victim's per-key lock
  before deleting, so it cannot tear an entry out from under a writer.

The root comes from ``REPRO_STORE_DIR`` (default
``~/.cache/repro-origin/store``) and the whole store is switched off by
``REPRO_STORE=off|0|false|no`` — a disabled store reports every ``get``
as a miss and makes ``put`` a no-op, reproducing store-less behavior
bit for bit.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import StoreError
from repro.obs.observer import NULL_OBS, Observability
from repro.store.keys import STORE_SCHEMA_VERSION
from repro.store.locks import FileLock

logger = logging.getLogger(__name__)

#: Environment variable naming the store root directory.
ENV_STORE_DIR = "REPRO_STORE_DIR"
#: Environment variable switching the store off entirely.
ENV_STORE_SWITCH = "REPRO_STORE"
#: Values of :data:`ENV_STORE_SWITCH` that disable the store.
_OFF_VALUES = frozenset({"0", "off", "false", "no"})

MANIFEST_NAME = "manifest.json"
_LAST_USED_NAME = ".last_used"

_tmp_counter = itertools.count()


def store_enabled_by_env() -> bool:
    """Whether the environment leaves the store switched on."""
    return os.environ.get(ENV_STORE_SWITCH, "1").strip().lower() not in _OFF_VALUES


def default_store_root() -> str:
    """The configured (or default per-user) store root."""
    root = os.environ.get(ENV_STORE_DIR, "").strip()
    if root:
        return os.path.abspath(os.path.expanduser(root))
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-origin", "store")


def default_store(obs: Optional[Observability] = None) -> "ArtifactStore":
    """The environment-configured store (possibly disabled).

    Resolved at call time, not import time, so tests and CI can flip
    ``REPRO_STORE_DIR`` / ``REPRO_STORE`` per invocation.
    """
    return ArtifactStore(
        default_store_root(), enabled=store_enabled_by_env(), obs=obs
    )


def _sha256_file(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(block)
    return hasher.hexdigest()


@dataclass
class StoreEntry:
    """One complete, integrity-checked entry as returned by ``get``."""

    key: str
    path: str
    manifest: Dict[str, Any]

    @property
    def payload(self) -> Dict[str, Any]:
        """The writer-supplied metadata block."""
        return self.manifest.get("payload", {})

    def file_path(self, name: str) -> str:
        """Absolute path of one payload file (must be in the manifest)."""
        if name not in self.manifest.get("files", {}):
            raise StoreError(f"entry {self.key} has no payload file {name!r}")
        return os.path.join(self.path, name)

    @property
    def size_bytes(self) -> int:
        """Total payload + manifest size recorded in the manifest."""
        return int(
            sum(spec["bytes"] for spec in self.manifest.get("files", {}).values())
        )


@dataclass
class EntryStatus:
    """One ``verify``/``ls`` row."""

    key: str
    ok: bool
    size_bytes: int = 0
    age_s: float = 0.0
    idle_s: float = 0.0
    kind: str = "?"
    problems: List[str] = field(default_factory=list)


class ArtifactStore:
    """Content-addressed artifact store (see module docstring).

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).
    enabled:
        A disabled store misses every ``get`` and no-ops every ``put``.
    obs:
        Observability bundle; the store itself records only the
        ``store.corrupt`` counter (integrity evictions) and
        ``store.gc_removed`` — hit/miss/build accounting lives with the
        caller, which knows what a miss cost to rebuild.
    """

    def __init__(
        self,
        root: str,
        *,
        enabled: bool = True,
        obs: Optional[Observability] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        self.enabled = bool(enabled)
        self.obs = obs if obs is not None else NULL_OBS

    # ------------------------------------------------------------------
    # paths + locks
    # ------------------------------------------------------------------

    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def entry_path(self, key: str) -> str:
        """Directory an entry with ``key`` lives in (present or not)."""
        self._check_key(key)
        return os.path.join(self._objects_dir(), key)

    def lock(self, key: str, *, timeout_s: Optional[float] = None) -> FileLock:
        """The cross-process lock guarding one entry.

        ``timeout_s=None`` (default) uses the configured acquisition
        timeout: ``REPRO_STORE_LOCK_TIMEOUT`` when set, else 60s.
        """
        self._check_key(key)
        return FileLock(
            os.path.join(self.root, "locks", f"{key}.lock"), timeout_s=timeout_s
        )

    def _store_lock(self) -> FileLock:
        return FileLock(os.path.join(self.root, "locks", "_store.lock"))

    @staticmethod
    def _check_key(key: str) -> None:
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise StoreError(f"malformed store key {key!r} (want lowercase hex)")

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def contains(self, key: str) -> bool:
        """Fast presence probe (no integrity check)."""
        if not self.enabled:
            return False
        return os.path.isfile(os.path.join(self.entry_path(key), MANIFEST_NAME))

    def get(self, key: str) -> Optional[StoreEntry]:
        """Integrity-checked lookup: the entry, or ``None`` on miss.

        A corrupt entry (bad checksum, missing file, malformed manifest,
        schema mismatch) is evicted under its lock, counted in the
        ``store.corrupt`` metric, and reported as a miss.
        """
        if not self.enabled:
            return None
        path = self.entry_path(key)
        if not os.path.isfile(os.path.join(path, MANIFEST_NAME)):
            return None
        problems = self._entry_problems(key, path)
        if problems:
            logger.warning("evicting corrupt store entry %s: %s", key, problems)
            if self.obs.enabled:
                self.obs.metrics.inc("store.corrupt")
            self.invalidate(key)
            return None
        manifest = self._read_manifest(path)
        self._touch(path)
        return StoreEntry(key=key, path=path, manifest=manifest)

    def _read_manifest(self, path: str) -> Dict[str, Any]:
        with open(os.path.join(path, MANIFEST_NAME)) as handle:
            return json.load(handle)

    def _entry_problems(self, key: str, path: str) -> List[str]:
        """All integrity problems of one entry (empty = healthy)."""
        try:
            manifest = self._read_manifest(path)
        except (OSError, json.JSONDecodeError) as error:
            return [f"unreadable manifest: {error}"]
        problems: List[str] = []
        if manifest.get("schema_version") != STORE_SCHEMA_VERSION:
            problems.append(
                f"schema {manifest.get('schema_version')} != {STORE_SCHEMA_VERSION}"
            )
        if manifest.get("key") != key:
            problems.append(f"manifest key {manifest.get('key')!r} != directory {key!r}")
        for name, spec in manifest.get("files", {}).items():
            file_path = os.path.join(path, name)
            if not os.path.isfile(file_path):
                problems.append(f"missing file {name}")
                continue
            if os.path.getsize(file_path) != spec["bytes"]:
                problems.append(f"size mismatch for {name}")
                continue
            if _sha256_file(file_path) != spec["sha256"]:
                problems.append(f"checksum mismatch for {name}")
        return problems

    @staticmethod
    def _touch(path: str) -> None:
        marker = os.path.join(path, _LAST_USED_NAME)
        try:
            with open(marker, "a"):
                pass
            os.utime(marker, None)
        except OSError:  # pragma: no cover - read-only store roots
            pass

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(
        self,
        key: str,
        stage: Callable[[str], Dict[str, Any]],
        *,
        kind: str = "artifact",
    ) -> Optional[StoreEntry]:
        """Stage and publish one entry; idempotent under races.

        ``stage(tmpdir)`` writes the payload files into ``tmpdir`` and
        returns the JSON-serializable metadata block stored as the
        manifest's ``payload``.  Checksums are computed over everything
        staged; the finished directory is renamed into place under the
        entry lock.  Returns the published entry (which may be a racing
        writer's identical one), or ``None`` on a disabled store.
        """
        if not self.enabled:
            return None
        path = self.entry_path(key)
        tmp = os.path.join(
            self.root, "tmp", f"{os.getpid()}-{next(_tmp_counter)}"
        )
        os.makedirs(tmp)
        try:
            payload = stage(tmp)
            files = {}
            for name in sorted(os.listdir(tmp)):
                file_path = os.path.join(tmp, name)
                files[name] = {
                    "sha256": _sha256_file(file_path),
                    "bytes": os.path.getsize(file_path),
                }
            manifest = {
                "schema_version": STORE_SCHEMA_VERSION,
                "key": key,
                "kind": kind,
                "created_utc": time.time(),
                "files": files,
                "payload": payload,
            }
            with open(os.path.join(tmp, MANIFEST_NAME), "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            with self.lock(key):
                if os.path.isfile(os.path.join(path, MANIFEST_NAME)):
                    logger.debug("store put lost the race for %s; keeping winner", key)
                else:
                    os.makedirs(self._objects_dir(), exist_ok=True)
                    os.rename(tmp, path)
                    tmp = None  # published
            if self.obs.enabled:
                self.obs.metrics.inc("store.put")
            return StoreEntry(key=key, path=path, manifest=self._read_manifest(path))
        finally:
            if tmp is not None and os.path.isdir(tmp):
                shutil.rmtree(tmp, ignore_errors=True)

    def invalidate(self, key: str) -> bool:
        """Delete one entry (under its lock); True if anything was removed."""
        path = self.entry_path(key)
        with self.lock(key):
            if not os.path.isdir(path):
                return False
            shutil.rmtree(path, ignore_errors=True)
            return True

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def keys(self) -> List[str]:
        """All entry keys currently on disk (sorted)."""
        objects = self._objects_dir()
        if not os.path.isdir(objects):
            return []
        return sorted(
            name
            for name in os.listdir(objects)
            if os.path.isfile(os.path.join(objects, name, MANIFEST_NAME))
        )

    def status(self, key: str) -> EntryStatus:
        """Health + size + age of one entry (checksums recomputed)."""
        path = self.entry_path(key)
        problems = self._entry_problems(key, path)
        size = 0
        created = last_used = None
        try:
            manifest = self._read_manifest(path)
            size = sum(spec["bytes"] for spec in manifest.get("files", {}).values())
            created = manifest.get("created_utc")
            kind = manifest.get("kind", "?")
        except (OSError, json.JSONDecodeError):
            kind = "?"
        marker = os.path.join(path, _LAST_USED_NAME)
        try:
            last_used = os.path.getmtime(marker)
        except OSError:
            last_used = created
        now = time.time()
        return EntryStatus(
            key=key,
            ok=not problems,
            size_bytes=size,
            age_s=max(0.0, now - created) if created else 0.0,
            idle_s=max(0.0, now - last_used) if last_used else 0.0,
            kind=kind,
            problems=problems,
        )

    def verify(self) -> List[EntryStatus]:
        """Recheck every entry's checksums; corrupt entries are kept
        (use ``gc`` or ``invalidate`` to drop them)."""
        return [self.status(key) for key in self.keys()]

    def size_bytes(self) -> int:
        """Total manifest-recorded payload size across entries."""
        return sum(self.status(key).size_bytes for key in self.keys())

    def gc(
        self,
        *,
        max_bytes: Optional[int] = None,
        max_age_s: Optional[float] = None,
        drop_corrupt: bool = True,
    ) -> Dict[str, Any]:
        """Expire old entries, then trim to a size budget (LRU order).

        Returns a report dict: removed keys (grouped by reason), bytes
        reclaimed and surviving totals.  Runs under the store-wide lock
        so two concurrent GCs cannot double-delete.
        """
        removed: Dict[str, List[str]] = {"corrupt": [], "expired": [], "evicted": []}
        reclaimed = 0
        with self._store_lock():
            statuses = [self.status(key) for key in self.keys()]
            survivors: List[EntryStatus] = []
            for status in statuses:
                if drop_corrupt and not status.ok:
                    reclaimed += status.size_bytes
                    self.invalidate(status.key)
                    removed["corrupt"].append(status.key)
                elif max_age_s is not None and status.age_s > max_age_s:
                    reclaimed += status.size_bytes
                    self.invalidate(status.key)
                    removed["expired"].append(status.key)
                else:
                    survivors.append(status)
            if max_bytes is not None:
                total = sum(status.size_bytes for status in survivors)
                # Least-recently-used first; ties broken by key for
                # deterministic eviction order.
                survivors.sort(key=lambda status: (-status.idle_s, status.key))
                while survivors and total > max_bytes:
                    victim = survivors.pop(0)
                    total -= victim.size_bytes
                    reclaimed += victim.size_bytes
                    self.invalidate(victim.key)
                    removed["evicted"].append(victim.key)
        n_removed = sum(len(keys) for keys in removed.values())
        if self.obs.enabled and n_removed:
            self.obs.metrics.inc("store.gc_removed", n_removed)
        return {
            "removed": removed,
            "n_removed": n_removed,
            "reclaimed_bytes": reclaimed,
            "remaining_entries": len(self.keys()),
            "remaining_bytes": self.size_bytes(),
        }
