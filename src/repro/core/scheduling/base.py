"""Scheduling-policy protocol.

A policy is asked, every slot, which nodes should attempt an inference;
afterwards it observes what happened (which inferences completed, what
the system's final classification was) so it can adapt — that feedback
is what makes activity-aware scheduling possible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.wsn.node import InferenceOutcome


@dataclass
class SchedulingContext:
    """What a policy may look at when deciding.

    Attributes
    ----------
    node_energy_j:
        Current stored energy per node id.
    node_ready:
        Whether each node could finish a fresh inference right now
        (the AAS energy check).
    anticipated_label:
        The activity the system expects next (= the last classification,
        by temporal continuity); ``None`` before the first result.
    node_responsive:
        Fault-awareness: ``False`` flags a node the system believes is
        down or unreachable (dead, browned out, or quiet on a lossy link
        past the plan's ``unresponsive_after_slots``).  Missing entries
        mean responsive — a fault-free run passes an empty dict and
        behaves exactly as before.
    """

    node_energy_j: Dict[int, float] = field(default_factory=dict)
    node_ready: Dict[int, bool] = field(default_factory=dict)
    anticipated_label: Optional[int] = None
    node_responsive: Dict[int, bool] = field(default_factory=dict)

    def is_responsive(self, node_id: int) -> bool:
        """Whether the node is believed reachable (default True)."""
        return self.node_responsive.get(node_id, True)


class SchedulingPolicy(ABC):
    """Decides node activations slot by slot."""

    name: str = "policy"

    @abstractmethod
    def active_nodes(self, slot_index: int, context: SchedulingContext) -> List[int]:
        """Node ids that should attempt an inference this slot.

        An empty list is a no-op (pure harvesting) slot.
        """

    def observe(
        self,
        slot_index: int,
        outcomes: Sequence[InferenceOutcome],
        final_label: Optional[int],
    ) -> None:
        """Feedback hook after the slot ran.  Default: ignore."""

    def reset(self) -> None:
        """Clear mutable state before a fresh run.  Default: nothing."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
