"""Unit tests for the fault-injection subsystem (`repro.faults`).

Covers construction-time plan validation, the Gilbert–Elliott loss
statistics, the lossy CommLink surface, the host's fault surface
(link health, restart, staleness down-weighting) and the AAS
retry/backoff reroute.  Experiment-level behaviour lives in
``test_faults_integration.py``.
"""

import numpy as np
import pytest

from repro.core.scheduling.aas import ActivityAwareScheduler
from repro.core.scheduling.base import SchedulingContext
from repro.core.scheduling.rank_table import RankTable
from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.core.ensemble.voting import MajorityVote
from repro.datasets.body import BodyLocation
from repro.errors import FaultError, ReproError, SimulationError
from repro.faults import (
    Brownout,
    FaultPlan,
    GilbertElliottLoss,
    HarvesterDropout,
    HostRestart,
    NodeDeath,
    PacketLoss,
    PayloadCorruption,
)
from repro.wsn.comm import CommLink, Delivery, RadioProfile
from repro.wsn.host import HostDevice
from repro.wsn.node import InferenceOutcome


def _outcome(node_id, label, slot, *, delivered=True, reported=None):
    return InferenceOutcome(
        node_id=node_id,
        location=BodyLocation.CHEST,
        slot_index=slot,
        started_slot=slot,
        completed=True,
        predicted_label=label,
        probabilities=np.array([0.1, 0.9]),
        confidence=0.9,
        delivered=delivered,
        reported_label=reported,
    )


class TestFaultModelValidation:
    def test_fault_error_hierarchy(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(FaultError, ValueError)

    def test_negative_slots_rejected(self):
        with pytest.raises(FaultError):
            NodeDeath(node_id=0, at_slot=-1)
        with pytest.raises(FaultError):
            Brownout(node_id=0, start_slot=-3, duration_slots=2)
        with pytest.raises(FaultError):
            HostRestart(at_slot=-1)

    def test_non_integer_slot_rejected(self):
        with pytest.raises(FaultError):
            NodeDeath(node_id=0, at_slot=2.5)
        with pytest.raises(FaultError):
            NodeDeath(node_id=0, at_slot=True)

    def test_brownout_needs_positive_duration(self):
        with pytest.raises(FaultError):
            Brownout(node_id=1, start_slot=4, duration_slots=0)

    def test_brownout_window_arithmetic(self):
        outage = Brownout(node_id=1, start_slot=10, duration_slots=5)
        assert outage.end_slot == 15
        assert not outage.covers(9)
        assert outage.covers(10)
        assert outage.covers(14)
        assert not outage.covers(15)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(FaultError):
            PacketLoss(rate=1.5)
        with pytest.raises(FaultError):
            PacketLoss(rate=-0.1)
        with pytest.raises(FaultError):
            GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=2.0)
        with pytest.raises(FaultError):
            HarvesterDropout(node_id=0, windows=((0, 5),), factor=1.2)

    def test_link_fault_window_must_be_ordered(self):
        with pytest.raises(FaultError):
            PacketLoss(rate=0.5, start_slot=20, end_slot=10)
        with pytest.raises(FaultError):
            PacketLoss(rate=0.5, start_slot=10, end_slot=10)

    def test_link_fault_active_window(self):
        loss = PacketLoss(rate=0.5, start_slot=10, end_slot=20)
        assert not loss.active_at(9)
        assert loss.active_at(10)
        assert loss.active_at(19)
        assert not loss.active_at(20)
        open_ended = PacketLoss(rate=0.5, start_slot=10)
        assert open_ended.active_at(10_000)

    def test_gilbert_elliott_needs_a_moving_chain(self):
        with pytest.raises(FaultError):
            GilbertElliottLoss(p_good_to_bad=0.0, p_bad_to_good=0.0)

    def test_gilbert_elliott_stationary_rate(self):
        ge = GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.3)
        # pi_b = 0.1 / 0.4 = 0.25, loss_bad = 1, loss_good = 0.
        assert ge.stationary_loss_rate == pytest.approx(0.25)
        lossy_good = GilbertElliottLoss(
            p_good_to_bad=0.2, p_bad_to_good=0.2, loss_good=0.1, loss_bad=0.9
        )
        assert lossy_good.stationary_loss_rate == pytest.approx(0.5)

    def test_harvester_dropout_validation_and_scale(self):
        with pytest.raises(FaultError):
            HarvesterDropout(node_id=0, windows=())
        with pytest.raises(FaultError):
            HarvesterDropout(node_id=0, windows=((5, 5),))
        dropout = HarvesterDropout(node_id=0, windows=((5, 10),), factor=0.25)
        assert dropout.scale_at(4) == 1.0
        assert dropout.scale_at(5) == 0.25
        assert dropout.scale_at(9) == 0.25
        assert dropout.scale_at(10) == 1.0


class TestFaultPlanValidation:
    def test_default_plan_is_empty(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert not plan.has_link_faults
        assert plan.named_nodes() == ()

    def test_knob_only_plan_is_not_empty(self):
        assert not FaultPlan(unresponsive_after_slots=4).is_empty
        assert not FaultPlan(recall_staleness_half_life_slots=8).is_empty

    def test_knobs_validated(self):
        with pytest.raises(FaultError):
            FaultPlan(unresponsive_after_slots=0)
        with pytest.raises(FaultError):
            FaultPlan(recall_staleness_half_life_slots=-2)

    def test_non_fault_entries_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(faults=("drop everything",))

    def test_overlapping_brownouts_rejected(self):
        with pytest.raises(FaultError, match="overlapping"):
            FaultPlan(
                faults=(
                    Brownout(node_id=1, start_slot=10, duration_slots=10),
                    Brownout(node_id=1, start_slot=15, duration_slots=5),
                )
            )

    def test_adjacent_and_cross_node_brownouts_allowed(self):
        FaultPlan(
            faults=(
                Brownout(node_id=1, start_slot=10, duration_slots=5),
                Brownout(node_id=1, start_slot=15, duration_slots=5),
                Brownout(node_id=2, start_slot=12, duration_slots=10),
            )
        )

    def test_named_nodes_sorted_and_deduplicated(self):
        plan = FaultPlan(
            faults=(
                NodeDeath(node_id=2, at_slot=5),
                Brownout(node_id=0, start_slot=1, duration_slots=2),
                PacketLoss(rate=0.5),  # node_id=None: names nobody
                PayloadCorruption(rate=0.1, node_id=2),
            )
        )
        assert plan.named_nodes() == (0, 2)

    def test_compile_rejects_unknown_node(self):
        plan = FaultPlan(faults=(NodeDeath(node_id=9, at_slot=5),))
        with pytest.raises(FaultError, match="unknown node 9"):
            plan.compile(node_ids=[0, 1, 2], n_slots=100, n_classes=5)

    def test_compile_link_faults_need_rng(self):
        plan = FaultPlan(faults=(PacketLoss(rate=0.5),))
        assert plan.has_link_faults
        with pytest.raises(FaultError, match="RNG"):
            plan.compile(node_ids=[0], n_slots=10, n_classes=3)

    def test_from_failures_compiles_to_node_deaths(self):
        plan = FaultPlan.from_failures({2: 30, 0: 10})
        assert plan.faults == (
            NodeDeath(node_id=0, at_slot=10),
            NodeDeath(node_id=2, at_slot=30),
        )
        assert not plan.has_link_faults


def _single_link_hook(plan, n_classes=5, seed=0):
    engine = plan.compile(
        node_ids=[0],
        n_slots=10**9,
        n_classes=n_classes,
        rng=np.random.default_rng(seed),
    )
    hook = engine.link_hook(0)
    assert hook is not None
    return hook


class TestLossStatistics:
    def test_bernoulli_loss_matches_rate(self):
        hook = _single_link_hook(FaultPlan(faults=(PacketLoss(rate=0.3),)))
        n = 10_000
        dropped = sum(1 for i in range(n) if not hook(i, 0).delivered)
        assert dropped / n == pytest.approx(0.3, abs=0.02)

    def test_gilbert_elliott_matches_stationary_rate(self):
        ge = GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.3)
        hook = _single_link_hook(FaultPlan(faults=(ge,)))
        n = 20_000
        dropped = sum(1 for i in range(n) if not hook(i, 0).delivered)
        # Bursts correlate successive messages, so allow a wider band
        # than the i.i.d. standard error.
        assert dropped / n == pytest.approx(ge.stationary_loss_rate, abs=0.03)

    def test_gilbert_elliott_losses_are_bursty(self):
        # Sticky bad state: a drop should predict another drop.
        ge = GilbertElliottLoss(p_good_to_bad=0.05, p_bad_to_good=0.2)
        hook = _single_link_hook(FaultPlan(faults=(ge,)))
        outcomes = [not hook(i, 0).delivered for i in range(20_000)]
        marginal = sum(outcomes) / len(outcomes)
        after_drop = [b for a, b in zip(outcomes, outcomes[1:]) if a]
        conditional = sum(after_drop) / len(after_drop)
        assert marginal == pytest.approx(ge.stationary_loss_rate, abs=0.03)
        assert conditional > 2 * marginal  # bursty, not i.i.d.

    def test_corruption_garbles_within_class_range(self):
        hook = _single_link_hook(
            FaultPlan(faults=(PayloadCorruption(rate=0.5),)), n_classes=6
        )
        n = 4_000
        corrupted = 0
        for i in range(n):
            delivery = hook(i, 2)
            assert delivery.delivered
            if delivery.corrupted:
                corrupted += 1
                assert delivery.label != 2
                assert 0 <= delivery.label < 6
            else:
                assert delivery.label == 2
        assert corrupted / n == pytest.approx(0.5, abs=0.03)

    def test_windowed_loss_only_inside_window(self):
        hook = _single_link_hook(
            FaultPlan(faults=(PacketLoss(rate=1.0, start_slot=10, end_slot=20),))
        )
        assert hook(5, 0).delivered
        assert not hook(15, 0).delivered
        assert hook(25, 0).delivered

    def test_same_seed_same_channel_decisions(self):
        plan = FaultPlan(faults=(GilbertElliottLoss(0.1, 0.3), PacketLoss(rate=0.2)))
        a = _single_link_hook(plan, seed=42)
        b = _single_link_hook(plan, seed=42)
        assert [a(i, 0).delivered for i in range(500)] == [
            b(i, 0).delivered for i in range(500)
        ]


class TestLossyCommLink:
    def test_transmit_without_hook_delivers(self):
        link = CommLink(RadioProfile.ble())
        result = link.transmit(6, slot_index=0, label=3)
        assert result.delivery == Delivery(delivered=True, label=3)
        assert result.cost_j == pytest.approx(link.message_cost_j(6))
        assert link.messages_delivered == 1
        assert link.delivery_rate == 1.0

    def test_dropped_message_still_costs_energy(self):
        link = CommLink(
            RadioProfile.ble(),
            delivery_hook=lambda slot, label: Delivery(delivered=False, label=None),
        )
        result = link.transmit(6, slot_index=0, label=3)
        assert not result.delivery.delivered
        assert link.messages_sent == 1
        assert link.messages_dropped == 1
        assert link.messages_delivered == 0
        assert link.energy_spent_j == pytest.approx(link.message_cost_j(6))
        assert link.delivery_rate == 0.0

    def test_corrupted_message_counted(self):
        link = CommLink(
            RadioProfile.ble(),
            delivery_hook=lambda slot, label: Delivery(
                delivered=True, label=(label + 1) % 5, corrupted=True
            ),
        )
        result = link.transmit(6, slot_index=0, label=3)
        assert result.delivery.corrupted and result.delivery.label == 4
        assert link.messages_corrupted == 1
        assert link.messages_delivered == 1

    def test_send_bypasses_hook(self):
        link = CommLink(
            RadioProfile.ble(),
            delivery_hook=lambda slot, label: Delivery(delivered=False, label=None),
        )
        link.send(6)
        assert link.messages_delivered == 1
        assert link.messages_dropped == 0


class TestHostFaultSurface:
    def test_quiet_slots_and_last_heard(self):
        host = HostDevice(MajorityVote())
        assert host.last_heard_slot(0) is None
        assert host.quiet_slots(0, current_slot=4) == 5  # never heard
        host.receive(_outcome(0, label=1, slot=3))
        assert host.last_heard_slot(0) == 3
        assert host.quiet_slots(0, current_slot=7) == 4
        assert host.link_health([0, 1], current_slot=7) == {0: 4, 1: 8}

    def test_dropped_message_rejected(self):
        host = HostDevice(MajorityVote())
        with pytest.raises(SimulationError):
            host.receive(_outcome(0, label=1, slot=3, delivered=False))

    def test_corrupted_label_is_what_gets_stored(self):
        host = HostDevice(MajorityVote())
        host.receive(_outcome(0, label=1, slot=3, reported=4))
        assert host.remembered_for(0).label == 4

    def test_restart_wipes_memory_keeps_counters(self):
        host = HostDevice(MajorityVote())
        host.receive(_outcome(0, label=1, slot=3))
        host.restart()
        assert host.remembered_votes() == []
        assert host.last_heard_slot(0) is None
        assert host.messages_received == 1  # bookkeeping survives
        assert host.restarts == 1
        # A restarted host has no opinion until someone reports again.
        assert host.classify(4) is None

    def test_staleness_half_life_validated(self):
        with pytest.raises(SimulationError):
            HostDevice(MajorityVote(), staleness_half_life_slots=0)

    def test_stale_votes_fade_under_half_life(self):
        # Two ancient votes for label 0 vs one fresh vote for label 1:
        # plain majority recalls label 0, staleness weighting lets the
        # fresh minority win.
        def fill(host):
            host.receive(_outcome(1, label=0, slot=0))
            host.receive(_outcome(2, label=0, slot=0))
            host.receive(_outcome(3, label=1, slot=20))

        plain = HostDevice(MajorityVote())
        fill(plain)
        assert plain.classify(20) == 0

        fading = HostDevice(MajorityVote(), staleness_half_life_slots=2)
        fill(fading)
        assert fading.classify(20) == 1

    def test_fresh_votes_keep_full_weight(self):
        host = HostDevice(MajorityVote(), staleness_half_life_slots=2)
        host.receive(_outcome(1, label=0, slot=5))
        host.receive(_outcome(2, label=0, slot=5))
        host.receive(_outcome(3, label=1, slot=5))
        assert host.classify(5) == 0  # same-slot votes are not discounted


class TestSchedulerRetryBackoff:
    def _scheduler(self, **kwargs):
        base = ExtendedRoundRobin([0, 1, 2])  # compute slot every slot
        table = RankTable({0: [0, 1, 2], 1: [1, 0, 2]})
        return ActivityAwareScheduler(
            base, table, cooldown_slots=0, **kwargs
        )

    def _context(self, responsive):
        return SchedulingContext(
            node_energy_j={0: 1.0, 1: 1.0, 2: 1.0},
            node_ready={0: True, 1: True, 2: True},
            anticipated_label=0,
            node_responsive=responsive,
        )

    def test_unresponsive_node_retried_then_rerouted(self):
        scheduler = self._scheduler(retry_budget=2, backoff_slots=4)
        context = self._context({0: False, 1: True, 2: True})
        # Two retries of the best-ranked node burn its budget...
        assert scheduler.active_nodes(0, context) == [0]
        assert scheduler.active_nodes(1, context) == [0]
        # ...then the ranking falls through to the next-best sensor for
        # the whole backoff window (slots 2..4, backoff_slots=4 from
        # slot 1).
        for slot in range(2, 5):
            assert scheduler.active_nodes(slot, context) == [1]
        # Backoff expires: the best sensor gets another chance.
        assert scheduler.active_nodes(5, context) == [0]

    def test_completion_clears_backoff_immediately(self):
        scheduler = self._scheduler(retry_budget=1, backoff_slots=50)
        context = self._context({0: False, 1: True, 2: True})
        assert scheduler.active_nodes(0, context) == [0]
        assert scheduler.active_nodes(1, context) == [1]  # backing off
        scheduler.observe(1, [_outcome(0, label=0, slot=1)], final_label=0)
        assert scheduler.active_nodes(2, self._context({0: True})) == [0]

    def test_responsive_node_never_penalized(self):
        scheduler = self._scheduler(retry_budget=1, backoff_slots=50)
        context = self._context({0: True, 1: True, 2: True})
        for slot in range(6):
            assert scheduler.active_nodes(slot, context) == [0]

    def test_default_context_is_responsive(self):
        context = SchedulingContext(
            node_energy_j={0: 1.0}, node_ready={0: True}, anticipated_label=None
        )
        assert context.is_responsive(0)
        assert context.is_responsive(99)

    def test_budget_and_backoff_validated(self):
        with pytest.raises(Exception):
            self._scheduler(retry_budget=0)
        with pytest.raises(Exception):
            self._scheduler(backoff_slots=0)
