"""Tests for repro.datasets.subjects and .noise."""

import numpy as np
import pytest

from repro.datasets.noise import add_gaussian_noise_snr
from repro.datasets.profiles import N_CHANNELS
from repro.datasets.subjects import SubjectProfile, sample_subjects
from repro.errors import DatasetError
from repro.utils.stats import signal_power, snr_db


class TestSubjectProfile:
    def test_canonical_is_identity(self):
        subject = SubjectProfile.canonical()
        assert subject.frequency_scale == 1.0
        assert subject.amplitude_scale == 1.0
        assert subject.channel_gains == (1.0,) * N_CHANNELS

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(frequency_scale=0),
            dict(amplitude_scale=-1),
            dict(channel_gains=(1.0,) * 3),
            dict(channel_gains=(0.0,) * N_CHANNELS),
            dict(noise_factor=-0.1),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(DatasetError):
            SubjectProfile(subject_id=0, **kwargs)


class TestSampleSubjects:
    def test_count_and_ids(self):
        subjects = sample_subjects(4, seed=0, first_id=10)
        assert [s.subject_id for s in subjects] == [10, 11, 12, 13]

    def test_reproducible(self):
        a = sample_subjects(3, seed=5)
        b = sample_subjects(3, seed=5)
        assert a == b

    def test_zero_variability_is_nearly_canonical(self):
        (subject,) = sample_subjects(1, seed=1, variability=0.0)
        assert subject.frequency_scale == pytest.approx(1.0)
        assert subject.amplitude_scale == pytest.approx(1.0)

    def test_higher_variability_strays_further(self):
        mild = sample_subjects(40, seed=2, variability=0.5)
        wild = sample_subjects(40, seed=2, variability=3.0)
        spread = lambda subs: np.std([s.amplitude_scale for s in subs])
        assert spread(wild) > spread(mild)

    def test_negative_count_rejected(self):
        with pytest.raises(DatasetError):
            sample_subjects(-1, seed=0)

    def test_empty(self):
        assert sample_subjects(0, seed=0) == []


class TestAddGaussianNoiseSnr:
    def test_snr_is_respected(self):
        rng_signal = np.random.default_rng(0).normal(0, 1, size=(4, 6, 256))
        noisy = add_gaussian_noise_snr(rng_signal, snr_db=20.0, seed=1)
        noise = noisy - rng_signal
        assert snr_db(rng_signal, noise) == pytest.approx(20.0, abs=0.5)

    def test_lower_snr_means_more_noise(self):
        signal = np.ones((6, 128))
        hi = add_gaussian_noise_snr(signal, 30.0, seed=2)
        lo = add_gaussian_noise_snr(signal, 5.0, seed=2)
        assert signal_power(lo - signal) > signal_power(hi - signal)

    def test_input_unchanged(self):
        signal = np.ones((3, 8))
        add_gaussian_noise_snr(signal, 10.0, seed=0)
        np.testing.assert_array_equal(signal, np.ones((3, 8)))

    def test_dtype_preserved(self):
        signal = np.ones((3, 8), dtype=np.float32)
        assert add_gaussian_noise_snr(signal, 10.0, seed=0).dtype == np.float32

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            add_gaussian_noise_snr(np.array([]), 10.0)

    def test_nan_snr_rejected(self):
        with pytest.raises(DatasetError):
            add_gaussian_noise_snr(np.ones(4), float("nan"))
