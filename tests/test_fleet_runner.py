"""Fleet execution: identity, shard invariance, resume, CLI, fallbacks."""

from __future__ import annotations

import json

import pytest

from repro.core.policies import aas_policy, origin_policy, rr_policy
from repro.errors import ConfigurationError, FleetError
from repro.fleet import CohortSpec, FleetRunner
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.runner import (
    _MaterialMemo,
    default_metric_bounds,
    shard_aggregate,
    shard_cell,
    simulate_users,
    user_metrics,
)
from repro.obs import Observability
from repro.obs.summarize import _kernel_line


@pytest.fixture(scope="module")
def fleet_spec(tiny_experiment):
    return CohortSpec(size=12, seed=9, base=tiny_experiment.config, n_timelines=2)


def _bounds(experiment, spec):
    return default_metric_bounds(
        spec.base.n_windows, len(experiment.dataset.spec.locations)
    )


class TestSimulateUsers:
    def test_mega_batch_equals_per_user_runs(self, tiny_experiment, fleet_spec):
        policies = [origin_policy(12), aas_policy(6)]
        users = list(fleet_spec.users(0, 4))
        memo = _MaterialMemo(tiny_experiment)
        mega = simulate_users(
            tiny_experiment, users, policies, mega=True, materials=memo
        )
        solo = simulate_users(
            tiny_experiment, users, policies, mega=False, materials=memo
        )
        assert mega == solo

    def test_per_user_config_actually_applied(self, tiny_experiment, fleet_spec):
        # Two users on the same timeline but different energy knobs must
        # not collapse to the same result row.
        policies = [rr_policy(3)]
        users = [fleet_spec.user(0), fleet_spec.user(2)]  # same timeline slot
        assert users[0].seed == users[1].seed
        assert users[0].config != users[1].config
        rows = simulate_users(tiny_experiment, users, policies)
        harvested = [
            sum(s.harvested_j for s in row[0].node_stats.values()) for row in rows
        ]
        assert harvested[0] != harvested[1]

    def test_empty_users(self, tiny_experiment):
        assert simulate_users(tiny_experiment, [], [origin_policy(12)]) == []


class TestShardInvariance:
    def test_1_3_n_shards_byte_identical(self, tiny_experiment, fleet_spec):
        policies = [origin_policy(12)]

        def total_for(sizes):
            total = FleetAggregate(bounds=_bounds(tiny_experiment, fleet_spec))
            lo = 0
            for size in sizes:
                shard = shard_aggregate(
                    tiny_experiment, fleet_spec, policies, lo, lo + size
                )
                total.merge(FleetAggregate.from_dict(shard.to_dict()))
                lo += size
            return total

        one = total_for([12])
        three = total_for([4, 4, 4])
        many = total_for([1] * 12)
        assert one.stats_json() == three.stats_json() == many.stats_json()
        assert one.users == 12

    def test_metrics_match_direct_runs(self, tiny_experiment, fleet_spec):
        policies = [origin_policy(12)]
        aggregate = shard_aggregate(tiny_experiment, fleet_spec, policies, 0, 3)
        rows = simulate_users(
            tiny_experiment, list(fleet_spec.users(0, 3)), policies
        )
        dist = aggregate.distribution(policies[0].name, "event_accuracy")
        expected = sorted(row[0].event_accuracy for row in rows)
        assert dist.count == 3
        assert dist.min_value == expected[0]
        assert dist.max_value == expected[-1]
        assert "accuracy_drop" in aggregate.policies[policies[0].name]


class TestFleetRunner:
    def test_run_covers_cohort(self, tiny_experiment, fleet_spec):
        runner = FleetRunner(tiny_experiment, fleet_spec, shard_size=5)
        result = runner.run()
        assert result.users == 12
        assert result.users_simulated == 12
        assert result.shards == 3
        assert result.lost_users == 0
        assert result.users_per_second > 0
        assert "users/s" in result.summary()

    def test_sequential_equals_parallel(self, tiny_experiment, fleet_spec):
        runner = FleetRunner(tiny_experiment, fleet_spec, shard_size=4)
        seq = runner.run()
        par = runner.run(workers=2)
        assert seq.aggregate.stats_json() == par.aggregate.stats_json()

    def test_journal_resume_after_interrupt(
        self, tiny_experiment, fleet_spec, tmp_path
    ):
        runner = FleetRunner(tiny_experiment, fleet_spec, shard_size=4)
        path = str(tmp_path / "fleet.journal")
        baseline = runner.run()
        first = runner.run(journal=path)
        assert first.journal_hits == 0
        # Interrupt: drop everything after the header and first cell, as
        # a crash mid-run would leave it.
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:2])
        resumed = runner.run(journal=path)
        assert resumed.journal_hits == 1
        assert resumed.users_simulated == 8
        assert resumed.aggregate.stats_json() == baseline.aggregate.stats_json()
        # Fully journaled: nothing left to simulate.
        replay = runner.run(journal=path)
        assert replay.journal_hits == 3
        assert replay.users_simulated == 0
        assert replay.aggregate.stats_json() == baseline.aggregate.stats_json()

    def test_journal_rejects_other_cohort(
        self, tiny_experiment, fleet_spec, tmp_path
    ):
        path = str(tmp_path / "fleet.journal")
        FleetRunner(tiny_experiment, fleet_spec, shard_size=4).run(journal=path)
        other = CohortSpec(
            size=12, seed=99, base=tiny_experiment.config, n_timelines=2
        )
        with pytest.raises(FleetError):
            FleetRunner(tiny_experiment, other, shard_size=4).run(journal=path)

    def test_obs_counters(self, tiny_experiment, fleet_spec):
        obs = Observability()
        runner = FleetRunner(tiny_experiment, fleet_spec, shard_size=6)
        runner.run(obs=obs)
        exported = obs.metrics.to_dict()
        assert exported["counters"]["fleet.users"] == 12
        assert exported["counters"]["fleet.shards"] == 2
        assert exported["timers"]["fleet.run"]["calls"] == 1

    def test_validation(self, tiny_experiment, fleet_spec):
        with pytest.raises(ConfigurationError):
            FleetRunner(tiny_experiment, fleet_spec, shard_size=0)
        with pytest.raises(ConfigurationError):
            FleetRunner(tiny_experiment, fleet_spec, policies=[])
        with pytest.raises(ConfigurationError):
            FleetRunner(tiny_experiment, fleet_spec).run(on_failure="ignore")

    def test_shard_cells_and_layout(self, tiny_experiment, fleet_spec):
        runner = FleetRunner(tiny_experiment, fleet_spec, shard_size=5)
        assert runner.shards() == [(0, 5), (5, 10), (10, 12)]
        assert shard_cell(0, 5) == "shard:0-5"
        assert runner.fingerprint() != FleetRunner(
            tiny_experiment, fleet_spec, shard_size=4
        ).fingerprint()


class TestUserMetrics:
    def test_fields_and_reference_drop(self, tiny_experiment):
        result = tiny_experiment.run(origin_policy(12), seed=5)
        metrics = user_metrics(result, reference=result)
        assert metrics["event_accuracy"] == result.event_accuracy
        assert metrics["completions"] == float(result.total_completions)
        assert metrics["accuracy_drop"] == 0.0
        without = user_metrics(result)
        assert "accuracy_drop" not in without

    def test_bounds_cover_metrics(self):
        bounds = default_metric_bounds(60, 3)
        for name in (
            "event_accuracy",
            "overall_accuracy",
            "completion_rate",
            "completions",
            "harvested_j",
            "consumed_j",
            "comm_energy_j",
            "accuracy_drop",
        ):
            lo, hi = bounds[name]
            assert lo < hi


class TestKernelFallbackObservability:
    def test_fallback_counter_tagged_with_reason(self, tiny_experiment):
        obs = Observability()
        # A window transform forces the scalar path even before tracing.
        tiny_experiment.run(
            rr_policy(3), seed=1, window_transform=lambda w: w, obs=obs
        )
        counters = obs.metrics.to_dict()["counters"]
        assert counters["kernel.fallback"] == 1
        assert counters["kernel.fallback.window_transform"] == 1

    def test_tracing_reason_when_only_obs_blocks(self, tiny_experiment):
        from repro.sim.predcache import PredictionCache

        obs = Observability()
        material = PredictionCache(tiny_experiment).material(1)
        tiny_experiment.run(rr_policy(3), seed=1, material=material, obs=obs)
        counters = obs.metrics.to_dict()["counters"]
        assert counters["kernel.fallback.tracing"] == 1

    def test_summarize_renders_kernel_line(self):
        exported = {
            "counters": {
                "kernel.fallback": 3,
                "kernel.fallback.tracing": 2,
                "kernel.fallback.fault_plan": 1,
            }
        }
        line = _kernel_line(exported)
        assert line == "kernel: 3 scalar fallback(s) (1 fault_plan, 2 tracing)"
        assert _kernel_line({"counters": {}}) is None


class TestCli:
    def test_summarize_round_trip(self, tiny_experiment, fleet_spec, tmp_path, capsys):
        from repro.fleet.__main__ import main

        result = FleetRunner(tiny_experiment, fleet_spec, shard_size=6).run()
        payload = {
            "kind": "fleet-run",
            "schema_version": 1,
            "users": result.users,
            "shards": result.shards,
            "elapsed_s": round(result.elapsed_s, 3),
            "users_per_second": round(result.users_per_second, 1),
            "aggregate": result.aggregate.to_dict(),
        }
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(payload))
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "users/s" in out and "event_accuracy" in out

    def test_summarize_rejects_foreign_payload(self, tmp_path):
        from repro.errors import ReproError
        from repro.fleet.__main__ import main

        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ReproError):
            main(["summarize", str(path)])

    def test_run_parser_surface(self):
        from repro.fleet.__main__ import _build_parser

        args = _build_parser().parse_args(
            ["run", "--users", "100", "--workers", "2", "--shard-size", "32"]
        )
        assert args.users == 100 and args.workers == 2
        assert args.policy == "origin" and args.dataset == "mhealth"
