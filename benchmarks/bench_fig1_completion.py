"""Fig. 1 — inference completion on harvested energy, naive vs RR3.

Paper: (a) all sensors attempt every window -> ~1% all succeed, ~9% at
least one, ~90% fail; (b) plain RR3 -> 28% succeed / 72% fail.
"""

import numpy as np
import pytest

from benchmarks.conftest import N_WINDOWS
from repro.reporting import render_fig1_completion
from repro.sim.completion import CompletionExperiment


@pytest.fixture(scope="module")
def study(mhealth_exp):
    return CompletionExperiment(mhealth_exp).run(n_windows=N_WINDOWS, seed=21)


def test_fig1_render(study, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_result("fig1_completion", render_fig1_completion(study))


def test_fig1a_naive_completion(study, benchmark, mhealth_exp):
    """Naive all-on: the vast majority of windows see no completion."""
    naive = study.naive
    assert naive.failed_fraction > 0.80, "naive scheduling should mostly fail"
    assert naive.any_fraction < 0.20
    assert naive.all_fraction < 0.08, "all-three-succeed must be rare"
    # Correlated office bursts make 'all succeed' disproportionately
    # likely relative to independence.
    independent = naive.any_fraction**3
    assert naive.all_fraction >= independent

    benchmark.pedantic(
        lambda: CompletionExperiment(mhealth_exp).run(n_windows=100, seed=5),
        rounds=1,
        iterations=1,
    )


def test_fig1b_round_robin_completion(study, benchmark):
    """Plain RR3 completes a minority of inferences (paper: 28%)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rr = study.round_robin
    assert 0.15 < rr.any_fraction < 0.45
    assert rr.any_fraction > study.naive.any_fraction, (
        "waiting to compute must beat always trying and failing"
    )
