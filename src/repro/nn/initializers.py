"""Weight initializers.

Small deterministic wrappers around the usual schemes; every layer takes
a generator so whole models are reproducible from one seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ModelError


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int) -> np.ndarray:
    """He-normal initialization, suited to ReLU networks."""
    if fan_in <= 0:
        raise ModelError(f"fan_in must be positive, got {fan_in}")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float64)


def glorot_uniform(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ModelError(f"fan_in/fan_out must be positive, got {fan_in}/{fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases, batch-norm shifts)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialization (batch-norm scales)."""
    return np.ones(shape, dtype=np.float64)
