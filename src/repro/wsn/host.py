"""Battery-backed host device (the user's phone).

The host receives tiny result messages from the nodes, remembers each
node's *most recent* classification (the paper's recall mechanism,
§III-B), and produces the final per-window classification by applying a
pluggable voting function — naive majority for AASR, confidence-weighted
majority for Origin.  The host is mains/battery powered, so its own
energy is not modelled; its compute is deliberately limited to lookups
and a vote, matching the paper's "minimal overhead on the host device".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.obs.observer import NULL_OBS, Observability
from repro.wsn.node import InferenceOutcome


@dataclass(frozen=True)
class ReceivedVote:
    """One node's most recent classification, as the host remembers it.

    ``weight`` scales the vote's influence in the ensemble (1.0 = full
    strength); staleness-aware down-weighting lowers it for votes from
    nodes the host has not heard from in a while.
    """

    node_id: int
    label: int
    confidence: float
    probabilities: Optional[np.ndarray]
    received_slot: int
    started_slot: int
    weight: float = 1.0

    def age(self, current_slot: int) -> int:
        """Slots since the classified window was sensed."""
        return current_slot - self.started_slot


VoteFunction = Callable[[Sequence[ReceivedVote], int], Optional[int]]


class HostDevice:
    """Aggregation endpoint with recall memory.

    Parameters
    ----------
    vote:
        ``vote(votes, current_slot) -> label or None``.  Receives every
        remembered vote (fresh and recalled); ``None`` means "no
        decision yet" (before any node has reported).
    max_recall_age_slots:
        Drop remembered votes older than this (``None`` = never expire).
    staleness_half_life_slots:
        When set, a recalled vote's weight halves every this-many slots
        of age, so a quiet (browned-out, dead, or shadowed) node's stale
        opinion fades gracefully instead of voting at full strength
        forever.  ``None`` (the default) keeps the paper's behaviour:
        every remembered vote counts fully until it expires.
    """

    def __init__(
        self,
        vote: VoteFunction,
        *,
        max_recall_age_slots: Optional[int] = None,
        staleness_half_life_slots: Optional[int] = None,
    ) -> None:
        if not callable(vote):
            raise SimulationError("vote must be callable")
        if max_recall_age_slots is not None and max_recall_age_slots < 1:
            raise SimulationError("max_recall_age_slots must be >= 1 or None")
        if staleness_half_life_slots is not None and staleness_half_life_slots < 1:
            raise SimulationError("staleness_half_life_slots must be >= 1 or None")
        self.vote = vote
        self.max_recall_age_slots = max_recall_age_slots
        self.staleness_half_life_slots = staleness_half_life_slots
        #: Observability surface (installed via :meth:`attach_obs`).
        self.obs: Observability = NULL_OBS
        self._recall_hist = None
        self._memory: Dict[int, ReceivedVote] = {}
        self._last_heard: Dict[int, int] = {}
        self._messages_received = 0
        self._decisions = 0
        self._restarts = 0

    def attach_obs(self, obs: Observability) -> None:
        """Install an observability bundle (resolves the hot histogram once)."""
        self.obs = obs
        self._recall_hist = (
            obs.metrics.histogram("host.recall_age_slots") if obs.enabled else None
        )

    # ------------------------------------------------------------------

    @property
    def messages_received(self) -> int:
        """Result messages received so far."""
        return self._messages_received

    @property
    def decisions_made(self) -> int:
        """Final classifications produced so far."""
        return self._decisions

    def remembered_votes(self) -> List[ReceivedVote]:
        """Current recall memory, one entry per reporting node."""
        return list(self._memory.values())

    def remembered_for(self, node_id: int) -> Optional[ReceivedVote]:
        """The remembered vote of one node (None if never reported)."""
        return self._memory.get(node_id)

    # ------------------------------------------------------------------
    # link health
    # ------------------------------------------------------------------

    @property
    def restarts(self) -> int:
        """Times the host rebooted (losing its recall store)."""
        return self._restarts

    def last_heard_slot(self, node_id: int) -> Optional[int]:
        """Slot of the node's last received message (None = never)."""
        return self._last_heard.get(node_id)

    def quiet_slots(self, node_id: int, current_slot: int) -> int:
        """Slots since the host last heard from ``node_id``.

        A node that has never reported counts as quiet since slot 0.
        """
        last = self._last_heard.get(node_id)
        return current_slot + 1 if last is None else current_slot - last

    def link_health(self, node_ids: Sequence[int], current_slot: int) -> Dict[int, int]:
        """Quiet time per node — the host's view of each link."""
        return {
            node_id: self.quiet_slots(node_id, current_slot) for node_id in node_ids
        }

    # ------------------------------------------------------------------

    def receive(self, outcome: InferenceOutcome) -> None:
        """Ingest a completed inference result from a node.

        The stored label is :attr:`InferenceOutcome.delivered_label` —
        what actually arrived over the link, which differs from the
        node's prediction when the payload was corrupted in transit.
        """
        if not outcome.completed:
            raise SimulationError("host only receives completed inferences")
        if not outcome.delivered:
            raise SimulationError("host cannot receive a dropped message")
        self._messages_received += 1
        self._last_heard[outcome.node_id] = outcome.slot_index
        self._memory[outcome.node_id] = ReceivedVote(
            node_id=outcome.node_id,
            label=outcome.delivered_label,
            confidence=outcome.confidence if outcome.confidence is not None else 0.0,
            probabilities=outcome.probabilities,
            received_slot=outcome.slot_index,
            started_slot=outcome.started_slot,
        )

    def _staleness_weighted(
        self, votes: List[ReceivedVote], current_slot: int
    ) -> List[ReceivedVote]:
        half_life = self.staleness_half_life_slots
        if half_life is None:
            return votes
        return [
            vote
            if vote.age(current_slot) <= 0
            else replace(
                vote, weight=vote.weight * 0.5 ** (vote.age(current_slot) / half_life)
            )
            for vote in votes
        ]

    def classify(self, current_slot: int) -> Optional[int]:
        """Final classification for the current window (or None)."""
        votes = self.remembered_votes()
        if self.max_recall_age_slots is not None:
            votes = [
                vote for vote in votes if vote.age(current_slot) <= self.max_recall_age_slots
            ]
        votes = self._staleness_weighted(votes, current_slot)
        obs = self.obs
        ages = None
        if self._recall_hist is not None:
            # Recall staleness: the age of every vote that participates
            # in this slot's ensemble (the paper's stale-recall risk).
            observe = self._recall_hist.observe
            ages = [vote.age(current_slot) for vote in votes]
            for age in ages:
                observe(age)
        if not votes:
            return None
        label = self.vote(votes, current_slot)
        if label is not None:
            self._decisions += 1
        if obs.tracer.enabled and label is not None:
            obs.tracer.append(
                "vote.cast",
                current_slot,
                None,
                {
                    "label": label,
                    "n_votes": len(votes),
                    "max_age": (
                        max(ages)
                        if ages
                        else max(vote.age(current_slot) for vote in votes)
                    ),
                },
            )
        return label

    def restart(self) -> None:
        """Reboot: the recall store and link history are wiped.

        Cumulative counters survive — they are simulation bookkeeping,
        not host RAM.
        """
        self._memory.clear()
        self._last_heard.clear()
        self._restarts += 1

    def reset(self) -> None:
        """Forget everything (new user / new run)."""
        self._memory.clear()
        self._last_heard.clear()
        self._messages_received = 0
        self._decisions = 0
        self._restarts = 0
