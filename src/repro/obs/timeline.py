"""Streaming time-series metrics: live snapshots of a running job.

A :class:`TimeSeriesRecorder` turns the end-of-run
:class:`~repro.obs.metrics.MetricsRegistry` snapshot into a *stream*:
on a wall-clock cadence (and at forced lifecycle points) it captures the
registry's cumulative counters, the per-interval deltas and the current
gauges, keeps the most recent samples in a bounded ring buffer, and
appends each sample as a schema-versioned JSONL record to
``timeseries.jsonl`` — the file ``python -m repro.obs.watch`` tails to
render a live dashboard of an in-flight fleet run or sweep.

The stream reuses the trace file envelope: the first line is the
standard :data:`~repro.obs.schema.HEADER_KIND` header stamped with
:data:`~repro.obs.schema.TRACE_SCHEMA_VERSION`, and every record is a
registered event kind (``timeseries.sample`` / ``timeseries.mark``,
schema v2).  ``read_timeseries`` is therefore tolerant of exactly the
failure a live stream has: a torn final line (the writer died or is
mid-append) is skipped, never fatal.

Emission points are guarded the same way as every other ``repro.obs``
site: callers hold an :class:`~repro.obs.observer.Observability` whose
``timeseries`` attribute is ``None`` by default, so traced-off runs do
no extra work and stay byte-identical.  Recording never reaches into
the simulation — the recorder only *reads* the registry — so a recorded
run's results are byte-identical to an unrecorded one by construction
(asserted by the test suite and the ``bench_perf_sweep --smoke``
overhead gate, which runs the traced leg with a recorder attached).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observability
from repro.obs.schema import (
    HEADER_KIND,
    SCHEMA_CHANGELOG,
    TRACE_SCHEMA_VERSION,
    validate_event,
)

__all__ = [
    "TimeSeriesRecorder",
    "TimeSeriesTail",
    "attach_recorder",
    "read_timeseries",
    "SAMPLE_KIND",
    "MARK_KIND",
]

SAMPLE_KIND = "timeseries.sample"
MARK_KIND = "timeseries.mark"

#: Default minimum seconds between periodic samples.
DEFAULT_INTERVAL_S = 1.0

#: Default ring-buffer capacity (samples retained in memory for rate
#: computations and programmatic access; the file keeps everything).
DEFAULT_WINDOW = 256


class TimeSeriesRecorder:
    """Cadenced metrics snapshots, ring-buffered and streamed to JSONL.

    Parameters
    ----------
    metrics:
        The registry to snapshot.  The recorder only reads it.
    path:
        JSONL destination.  The header is written immediately so a
        watcher can attach before the first sample lands.
    interval_s:
        Minimum seconds between periodic samples; :meth:`sample` calls
        inside the interval are no-ops (cheap: one clock read and a
        compare), so emission points can call it as often as they like.
    window:
        Ring-buffer capacity — how many recent samples stay available
        via :attr:`recent` after they have been flushed to disk.
    flush_every:
        Samples per disk flush.  The default (1) makes every sample
        immediately visible to a tailing watcher; larger values batch
        writes for very hot cadences.
    meta:
        Extra header metadata (job name, cohort size, ...).
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        path: str,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        window: int = DEFAULT_WINDOW,
        flush_every: int = 1,
        meta: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s < 0:
            raise ObservabilityError(f"interval_s must be >= 0, got {interval_s}")
        if window < 1:
            raise ObservabilityError(f"window must be >= 1, got {window}")
        if flush_every < 1:
            raise ObservabilityError(f"flush_every must be >= 1, got {flush_every}")
        self.metrics = metrics
        self.path = os.fspath(path)
        self.interval_s = float(interval_s)
        self.flush_every = int(flush_every)
        self._clock = clock
        self._start = clock()
        self._last_sample_t: Optional[float] = None
        self._last_counters: Dict[str, float] = {}
        self._seq = 0
        self._unflushed = 0
        self.samples_written = 0
        self.marks_written = 0
        #: Ring buffer of the most recent sample payloads (marks excluded).
        self.recent: Deque[Dict[str, Any]] = deque(maxlen=int(window))
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._handle: Optional[Any] = open(self.path, "w")
        self._handle.write(
            json.dumps(
                {
                    "kind": HEADER_KIND,
                    "schema_version": TRACE_SCHEMA_VERSION,
                    "meta": dict(meta or {}),
                }
            )
            + "\n"
        )
        self._handle.flush()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether the stream has been closed (no further records)."""
        return self._handle is None

    def due(self) -> bool:
        """Whether enough wall time has passed for a periodic sample."""
        if self._last_sample_t is None:
            return True
        return self._clock() - self._last_sample_t >= self.interval_s

    def sample(self, *, force: bool = False) -> bool:
        """Snapshot the registry if the cadence allows (or ``force``).

        Returns whether a sample was emitted.  The payload carries
        ``t_s`` (seconds since the recorder started), ``unix_s`` (wall
        clock, so watchers can age the stream), the full cumulative
        ``counters`` dict, the per-interval ``delta`` (changed counters
        only) and the current ``gauges``.
        """
        if self._handle is None:
            return False
        now = self._clock()
        if not force and self._last_sample_t is not None:
            if now - self._last_sample_t < self.interval_s:
                return False
        exported = self.metrics.to_dict()
        counters = exported["counters"]
        delta = {
            name: value - self._last_counters.get(name, 0.0)
            for name, value in counters.items()
            if value != self._last_counters.get(name, 0.0)
        }
        payload: Dict[str, Any] = {
            "t_s": round(now - self._start, 6),
            "unix_s": round(time.time(), 3),
            "counters": counters,
            "delta": delta,
            "gauges": exported["gauges"],
        }
        self._last_sample_t = now
        self._last_counters = dict(counters)
        self.recent.append(payload)
        self._write(SAMPLE_KIND, payload)
        self.samples_written += 1
        return True

    def mark(self, label: str, **fields: Any) -> None:
        """Emit a labelled lifecycle point (shard done, retry, ...).

        Marks bypass the cadence — they are rare and anchor the sample
        stream to job structure.
        """
        if self._handle is None:
            return
        payload: Dict[str, Any] = {
            "t_s": round(self._clock() - self._start, 6),
            "unix_s": round(time.time(), 3),
            "label": str(label),
        }
        payload.update(fields)
        self._write(MARK_KIND, payload)
        self.marks_written += 1

    def _write(self, kind: str, payload: Dict[str, Any]) -> None:
        validate_event(kind, payload)
        record = {
            "seq": self._seq,
            "kind": kind,
            "slot": None,
            "node": None,
            "payload": payload,
        }
        self._seq += 1
        self._handle.write(json.dumps(record) + "\n")
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._handle.flush()
            self._unflushed = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Push any buffered records to disk."""
        if self._handle is not None:
            self._handle.flush()
            self._unflushed = 0

    def close(self, *, final_sample: bool = True) -> None:
        """Emit one last (forced) sample, flush and release the file."""
        if self._handle is None:
            return
        if final_sample:
            self.sample(force=True)
        handle, self._handle = self._handle, None
        handle.flush()
        handle.close()

    def __enter__(self) -> "TimeSeriesRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # in-memory rates (the watcher computes these from the file)
    # ------------------------------------------------------------------

    def rate(self, counter: str, *, span: int = 0) -> float:
        """Per-second rate of one counter over the ring buffer.

        ``span`` limits the lookback to the most recent N samples
        (0 = the whole buffer).  0.0 when fewer than two samples exist
        or no time has passed.
        """
        samples = list(self.recent)
        if span:
            samples = samples[-span:]
        return _rate_from_samples(samples, counter)


def _rate_from_samples(samples: List[Dict[str, Any]], counter: str) -> float:
    """Per-second rate of ``counter`` across ordered sample payloads."""
    if len(samples) < 2:
        return 0.0
    first, last = samples[0], samples[-1]
    elapsed = float(last["t_s"]) - float(first["t_s"])
    if elapsed <= 0:
        return 0.0
    moved = float(last["counters"].get(counter, 0.0)) - float(
        first["counters"].get(counter, 0.0)
    )
    return moved / elapsed


def attach_recorder(
    obs: Observability, path: str, **kwargs: Any
) -> TimeSeriesRecorder:
    """Create a recorder over ``obs.metrics`` and install it on ``obs``.

    The standard way to arm a job for live watching::

        obs = Observability()
        recorder = attach_recorder(obs, run_dir / "timeseries.jsonl")
        runner.run(obs=obs, journal=run_dir / "fleet.journal")
        recorder.close()
    """
    if not obs.enabled:
        raise ObservabilityError(
            "cannot attach a TimeSeriesRecorder to a disabled Observability "
            "(NULL_OBS); build a live Observability() first"
        )
    recorder = TimeSeriesRecorder(obs.metrics, path, **kwargs)
    obs.timeseries = recorder
    return recorder


class TimeSeriesTail:
    """Incremental, offset-resumable reader over a (live) stream.

    A dashboard refreshing every couple of seconds over an hours-long
    stream must not re-read and re-parse the whole file per frame.  A
    tail remembers the byte offset of the last *complete* line it
    consumed and each :meth:`poll` reads only what the writer appended
    since — O(new bytes), not O(file) — accumulating the decoded
    payloads in :attr:`samples` / :attr:`marks`.

    Same tolerance contract as the batch reader: a torn final line
    (the writer is mid-append, or died there) is left unread until a
    newline lands behind it; interior lines that fail to parse are
    skipped.  A file that shrinks under the tail (truncated or swapped
    by a restarted writer) resets the tail to re-read from the top.
    The header is validated once, on its first complete appearance;
    a missing-on-disk file polls as "nothing yet", never raises.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        #: The stream header record (``None`` until it lands complete).
        self.header: Optional[Dict[str, Any]] = None
        #: All sample payloads consumed so far, in file order.
        self.samples: List[Dict[str, Any]] = []
        #: All mark payloads consumed so far, in file order.
        self.marks: List[Dict[str, Any]] = []
        self._offset = 0

    @property
    def offset(self) -> int:
        """Byte offset of the next unread complete line."""
        return self._offset

    def reset(self) -> None:
        """Forget everything and re-read from the top on the next poll."""
        self.header = None
        self.samples = []
        self.marks = []
        self._offset = 0

    def poll(self) -> int:
        """Consume newly appended complete records; returns how many.

        Raises :class:`ObservabilityError` if the stream's first
        complete line is not a valid header (wrong kind, unknown schema
        version) — the file is not a timeseries stream.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return 0  # not written yet (or gone): nothing to consume
        if size < self._offset:
            self.reset()  # truncated or swapped: start over
        if size <= self._offset:
            return 0
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read(size - self._offset)
        end = chunk.rfind(b"\n")
        if end < 0:
            return 0  # only a torn tail so far
        self._offset += end + 1
        consumed = 0
        for raw in chunk[: end + 1].split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue  # interior corruption: keep what parses
            if self.header is None:
                self._ingest_header(record)
                continue
            kind = record.get("kind")
            payload = record.get("payload") or {}
            if kind == SAMPLE_KIND:
                validate_event(kind, payload)
                self.samples.append(payload)
                consumed += 1
            elif kind == MARK_KIND:
                validate_event(kind, payload)
                self.marks.append(payload)
                consumed += 1
        return consumed

    def _ingest_header(self, record: Dict[str, Any]) -> None:
        if record.get("kind") != HEADER_KIND:
            raise ObservabilityError(
                f"{self.path} does not start with a {HEADER_KIND!r} record "
                f"(got {record.get('kind')!r})"
            )
        version = record.get("schema_version")
        if version not in SCHEMA_CHANGELOG:
            raise ObservabilityError(
                f"{self.path} uses trace schema version {version!r}, but "
                f"this build knows versions {sorted(SCHEMA_CHANGELOG)}"
            )
        self.header = record


def read_timeseries(
    path: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Read a timeseries stream: ``(header, samples, marks)``.

    One-shot form of :class:`TimeSeriesTail` (which live watchers keep
    across frames to avoid re-parsing): a torn final line is skipped
    silently and every complete record is schema-validated.  Raises
    :class:`ObservabilityError` for a missing header or an unknown
    schema version, and the usual :class:`OSError` for a missing file.
    """
    with open(path):
        pass  # surface the missing-file OSError the batch API promises
    tail = TimeSeriesTail(path)
    tail.poll()
    if tail.header is None:
        raise ObservabilityError(f"{path} is empty, not a timeseries stream")
    return tail.header, tail.samples, tail.marks
