"""Tests for repro.datasets.base, .windows and the dataset factories."""

import numpy as np
import pytest

from repro.datasets.activities import Activity
from repro.datasets.base import DatasetSpec, LabeledWindows
from repro.datasets.body import BodyLocation
from repro.datasets.mhealth import MHEALTH_ACTIVITIES, make_mhealth, mhealth_spec
from repro.datasets.pamap2 import PAMAP2_ACTIVITIES, make_pamap2, pamap2_spec
from repro.datasets.profiles import mhealth_signatures
from repro.datasets.windows import (
    slice_windows,
    window_count,
    window_index_at,
    window_start_times,
)
from repro.errors import DatasetError


class TestDatasetSpec:
    def test_mhealth_spec(self):
        spec = mhealth_spec()
        assert spec.n_classes == 6
        assert spec.window_duration_s == pytest.approx(2.56)

    def test_pamap2_spec(self):
        spec = pamap2_spec()
        assert spec.n_classes == 5
        assert Activity.JOGGING not in spec.activities

    def test_label_roundtrip(self):
        spec = mhealth_spec()
        for label, activity in enumerate(spec.activities):
            assert spec.label_of(activity) == label
            assert spec.activity_of(label) is activity

    def test_unknown_activity(self):
        with pytest.raises(DatasetError):
            pamap2_spec().label_of(Activity.JOGGING)

    def test_label_out_of_range(self):
        with pytest.raises(DatasetError):
            mhealth_spec().activity_of(6)

    def test_duplicate_activities_rejected(self):
        with pytest.raises(DatasetError):
            DatasetSpec(
                name="bad",
                activities=(Activity.WALKING, Activity.WALKING),
                signature_factory=mhealth_signatures,
            )


class TestLabeledWindows:
    @pytest.fixture
    def windows(self):
        return LabeledWindows(
            X=np.arange(24, dtype=np.float32).reshape(4, 2, 3),
            y=np.array([0, 1, 0, 2]),
        )

    def test_len(self, windows):
        assert len(windows) == 4

    def test_shuffled_preserves_pairs(self, windows):
        shuffled = windows.shuffled(seed=0)
        for row, label in zip(shuffled.X, shuffled.y):
            original = np.where((windows.X == row).all(axis=(1, 2)))[0]
            assert windows.y[original[0]] == label

    def test_of_class(self, windows):
        zeros = windows.of_class(0)
        assert len(zeros) == 2
        assert set(zeros.y) == {0}

    def test_class_counts(self, windows):
        np.testing.assert_array_equal(windows.class_counts(3), [2, 1, 1])

    def test_subset(self, windows):
        sub = windows.subset([0, 3])
        assert len(sub) == 2

    def test_concat(self, windows):
        merged = windows.concat(windows)
        assert len(merged) == 8

    def test_concat_shape_mismatch(self, windows):
        other = LabeledWindows(np.zeros((1, 2, 5), dtype=np.float32), np.array([0]))
        with pytest.raises(DatasetError):
            windows.concat(other)

    def test_bad_shapes_rejected(self):
        with pytest.raises(DatasetError):
            LabeledWindows(np.zeros((4, 3)), np.zeros(4))
        with pytest.raises(DatasetError):
            LabeledWindows(np.zeros((4, 2, 3)), np.zeros(3))


class TestFactories:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_mhealth(
            seed=0,
            train_windows_per_activity=6,
            val_windows_per_activity=4,
            test_windows_per_activity=4,
            n_train_subjects=2,
            n_eval_subjects=1,
        )

    def test_all_locations_present(self, dataset):
        for location in BodyLocation:
            assert location in dataset.train

    def test_balanced_classes(self, dataset):
        counts = dataset.train[BodyLocation.CHEST].class_counts(6)
        assert set(counts) == {6}

    def test_subjects_disjoint(self, dataset):
        train_ids = {s.subject_id for s in dataset.train_subjects}
        eval_ids = {s.subject_id for s in dataset.eval_subjects}
        assert not train_ids & eval_ids

    def test_split_lookup(self, dataset):
        assert dataset.split("val") is dataset.val
        with pytest.raises(DatasetError):
            dataset.split("nope")

    def test_reproducible(self):
        kwargs = dict(
            train_windows_per_activity=4,
            val_windows_per_activity=2,
            test_windows_per_activity=2,
            n_train_subjects=2,
            n_eval_subjects=1,
        )
        a = make_mhealth(seed=3, **kwargs)
        b = make_mhealth(seed=3, **kwargs)
        np.testing.assert_array_equal(
            a.train[BodyLocation.CHEST].X, b.train[BodyLocation.CHEST].X
        )

    def test_pamap2_has_five_classes(self):
        dataset = make_pamap2(
            seed=0,
            train_windows_per_activity=4,
            val_windows_per_activity=2,
            test_windows_per_activity=2,
            n_train_subjects=2,
            n_eval_subjects=1,
        )
        assert dataset.n_classes == 5

    def test_activity_constants(self):
        assert len(MHEALTH_ACTIVITIES) == 6
        assert len(PAMAP2_ACTIVITIES) == 5


class TestWindows:
    def test_window_count(self):
        assert window_count(10.0, 2.5) == 4
        assert window_count(9.9, 2.5) == 3

    def test_start_times(self):
        np.testing.assert_allclose(window_start_times(3, 2.0), [0.0, 2.0, 4.0])

    def test_index_at(self):
        assert window_index_at(5.1, 2.5) == 2

    def test_index_negative_time(self):
        with pytest.raises(ValueError):
            window_index_at(-1.0, 2.5)

    def test_slice_windows(self):
        samples = np.arange(20).reshape(2, 10)
        parts = slice_windows(samples, window_size=4, hop=3)
        assert len(parts) == 3
        np.testing.assert_array_equal(parts[1], samples[:, 3:7])

    def test_slice_requires_2d(self):
        with pytest.raises(ValueError):
            slice_windows(np.zeros(10), 4, 2)
