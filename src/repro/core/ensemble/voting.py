"""Voting functions over recalled per-sensor classifications.

Both voters match the :data:`repro.wsn.host.VoteFunction` signature, so
they plug directly into the host device.  ``MajorityVote`` is the naive
AASR aggregation; ``WeightedMajorityVote`` is Origin's, weighting each
vote by the confidence matrix and resolving ties through it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Sequence

from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.errors import ConfigurationError
from repro.wsn.host import ReceivedVote


class MajorityVote:
    """Unweighted majority over the recalled votes.

    Each vote counts :attr:`~repro.wsn.host.ReceivedVote.weight` (1.0
    unless the host applies staleness down-weighting), so "unweighted"
    means no confidence weighting — link-health fading still applies.
    Ties resolve toward the label backed by the most recently *sensed*
    evidence (the freshest vote among the tied labels) — the natural
    choice in a recall-based system where recency tracks the current
    activity.
    """

    name = "majority"

    def __call__(
        self, votes: Sequence[ReceivedVote], current_slot: int
    ) -> Optional[int]:
        if not votes:
            return None
        counts: Dict[int, float] = defaultdict(float)
        freshest: Dict[int, int] = defaultdict(lambda: -1)
        for vote in votes:
            counts[vote.label] += vote.weight
            freshest[vote.label] = max(freshest[vote.label], vote.started_slot)
        top = max(counts.values())
        tied = [label for label, count in counts.items() if abs(count - top) < 1e-12]
        if len(tied) == 1:
            return tied[0]
        return max(tied, key=lambda label: (freshest[label], -label))


class WeightedMajorityVote:
    """Confidence-weighted majority (Origin's ensemble).

    Each recalled vote carries the confidence score its sensor
    transmitted with the classification (the variance of that window's
    softmax); the host combines it with the confidence matrix entry for
    (sensor, class).  The matrix entry — seeded from validation and
    adapted online — acts as the sensor's per-class prior; the
    transmitted score says how sure this *particular* classification
    was.  ``blend`` balances the two (1.0 = transmitted score only,
    0.0 = matrix only).  Remaining exact ties resolve toward the
    freshest evidence.
    """

    name = "confidence-weighted"

    def __init__(self, confidence: ConfidenceMatrix, *, blend: float = 0.5) -> None:
        if not isinstance(confidence, ConfidenceMatrix):
            raise ConfigurationError("confidence must be a ConfidenceMatrix")
        if not 0.0 <= blend <= 1.0:
            raise ConfigurationError(f"blend must be in [0, 1], got {blend}")
        self.confidence = confidence
        self.blend = float(blend)

    def _weight(self, vote: ReceivedVote) -> float:
        prior = self.confidence.weight(vote.node_id, vote.label)
        blended = self.blend * vote.confidence + (1.0 - self.blend) * prior
        # The host's staleness down-weighting composes multiplicatively.
        return blended * vote.weight

    def __call__(
        self, votes: Sequence[ReceivedVote], current_slot: int
    ) -> Optional[int]:
        if not votes:
            return None
        scores: Dict[int, float] = defaultdict(float)
        freshest: Dict[int, int] = defaultdict(lambda: -1)
        for vote in votes:
            scores[vote.label] += self._weight(vote)
            freshest[vote.label] = max(freshest[vote.label], vote.started_slot)
        top = max(scores.values())
        tied = [label for label, score in scores.items() if abs(score - top) < 1e-12]
        if len(tied) == 1:
            return tied[0]
        return max(tied, key=lambda label: (freshest[label], -label))
