"""Run registry: an index of finished runs for cross-run comparison.

Every instrumented job (a fleet cohort, a sweep, a benchmark) can
register its outcome — run metadata, the final metrics snapshot, and a
pointer to its timeseries stream — under a registry directory::

    registry = RunRegistry(".repro-runs")
    registry.record(
        kind="fleet",
        metrics=obs.metrics,
        meta={"users": 10_000, "policies": 3},
        timeseries="runs/cohort-a/timeseries.jsonl",
    )

and the CLI answers the questions a registry exists for::

    python -m repro.obs.runs ls                 # what ran, when, headline
    python -m repro.obs.runs info  <run-id>     # one run, in full
    python -m repro.obs.runs diff  <a> <b>      # counter-by-counter delta

The registry is a plain directory tree — one subdirectory per run
holding ``runmeta.json`` + ``metrics.json`` — so it needs no daemon,
survives partial writes (a run missing either file is listed as
damaged, never fatal), and can be rsynced or committed wholesale.  The
root resolves from, in order: the explicit argument, ``$REPRO_RUNS_DIR``,
``.repro-runs`` under the working directory.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

__all__ = ["RunRegistry", "RunRecord", "default_root", "main"]

#: Version of the per-run ``runmeta.json`` layout.
RUNMETA_SCHEMA_VERSION = 1

#: Environment override for the registry root.
ROOT_ENV = "REPRO_RUNS_DIR"

#: Fallback registry root (relative to the working directory).
DEFAULT_ROOT = ".repro-runs"


def default_root(explicit: Optional[str] = None) -> str:
    """Resolve the registry root: explicit arg > env > ``.repro-runs``."""
    if explicit:
        return explicit
    return os.environ.get(ROOT_ENV) or DEFAULT_ROOT


@dataclass
class RunRecord:
    """One registered run, as loaded back from the registry."""

    run_id: str
    kind: str
    recorded_utc: str
    meta: Dict[str, Any] = field(default_factory=dict)
    timeseries: Optional[str] = None
    run_dir: Optional[str] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Set when the entry is missing/corrupt files (still listable).
    damaged: Optional[str] = None

    @property
    def counters(self) -> Dict[str, float]:
        return dict(self.metrics.get("counters", {}))

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self.metrics.get("gauges", {}))

    def headline(self) -> str:
        """One-line ``ls`` summary: id, kind, when, a salient number."""
        if self.damaged:
            return f"{self.run_id}  DAMAGED ({self.damaged})"
        counters = self.counters
        salient = ""
        for name in (
            "fleet.users",
            "sweep.progress.cells",
            "serve.windows",
            "sim.runs",
        ):
            if name in counters:
                salient = f"{name}={counters[name]:g}"
                break
        return (
            f"{self.run_id}  kind={self.kind}  recorded={self.recorded_utc}"
            + (f"  {salient}" if salient else "")
        )


class RunRegistry:
    """Directory-backed index of finished runs."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = os.path.abspath(default_root(root))

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def record(
        self,
        *,
        kind: str,
        metrics: Union[MetricsRegistry, Dict[str, Any], None] = None,
        meta: Optional[Dict[str, Any]] = None,
        timeseries: Optional[str] = None,
        run_dir: Optional[str] = None,
        run_id: Optional[str] = None,
    ) -> str:
        """Register one finished run; returns its run id.

        ``metrics`` may be a live :class:`MetricsRegistry` (snapshotted
        via ``to_dict``) or an already-exported dict.  ``run_id``
        defaults to a timestamp-derived unique id; pass one explicitly
        when the caller owns naming (tests, CI).
        """
        if run_id is None:
            run_id = self._fresh_run_id(kind)
        if os.sep in run_id or run_id in (".", ".."):
            raise ObservabilityError(f"invalid run id {run_id!r}")
        entry = os.path.join(self.root, run_id)
        if os.path.exists(entry):
            raise ObservabilityError(
                f"run {run_id!r} already registered under {self.root}"
            )
        if isinstance(metrics, MetricsRegistry):
            snapshot = metrics.to_dict()
        else:
            snapshot = dict(metrics or {})
        runmeta = {
            "schema_version": RUNMETA_SCHEMA_VERSION,
            "run_id": run_id,
            "kind": str(kind),
            "recorded_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "meta": dict(meta or {}),
            "timeseries": os.path.abspath(timeseries) if timeseries else None,
            "run_dir": os.path.abspath(run_dir) if run_dir else None,
        }
        os.makedirs(entry, exist_ok=True)
        self._write_json(os.path.join(entry, "runmeta.json"), runmeta)
        self._write_json(os.path.join(entry, "metrics.json"), snapshot)
        return run_id

    def _fresh_run_id(self, kind: str) -> str:
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        base = f"{stamp}-{kind}"
        run_id = base
        suffix = 1
        while os.path.exists(os.path.join(self.root, run_id)):
            run_id = f"{base}-{suffix}"
            suffix += 1
        return run_id

    @staticmethod
    def _write_json(path: str, payload: Dict[str, Any]) -> None:
        # Write-then-rename so a crash mid-record leaves no torn JSON.
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def ls(self) -> List[RunRecord]:
        """Every registered run, newest last (lexicographic id order)."""
        if not os.path.isdir(self.root):
            return []
        records = []
        for name in sorted(os.listdir(self.root)):
            if os.path.isdir(os.path.join(self.root, name)):
                records.append(self.load(name))
        return records

    def load(self, run_id: str) -> RunRecord:
        """Load one run; damaged entries come back flagged, not raised."""
        entry = os.path.join(self.root, run_id)
        if not os.path.isdir(entry):
            raise ObservabilityError(
                f"run {run_id!r} is not registered under {self.root}"
            )
        try:
            with open(os.path.join(entry, "runmeta.json")) as handle:
                runmeta = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            return RunRecord(
                run_id=run_id,
                kind="?",
                recorded_utc="?",
                damaged=f"runmeta.json: {error}",
            )
        try:
            with open(os.path.join(entry, "metrics.json")) as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            snapshot = {}
            damaged: Optional[str] = f"metrics.json: {error}"
        else:
            damaged = None
        return RunRecord(
            run_id=run_id,
            kind=runmeta.get("kind", "?"),
            recorded_utc=runmeta.get("recorded_utc", "?"),
            meta=runmeta.get("meta", {}),
            timeseries=runmeta.get("timeseries"),
            run_dir=runmeta.get("run_dir"),
            metrics=snapshot,
            damaged=damaged,
        )

    def diff(self, run_a: str, run_b: str) -> List[Dict[str, Any]]:
        """Counter-by-counter comparison of two runs.

        Returns rows ``{"name", "a", "b", "delta"}`` over the union of
        counter names (missing = 0.0), sorted by name, changed rows
        only.
        """
        a, b = self.load(run_a), self.load(run_b)
        for record in (a, b):
            if record.damaged:
                raise ObservabilityError(
                    f"cannot diff damaged run {record.run_id!r} "
                    f"({record.damaged})"
                )
        names = sorted(set(a.counters) | set(b.counters))
        rows = []
        for name in names:
            va = float(a.counters.get(name, 0.0))
            vb = float(b.counters.get(name, 0.0))
            if va != vb:
                rows.append({"name": name, "a": va, "b": vb, "delta": vb - va})
        return rows


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _render_info(record: RunRecord) -> List[str]:
    lines = [record.headline()]
    if record.damaged:
        return lines
    if record.meta:
        lines.append("meta:")
        for key in sorted(record.meta):
            lines.append(f"  {key}: {record.meta[key]}")
    if record.run_dir:
        lines.append(f"run_dir: {record.run_dir}")
    if record.timeseries:
        lines.append(f"timeseries: {record.timeseries}")
    counters = record.counters
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:g}")
    gauges = record.gauges
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:g}")
    return lines


def _render_diff(rows: List[Dict[str, Any]], run_a: str, run_b: str) -> List[str]:
    if not rows:
        return [f"no counter differences between {run_a} and {run_b}"]
    name_w = max(len(row["name"]) for row in rows)
    lines = [f"{'counter':<{name_w}}  {'a':>14}  {'b':>14}  {'delta':>14}"]
    for row in rows:
        lines.append(
            f"{row['name']:<{name_w}}  {row['a']:>14g}  {row['b']:>14g}  "
            f"{row['delta']:>+14g}"
        )
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.runs",
        description="Inspect the registry of finished runs.",
    )
    parser.add_argument(
        "--root",
        default=None,
        help=f"registry directory (default ${ROOT_ENV} or {DEFAULT_ROOT})",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("ls", help="list registered runs")
    info = commands.add_parser("info", help="show one run in full")
    info.add_argument("run_id")
    diff = commands.add_parser("diff", help="compare two runs' counters")
    diff.add_argument("run_a")
    diff.add_argument("run_b")
    args = parser.parse_args(argv)

    registry = RunRegistry(args.root)
    try:
        if args.command == "ls":
            records = registry.ls()
            if not records:
                print(f"no runs registered under {registry.root}")
            for record in records:
                print(record.headline())
        elif args.command == "info":
            for line in _render_info(registry.load(args.run_id)):
                print(line)
        else:
            rows = registry.diff(args.run_a, args.run_b)
            for line in _render_diff(rows, args.run_a, args.run_b):
                print(line)
    except ObservabilityError as error:
        print(f"error: {error}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
