"""Online serving: the decision core behind an asyncio session server.

The experiment/serving split: :mod:`repro.core.engine` holds the
per-slot decision logic (scheduling, recall, voting, confidence
adaptation) with no simulation loop around it, and this package serves
it to streaming devices —

* :mod:`repro.serve.protocol` — length-prefixed JSON frames;
* :mod:`repro.serve.session` — per-connection state machine over a
  :class:`~repro.serve.session.ServeProfile` catalog;
* :mod:`repro.serve.server` — asyncio TCP server with bounded
  per-session queues, block/shed overload policies, graceful drain and
  live ``repro.obs.watch`` dashboards;
* :mod:`repro.serve.client` — simulated devices, replay tapes and the
  concurrent load generator behind ``benchmarks/bench_serve.py``.

Correctness anchor: a served session fed an offline run's timeline
produces the byte-identical decision stream (``python -m repro.serve
replay`` checks it end to end).
"""

from repro.serve.client import (
    DeviceSim,
    LoadStats,
    ReplayTape,
    SessionResult,
    live_session,
    record_tape,
    replay_session,
    run_load,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WireReport,
    decode_frame,
    encode_frame,
    read_frame,
    validate_frame,
    write_frame,
)
from repro.serve.server import ServeServer
from repro.serve.session import EngineCatalog, ServeProfile, Session, SessionState

__all__ = [
    "DeviceSim",
    "LoadStats",
    "ReplayTape",
    "SessionResult",
    "live_session",
    "record_tape",
    "replay_session",
    "run_load",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "WireReport",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "validate_frame",
    "write_frame",
    "ServeServer",
    "EngineCatalog",
    "ServeProfile",
    "Session",
    "SessionState",
]
