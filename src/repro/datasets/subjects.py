"""Per-subject gait variation.

The paper's Fig. 6 experiment relies on *previously unseen users* whose
"gaits ... may significantly vary" from the training data.  A
:class:`SubjectProfile` is a lightweight transform applied on top of the
(location, activity) signature: frequency and amplitude scaling, a phase
offset, per-channel gains and an extra noise factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.profiles import N_CHANNELS
from repro.errors import DatasetError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SubjectProfile:
    """One person's deviation from the canonical signatures.

    Attributes
    ----------
    subject_id:
        Stable identifier (used in reports and seeding).
    frequency_scale:
        Multiplies every signature's fundamental (fast/slow walkers).
    amplitude_scale:
        Multiplies every movement amplitude (vigorous/subtle movers).
    phase_offset:
        Constant phase added to all oscillators, in radians.
    channel_gains:
        Per-channel multiplicative gain (sensor mounting variation),
        length :data:`~repro.datasets.profiles.N_CHANNELS`.
    noise_factor:
        Multiplies the location's sensor-noise sigma.
    """

    subject_id: int
    frequency_scale: float = 1.0
    amplitude_scale: float = 1.0
    phase_offset: float = 0.0
    channel_gains: Tuple[float, ...] = (1.0,) * N_CHANNELS
    noise_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_scale <= 0 or self.amplitude_scale <= 0:
            raise DatasetError("frequency_scale and amplitude_scale must be positive")
        if len(self.channel_gains) != N_CHANNELS:
            raise DatasetError(f"channel_gains must have {N_CHANNELS} entries")
        if any(gain <= 0 for gain in self.channel_gains):
            raise DatasetError("channel_gains must be positive")
        if self.noise_factor < 0:
            raise DatasetError("noise_factor must be non-negative")

    @staticmethod
    def canonical(subject_id: int = 0) -> "SubjectProfile":
        """The identity transform — exactly the canonical signatures."""
        return SubjectProfile(subject_id=subject_id)


def sample_subjects(
    count: int,
    seed: SeedLike = None,
    *,
    variability: float = 1.0,
    first_id: int = 0,
) -> List[SubjectProfile]:
    """Draw ``count`` random subjects.

    ``variability`` scales how far subjects stray from canonical: 1.0
    matches the spread used for training populations; Fig. 6's "unseen
    users" use a larger value so their data is meaningfully out of
    distribution.
    """
    if count < 0:
        raise DatasetError(f"count must be >= 0, got {count}")
    if variability < 0:
        raise DatasetError(f"variability must be >= 0, got {variability}")
    rng = as_generator(seed)
    subjects = []
    for index in range(count):
        freq = float(np.exp(rng.normal(0.0, 0.05 * variability)))
        amp = float(np.exp(rng.normal(0.0, 0.10 * variability)))
        phase = float(rng.uniform(-np.pi, np.pi))
        gains = tuple(np.exp(rng.normal(0.0, 0.06 * variability, size=N_CHANNELS)))
        noise = float(np.exp(rng.normal(0.0, 0.15 * variability)))
        subjects.append(
            SubjectProfile(
                subject_id=first_id + index,
                frequency_scale=freq,
                amplitude_scale=amp,
                phase_offset=phase,
                channel_gains=gains,
                noise_factor=noise,
            )
        )
    return subjects
