"""Unit tests for ``repro.resilience``: the supervised pool, the sweep
journal (exact payload round-trips, torn tails, fingerprints), the
chaos plan, the degradation report and the journal CLI.

Sweep-level integration (chaos byte-identity, resume, salvage) lives in
``test_resilience_sweep.py``.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.errors import ConfigurationError, ResilienceError
from repro.faults import FaultPlan
from repro.resilience import (
    ChaosAction,
    ChaosPlan,
    DegradationReport,
    FailedCell,
    SupervisedPool,
    SupervisedTask,
    SweepJournal,
    baseline_cell,
    decode_baseline_result,
    decode_experiment_result,
    encode_baseline_result,
    encode_experiment_result,
    policy_cell,
    sweep_fingerprint,
)
from repro.resilience.__main__ import main as journal_cli
from repro.sim.baselines import BaselineResult
from repro.sim.experiment import HARExperiment, SimulationConfig


# ---------------------------------------------------------------------------
# pool worker functions (module level so they pickle)
# ---------------------------------------------------------------------------


def _work(value, mode="ok", sleep_s=0.0):
    if mode == "crash":
        os._exit(139)
    if mode == "raise":
        raise ValueError(f"boom:{value}")
    if sleep_s:
        time.sleep(sleep_s)
    return value * 2


def _crash_then_ok(attempt, value=7):
    return (value, "crash" if attempt == 0 else "ok")


def _hang_then_ok(attempt, value=3, hang_s=30.0):
    return (value, "ok", hang_s if attempt == 0 else 0.0)


class TestSupervisedPool:
    def test_clean_run_in_task_order(self):
        pool = SupervisedPool(2, backoff_s=0.0)
        outcomes = pool.run([SupervisedTask(fn=_work, args=(v,)) for v in range(5)])
        assert [o.index for o in outcomes] == list(range(5))
        assert [o.result for o in outcomes] == [0, 2, 4, 6, 8]
        assert all(o.ok and o.attempts == 1 and not o.retried for o in outcomes)
        assert not any(pool.stats.values())

    def test_crash_is_retried(self):
        pool = SupervisedPool(2, max_retries=2, backoff_s=0.01)
        outcomes = pool.run(
            [
                SupervisedTask(fn=_work, args=(1,)),
                SupervisedTask(fn=_work, args_for_attempt=_crash_then_ok),
            ]
        )
        assert outcomes[0].ok and outcomes[0].result == 2
        assert outcomes[1].ok and outcomes[1].result == 14
        assert outcomes[1].retried and "crashed" in outcomes[1].failures[0]
        assert pool.stats["crashes"] >= 1
        assert pool.stats["pool_restarts"] >= 1
        assert pool.stats["giveups"] == 0

    def test_hang_times_out_and_innocent_requeues(self):
        # task0 hangs on attempt 0; task1 finishes at ~0.75s, freeing a
        # slot for task2 (2.5s, so its own deadline is ~3.25s).  When
        # task0 expires at 3.0s, task2 is mid-flight but within ITS
        # deadline — so it must requeue uncharged and rerun clean.
        pool = SupervisedPool(2, task_timeout_s=3.0, max_retries=1, backoff_s=0.0)
        outcomes = pool.run(
            [
                SupervisedTask(fn=_work, args_for_attempt=_hang_then_ok, label="hang"),
                SupervisedTask(fn=_work, args=(1, "ok", 0.75)),
                SupervisedTask(fn=_work, args=(2, "ok", 2.5)),
            ]
        )
        assert all(o.ok for o in outcomes)
        assert [o.result for o in outcomes] == [6, 2, 4]
        assert outcomes[0].attempts == 2
        assert "timed out" in outcomes[0].failures[0]
        assert outcomes[2].attempts == 1  # requeued, never charged
        assert pool.stats["timeouts"] == 1
        assert pool.stats["requeued"] == 1
        assert pool.stats["pool_restarts"] == 1

    def test_retries_exhaust_into_failed_outcome(self):
        seen = []
        pool = SupervisedPool(1, max_retries=1, backoff_s=0.0)
        outcomes = pool.run(
            [SupervisedTask(fn=_work, args=(9, "raise"))],
            on_outcome=seen.append,
        )
        outcome = outcomes[0]
        assert not outcome.ok and outcome.attempts == 2
        assert outcome.failures == ["ValueError: boom:9", "ValueError: boom:9"]
        assert outcome.cause == "ValueError: boom:9"
        assert pool.stats["task_errors"] == 2
        assert pool.stats["retries"] == 1
        assert pool.stats["giveups"] == 1
        assert seen == [outcome]  # terminal callback fired exactly once

    def test_no_orphan_workers_after_run(self):
        pool = SupervisedPool(2, max_retries=1, backoff_s=0.01)
        pool.run(
            [
                SupervisedTask(fn=_work, args=(1,)),
                SupervisedTask(fn=_work, args_for_attempt=_crash_then_ok),
            ]
        )
        assert multiprocessing.active_children() == []

    def test_exception_in_callback_kills_pool(self):
        def explode(outcome):
            raise RuntimeError("callback bug")

        pool = SupervisedPool(2, backoff_s=0.0)
        with pytest.raises(RuntimeError, match="callback bug"):
            pool.run(
                [SupervisedTask(fn=_work, args=(v, "ok", 0.2)) for v in range(6)],
                on_outcome=explode,
            )
        assert multiprocessing.active_children() == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisedPool(0)
        with pytest.raises(ConfigurationError):
            SupervisedPool(1, max_retries=-1)
        with pytest.raises(ConfigurationError):
            SupervisedPool(1, task_timeout_s=0.0)

    def test_empty_task_list(self):
        assert SupervisedPool(1).run([]) == []


# ---------------------------------------------------------------------------
# chaos plans
# ---------------------------------------------------------------------------


class TestChaosPlan:
    def test_action_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosAction(kind="meteor")
        with pytest.raises(ConfigurationError):
            ChaosAction(kind="crash", on_attempt=-1)
        with pytest.raises(ConfigurationError):
            ChaosAction(kind="drop_store_entry")  # needs a store_key

    def test_action_fires_only_on_its_attempt(self):
        plan = ChaosPlan(actions={2: ChaosAction(kind="crash", on_attempt=1)})
        assert plan.action_for(2, 0) is None
        assert plan.action_for(2, 1).kind == "crash"
        assert plan.action_for(0, 1) is None
        assert not plan.empty
        assert ChaosPlan().empty

    def test_for_units_is_deterministic_and_kills_at_least_one(self):
        a = ChaosPlan.for_units(10, crash_fraction=0.3, hang_units=1, seed=4)
        b = ChaosPlan.for_units(10, crash_fraction=0.3, hang_units=1, seed=4)
        assert a.actions == b.actions
        kinds = [action.kind for action in a.actions.values()]
        assert kinds.count("crash") == 3 and kinds.count("hang") == 1
        tiny = ChaosPlan.for_units(4, crash_fraction=0.01)
        assert sum(1 for x in tiny.actions.values() if x.kind == "crash") == 1
        with pytest.raises(ConfigurationError):
            ChaosPlan.for_units(4, crash_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPlan.for_units(4, hang_units=-1)


# ---------------------------------------------------------------------------
# exact payload round-trips
# ---------------------------------------------------------------------------


def _json_roundtrip(document):
    """Through the same serialization the journal file uses."""
    return json.loads(json.dumps(document, sort_keys=True))


class TestPayloadRoundTrip:
    def test_experiment_result_exact(self, tiny_experiment):
        run = tiny_experiment.run(
            origin_policy(3), seed=9, faults=FaultPlan.from_failures({1: 10})
        )
        decoded = decode_experiment_result(
            _json_roundtrip(encode_experiment_result(run))
        )
        assert decoded.policy_name == run.policy_name
        assert decoded.activities == run.activities
        assert decoded.records == run.records
        assert decoded.node_stats == run.node_stats
        assert decoded.comm_energy_j == run.comm_energy_j
        assert decoded.confidence_updates == run.confidence_updates
        assert decoded.fault_stats == run.fault_stats

    def test_baseline_result_exact(self, tiny_experiment):
        result = BaselineResult(
            baseline_name="Baseline-1",
            activities=list(tiny_experiment.dataset.spec.activities),
            true_labels=np.array([0, 1, 2, 1], dtype=np.int64),
            predicted_labels=np.array([0, 1, 1, 1], dtype=np.int64),
        )
        decoded = decode_baseline_result(
            _json_roundtrip(encode_baseline_result(result))
        )
        assert decoded.baseline_name == result.baseline_name
        assert decoded.activities == result.activities
        np.testing.assert_array_equal(decoded.true_labels, result.true_labels)
        np.testing.assert_array_equal(
            decoded.predicted_labels, result.predicted_labels
        )
        assert decoded.true_labels.dtype == np.int64


# ---------------------------------------------------------------------------
# fingerprints and cell keys
# ---------------------------------------------------------------------------


class TestKeys:
    def test_fingerprint_tracks_config(self, tiny_dataset, tiny_bundle):
        a = HARExperiment(
            tiny_dataset, tiny_bundle, config=SimulationConfig(n_windows=60), seed=3
        )
        b = HARExperiment(
            tiny_dataset, tiny_bundle, config=SimulationConfig(n_windows=60), seed=3
        )
        c = HARExperiment(
            tiny_dataset, tiny_bundle, config=SimulationConfig(n_windows=61), seed=3
        )
        assert sweep_fingerprint(a) == sweep_fingerprint(b)
        assert sweep_fingerprint(a) != sweep_fingerprint(c)

    def test_policy_cell_keys_on_spec_fields_not_name(self):
        spec = rr_policy(3)
        twin = dataclasses.replace(spec, rr_length=6)  # same name field order
        assert policy_cell(spec, 5) != policy_cell(spec, 6)
        assert policy_cell(spec, 5) != policy_cell(twin, 5)
        assert policy_cell(spec, 5) == policy_cell(dataclasses.replace(spec), 5)
        assert baseline_cell("Baseline-1", 5) == "baseline:Baseline-1:seed=5"


# ---------------------------------------------------------------------------
# the journal file
# ---------------------------------------------------------------------------


class TestSweepJournal:
    def test_record_and_resume(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, "fp-1") as journal:
            journal.record("cell-a", {"x": 1.5})
            journal.record("cell-b", {"x": [1, 2]})
            journal.record("cell-a", {"x": 999})  # duplicate: first wins
            assert len(journal) == 2
        reopened = SweepJournal.open(path, "fp-1")
        assert reopened.cells == ["cell-a", "cell-b"]
        assert reopened.get("cell-a") == {"x": 1.5}
        assert "cell-b" in reopened and "cell-c" not in reopened
        reopened.close()
        with pytest.raises(ResilienceError, match="closed"):
            reopened.record("cell-c", {})

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        SweepJournal.open(path, "fp-1").close()
        with pytest.raises(ResilienceError, match="different sweep"):
            SweepJournal.open(path, "fp-2")
        # resume=False replaces the journal instead.
        fresh = SweepJournal.open(path, "fp-2", resume=False)
        assert len(fresh) == 0
        fresh.close()
        SweepJournal.open(path, "fp-2").close()

    def test_torn_tail_truncated(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, "fp-1") as journal:
            journal.record("cell-a", {"x": 1})
        with open(path, "a") as handle:
            handle.write('{"kind": "cell", "cell": "cell-b", "payl')  # no newline
        size_before = os.path.getsize(path)
        reopened = SweepJournal.open(path, "fp-1")
        assert reopened.cells == ["cell-a"]
        assert os.path.getsize(path) < size_before
        # The truncated journal stays appendable.
        reopened.record("cell-b", {"x": 2})
        reopened.close()
        assert SweepJournal.open(path, "fp-1").cells == ["cell-a", "cell-b"]

    def test_not_a_journal_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "something-else"}\n')
        with pytest.raises(ResilienceError, match="not a schema"):
            SweepJournal.open(path, "fp-1")


# ---------------------------------------------------------------------------
# degradation report
# ---------------------------------------------------------------------------


class TestDegradationReport:
    def test_accounting_and_summary(self):
        report = DegradationReport(
            total_cells=8,
            failed=[
                FailedCell(cell="policy:A:seed=1", seed=1, attempts=3,
                           cause="timed out", policy="A"),
                FailedCell(cell="policy:B:seed=1", seed=1, attempts=3,
                           cause="timed out", policy="B"),
            ],
            retries=4,
            timeouts=2,
            crashes=1,
            pool_restarts=2,
        )
        assert report.completed_cells == 6
        assert report.failed_cells == 2
        assert not report.complete
        assert report.causes() == {"timed out": 2}
        text = report.summary()
        assert "6/8" in text and "policy:A:seed=1" in text
        assert DegradationReport(total_cells=3, retries=1).complete


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestJournalCli:
    def test_info_and_cells(self, tmp_path, capsys):
        path = str(tmp_path / "sweep.jsonl")
        with SweepJournal.open(path, "fp-cli") as journal:
            journal.record("policy:RR3:abc:seed=1", {"x": 1})
            journal.record("baseline:Baseline-1:seed=1", {"x": 2})
        assert journal_cli(["info", path]) == 0
        out = capsys.readouterr().out
        assert "fp-cli" in out and "cells        : 2" in out
        assert "policy" in out and "baseline" in out
        assert journal_cli(["cells", path]) == 0
        out = capsys.readouterr().out
        assert "policy:RR3:abc:seed=1" in out

    def test_rejects_non_journal(self, tmp_path):
        path = str(tmp_path / "nope.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "other"}\n')
        with pytest.raises(ResilienceError):
            journal_cli(["info", path])
