"""Benchmark the fleet layer: mega-batching speedup + users/second.

Simulates a reproducible heterogeneous cohort (``repro.fleet``) on the
standard MHEALTH-like experiment and writes the machine-readable
results to ``benchmarks/results/BENCH_fleet.json``:

1. **Identity + speedup** — a cohort slice runs twice over *warm*
   material memos: once as one kernel mega-batch (one
   ``BatchGroup`` per user through ``run_group_batch``) and once as
   the reference per-user ``HARExperiment.run`` loop.  Both must be
   byte-identical; the mega-batch must be at least
   ``SPEEDUP_FLOOR``x faster (``SMOKE_SPEEDUP_FLOOR`` under
   ``--smoke``, where the horizon is short and fixed costs loom
   larger).
2. **Headline** — ``FleetRunner.run`` over the full cohort, reporting
   simulated **users/second** (the committed figure).
3. **Invariance** — the same cohort re-run with a different shard
   size and with a worker pool must reproduce the sequential
   aggregate statistics byte for byte, and a journal truncated after
   one cell must resume to the same bytes.

``--smoke`` shrinks the cohort/horizon so CI finishes quickly and
leaves the committed JSON untouched unless ``--output`` is given; the
identity, speedup-floor, invariance and resume gates all still apply.

Run with ``PYTHONPATH=src python benchmarks/bench_fleet.py``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.core.policies import origin_policy
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.runner import FleetRunner, _MaterialMemo, simulate_users
from repro.fleet.spec import CohortSpec
from repro.sim.experiment import HARExperiment, SimulationConfig

try:
    from benchmarks.runmeta import WallClock, write_stamped_json
except ImportError:  # invoked as a script: sibling import
    from runmeta import WallClock, write_stamped_json

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_fleet.json")

#: Minimum mega-batch speedup over the per-user run loop (warm
#: materials, identical results) at the full horizon.
SPEEDUP_FLOOR = 3.0

#: The same gate under ``--smoke``: per-run python fixed costs
#: (scheduler objects, result assembly) weigh more at short horizons.
SMOKE_SPEEDUP_FLOOR = 2.5


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small cohort + short horizon; enforce gates, skip the JSON",
    )
    parser.add_argument(
        "--users", type=int, default=None, help="headline cohort size"
    )
    parser.add_argument(
        "--speedup-users",
        type=int,
        default=None,
        help="cohort slice for the mega-vs-loop comparison",
    )
    parser.add_argument(
        "--n-windows", type=int, default=None, help="slots per user"
    )
    parser.add_argument("--shard-size", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42, help="cohort sampling seed")
    parser.add_argument(
        "--output",
        default=None,
        help=f"JSON destination (default {DEFAULT_OUTPUT}; never written in "
        "--smoke mode unless given explicitly)",
    )
    args = parser.parse_args(argv)
    if args.users is None:
        args.users = 300 if args.smoke else 2000
    if args.speedup_users is None:
        args.speedup_users = 32 if args.smoke else 64
    if args.n_windows is None:
        args.n_windows = 60 if args.smoke else 200
    if args.shard_size is None:
        args.shard_size = 64 if args.smoke else 256
    return args


def speedup_leg(experiment, spec, policies, count):
    """Mega-batch vs per-user loop over identical warm materials."""
    users = list(spec.users(0, count))
    memo = _MaterialMemo(experiment)
    for user in users:
        memo.material(user)  # warm: time simulation, not window building

    with WallClock() as loop_clock:
        loop_rows = simulate_users(
            experiment, users, policies, mega=False, materials=memo
        )
    with WallClock() as mega_clock:
        mega_rows = simulate_users(
            experiment, users, policies, mega=True, materials=memo
        )

    if mega_rows != loop_rows:
        raise SystemExit("FAIL: mega-batched results diverge from per-user runs")
    speedup = loop_clock.elapsed_s / mega_clock.elapsed_s
    return {
        "users": count,
        "policies": [policy.name for policy in policies],
        "per_user_loop_s": round(loop_clock.elapsed_s, 3),
        "mega_batch_s": round(mega_clock.elapsed_s, 3),
        "speedup": round(speedup, 2),
        "identical": True,
    }


def headline_leg(runner, workers):
    """Sequential headline + parallel/shard/journal invariance gates."""
    sequential = runner.run()
    reference = sequential.aggregate.stats_json()

    parallel = runner.run(workers=workers)
    if parallel.aggregate.stats_json() != reference:
        raise SystemExit("FAIL: parallel aggregate diverges from sequential")

    other_layout = FleetRunner(
        runner.experiment,
        runner.spec,
        policies=runner.policies,
        shard_size=max(1, runner.shard_size // 2),
    ).run()
    if other_layout.aggregate.stats_json() != reference:
        raise SystemExit("FAIL: shard layout leaked into aggregate statistics")

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "fleet.journal")
        runner.run(journal=journal_path)
        with open(journal_path) as handle:
            lines = handle.readlines()
        with open(journal_path, "w") as handle:
            handle.writelines(lines[:2])  # header + first cell: a crash
        resumed = runner.run(journal=journal_path)
        if resumed.aggregate.stats_json() != reference:
            raise SystemExit("FAIL: journal resume diverges from clean run")
        if resumed.journal_hits != 1:
            raise SystemExit("FAIL: journal resume recomputed the surviving cell")

    return sequential, {
        "users": sequential.users,
        "shards": sequential.shards,
        "sequential_s": round(sequential.elapsed_s, 3),
        "users_per_second": round(sequential.users_per_second, 1),
        "parallel_workers": workers,
        "parallel_s": round(parallel.elapsed_s, 3),
        "parallel_users_per_second": round(parallel.users_per_second, 1),
        "invariance": {
            "parallel_identical": True,
            "shard_layout_identical": True,
            "journal_resume_identical": True,
        },
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    floor = SMOKE_SPEEDUP_FLOOR if args.smoke else SPEEDUP_FLOOR
    print(
        f"fleet bench: {args.users} users, {args.n_windows} windows, "
        f"shard {args.shard_size}, workers {args.workers}"
        + (" [smoke]" if args.smoke else "")
    )

    with WallClock() as total_clock:
        config = SimulationConfig(n_windows=args.n_windows)
        experiment = HARExperiment.standard_mhealth(seed=7, config=config)
        spec = CohortSpec(size=args.users, seed=args.seed, base=experiment.config)
        policies = [origin_policy(12)]

        speedup = speedup_leg(
            experiment, spec, policies, min(args.speedup_users, args.users)
        )
        print(
            f"mega-batch: {speedup['mega_batch_s']} s vs per-user loop "
            f"{speedup['per_user_loop_s']} s -> {speedup['speedup']}x "
            f"(identical results)"
        )
        if speedup["speedup"] < floor:
            raise SystemExit(
                f"FAIL: mega-batch speedup {speedup['speedup']}x below "
                f"the {floor}x floor"
            )

        runner = FleetRunner(
            experiment, spec, policies=policies, shard_size=args.shard_size
        )
        result, headline = headline_leg(runner, args.workers)
        print(
            f"headline: {headline['users']} users in "
            f"{headline['sequential_s']} s sequential -> "
            f"{headline['users_per_second']} users/s "
            f"({headline['parallel_users_per_second']} users/s with "
            f"{args.workers} workers); invariance gates passed"
        )
        origin = result.aggregate.distribution(policies[0].name, "event_accuracy")
        print(
            f"cohort event accuracy: mean={origin.mean:.4f} "
            f"p5={origin.percentile(5):.4f} p50={origin.percentile(50):.4f} "
            f"p95={origin.percentile(95):.4f}"
        )

    payload = {
        "benchmark": "fleet",
        "config": {
            "users": args.users,
            "n_windows": args.n_windows,
            "shard_size": args.shard_size,
            "workers": args.workers,
            "cohort_seed": args.seed,
            "speedup_floor": floor,
            "smoke": args.smoke,
        },
        "users_per_second": headline["users_per_second"],
        "speedup": speedup,
        "headline": headline,
        "cohort_event_accuracy": {
            "mean": round(origin.mean, 4),
            "p5": round(origin.percentile(5), 4),
            "p50": round(origin.percentile(50), 4),
            "p95": round(origin.percentile(95), 4),
        },
    }
    output = args.output
    if output is None and not args.smoke:
        output = DEFAULT_OUTPUT
    if output is not None:
        write_stamped_json(output, payload, wall_time_s=total_clock.elapsed_s)
        print(f"wrote {output}")
    # Exercise the exact serialization path even when not writing.
    FleetAggregate.from_dict(result.aggregate.to_dict())
    print(f"total wall time {total_clock.elapsed_s:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
