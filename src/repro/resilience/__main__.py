"""Inspect a sweep journal from the command line.

Usage::

    python -m repro.resilience info  <journal.jsonl>
    python -m repro.resilience cells <journal.jsonl>

``info`` prints the header (schema, fingerprint) and per-kind cell
counts; ``cells`` lists every completed cell key.  Both read the file
directly — no fingerprint is required, so any journal can be inspected.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ResilienceError
from repro.resilience.journal import _CELL_KIND, _HEADER_KIND


def read_journal(path: str) -> Tuple[Dict[str, Any], List[str]]:
    """The header and cell keys of a journal file (tolerant of a torn
    tail, like the runtime loader)."""
    header: Optional[Dict[str, Any]] = None
    cells: List[str] = []
    with open(path, "r") as handle:
        for line in handle:
            if not line.endswith("\n"):
                break
            try:
                document = json.loads(line)
            except json.JSONDecodeError:
                break
            if header is None:
                if document.get("kind") != _HEADER_KIND:
                    raise ResilienceError(f"{path} is not a sweep journal")
                header = document
            elif document.get("kind") == _CELL_KIND:
                cells.append(document["cell"])
    if header is None:
        raise ResilienceError(f"{path} has no journal header")
    return header, cells


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience", description=__doc__.splitlines()[0]
    )
    parser.add_argument("command", choices=("info", "cells"))
    parser.add_argument("journal", help="sweep journal JSONL file")
    args = parser.parse_args(argv)

    header, cells = read_journal(args.journal)
    if args.command == "cells":
        for cell in sorted(cells):
            print(cell)  # noqa: T201 - CLI output
        return 0
    kinds: Dict[str, int] = {}
    for cell in cells:
        kind = cell.split(":", 1)[0]
        kinds[kind] = kinds.get(kind, 0) + 1
    print(f"journal      : {args.journal}")  # noqa: T201 - CLI output
    print(f"schema       : v{header.get('schema_version')}")  # noqa: T201
    print(f"fingerprint  : {header.get('fingerprint')}")  # noqa: T201
    print(f"cells        : {len(cells)}")  # noqa: T201 - CLI output
    for kind in sorted(kinds):
        print(f"  {kind:<10} : {kinds[kind]}")  # noqa: T201 - CLI output
    return 0


if __name__ == "__main__":
    sys.exit(main())
