"""Extension — fault-severity x policy degradation matrix.

Sweeps single-fault scenarios (lossy links, burst loss, corruption,
node death, brownout, harvester shadowing, host restart) against the
paper's policy ladder at RR12, and reports how gracefully each policy
degrades relative to its own fault-free accuracy.  The headline claim
under test: Origin keeps the system usable — it retains more than half
of its fault-free event accuracy under every single fault injected
here.
"""

import numpy as np
import pytest

from benchmarks.conftest import SEEDS
from repro.core.policies import aas_policy, aasr_policy, origin_policy, rr_policy
from repro.faults import (
    Brownout,
    FaultPlan,
    GilbertElliottLoss,
    HarvesterDropout,
    HostRestart,
    NodeDeath,
    PacketLoss,
    PayloadCorruption,
)
from repro.utils.text import format_table

POLICIES = (rr_policy(12), aas_policy(12), aasr_policy(12), origin_policy(12))
MATRIX_SEEDS = SEEDS[:2]

# Node ids follow deployment order: chest 0, right wrist 1, left ankle 2.
SCENARIOS = (
    ("fault-free", FaultPlan()),
    ("packet loss 10%", FaultPlan(faults=(PacketLoss(rate=0.10),))),
    ("packet loss 30%", FaultPlan(faults=(PacketLoss(rate=0.30),))),
    (
        "burst loss (GE, ~17%)",
        FaultPlan(
            faults=(GilbertElliottLoss(p_good_to_bad=0.05, p_bad_to_good=0.25),)
        ),
    ),
    ("corruption 10%", FaultPlan(faults=(PayloadCorruption(rate=0.10),))),
    ("wrist dies @150", FaultPlan(faults=(NodeDeath(node_id=1, at_slot=150),))),
    (
        "wrist brownout 100-180",
        FaultPlan(faults=(Brownout(node_id=1, start_slot=100, duration_slots=80),)),
    ),
    (
        "ankle shadowed 100-300",
        FaultPlan(
            faults=(HarvesterDropout(node_id=2, windows=((100, 300),), factor=0.0),)
        ),
    ),
    ("host restart @250", FaultPlan(faults=(HostRestart(at_slot=250),))),
)


@pytest.fixture(scope="module")
def fault_matrix(mhealth_exp):
    """scenario -> policy -> (mean event accuracy, mean retained, runs)."""
    matrix = {}
    baselines = {}
    for scenario, plan in SCENARIOS:
        matrix[scenario] = {}
        for spec in POLICIES:
            runs = []
            for seed in MATRIX_SEEDS:
                subject = mhealth_exp.dataset.eval_subjects[seed % 2]
                runs.append(
                    mhealth_exp.run(spec, seed=seed, subject=subject, faults=plan)
                )
            accuracy = float(np.mean([r.event_accuracy for r in runs]))
            if scenario == "fault-free":
                baselines[spec.name] = runs
                retained = 1.0
            else:
                retained = float(
                    np.mean(
                        [
                            r.degradation_vs(clean)["retained_event_accuracy"]
                            for r, clean in zip(runs, baselines[spec.name])
                        ]
                    )
                )
            matrix[scenario][spec.name] = (accuracy, retained, runs)
    return matrix


def _origin_name():
    return origin_policy(12).name


def test_fault_matrix_render(fault_matrix, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    names = [spec.name for spec in POLICIES]

    accuracy_rows = [
        [scenario] + [fault_matrix[scenario][name][0] * 100 for name in names]
        for scenario, _ in SCENARIOS
    ]
    text = format_table(
        ["Scenario"] + [f"{name} (%)" for name in names],
        accuracy_rows,
        title="=== Extension: event accuracy under injected faults (RR12 ladder) ===",
    )

    retained_rows = [
        [scenario] + [fault_matrix[scenario][name][1] * 100 for name in names]
        for scenario, _ in SCENARIOS
        if scenario != "fault-free"
    ]
    text += "\n\n" + format_table(
        ["Scenario"] + [f"{name} (%)" for name in names],
        retained_rows,
        title="=== Retained fraction of each policy's fault-free event accuracy ===",
    )

    degradation_rows = []
    for scenario, _ in SCENARIOS:
        if scenario == "fault-free":
            continue
        runs = fault_matrix[scenario][_origin_name()][2]
        stats = [r.fault_stats for r in runs]
        degradation_rows.append(
            [
                scenario,
                float(np.mean([s.messages_dropped for s in stats])),
                float(np.mean([s.messages_corrupted for s in stats])),
                float(np.mean([s.total_offline_slots for s in stats])),
                float(np.mean([r.total_dropped_messages for r in runs])),
            ]
        )
    text += "\n\n" + format_table(
        [
            "Scenario",
            "msgs dropped",
            "msgs corrupted",
            "node-slots offline",
            "slot-level drops",
        ],
        degradation_rows,
        title=f"=== Degradation accounting ({_origin_name()}, mean over seeds) ===",
    )
    save_result("ext_fault_matrix", text)


def test_origin_degrades_gracefully_everywhere(fault_matrix, benchmark):
    """Origin(RR12) keeps >50% of its fault-free event accuracy under
    every single-fault scenario — the graceful-degradation claim."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    origin = _origin_name()
    for scenario, _ in SCENARIOS:
        if scenario == "fault-free":
            continue
        _, retained, _ = fault_matrix[scenario][origin]
        assert retained > 0.5, f"{scenario}: Origin retained only {retained:.1%}"


def test_loss_severity_monotonically_hurts(fault_matrix, benchmark):
    """More link loss cannot help: 30% loss retains no more than 10%
    (small slack for seed noise)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    origin = _origin_name()
    mild = fault_matrix["packet loss 10%"][origin][1]
    severe = fault_matrix["packet loss 30%"][origin][1]
    assert severe <= mild + 0.05, (mild, severe)


def test_empty_plan_matches_fault_free_baseline(fault_matrix, mhealth_exp, benchmark):
    """The fault-free column *is* a plain run: empty plan == no plan."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    seed = MATRIX_SEEDS[0]
    subject = mhealth_exp.dataset.eval_subjects[seed % 2]
    plain = mhealth_exp.run(origin_policy(12), seed=seed, subject=subject)
    with_plan = fault_matrix["fault-free"][_origin_name()][2][0]
    assert plain.records == with_plan.records


def test_fault_matrix_timing(benchmark, mhealth_exp):
    plan = FaultPlan(faults=(PacketLoss(rate=0.3),))
    benchmark.pedantic(
        lambda: mhealth_exp.run(
            origin_policy(12), seed=2, n_windows=120, faults=plan
        ),
        rounds=1,
        iterations=1,
    )
