"""Small argument-validation helpers.

These raise :class:`repro.errors.ConfigurationError` (a ``ValueError``)
with messages that name the offending parameter, so constructor
validation stays one line per parameter.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

import numpy as np

from repro.errors import ConfigurationError

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it unchanged."""
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it unchanged."""
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return float(value)


def check_positive_int(name: str, value: int) -> int:
    """Require an integer ``value >= 1``; return it as ``int``."""
    if int(value) != value or value < 1:
        raise ConfigurationError(f"{name} must be an integer >= 1, got {value!r}")
    return int(value)


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Require ``value`` in ``[0, 1]`` (or ``(0, 1)`` when not inclusive)."""
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    elif not 0.0 < value < 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1), got {value!r}")
    return float(value)


def check_in_choices(name: str, value: T, choices: Iterable[T]) -> T:
    """Require ``value`` to be one of ``choices``; return it unchanged."""
    options = list(choices)
    if value not in options:
        raise ConfigurationError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def check_probability_vector(name: str, values: Sequence[float], *, atol: float = 1e-6) -> np.ndarray:
    """Require a non-negative vector summing to one; return it as an array."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ConfigurationError(f"{name} must be a non-empty 1-D vector, got shape {array.shape}")
    if np.any(array < -atol):
        raise ConfigurationError(f"{name} must be non-negative, got {array!r}")
    total = float(array.sum())
    if abs(total - 1.0) > atol:
        raise ConfigurationError(f"{name} must sum to 1 (got {total:.6f})")
    return np.clip(array, 0.0, None) / max(total, 1e-12)
