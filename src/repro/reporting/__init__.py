"""Text renderers that reproduce the paper's figures and tables.

Each function takes the corresponding experiment result object and
returns the printed series — the benches call these so a bench run's
captured output *is* the reproduced figure.
"""

from repro.reporting.figures import (
    render_fig1_completion,
    render_fig2_sensor_accuracy,
    render_fig3_schedules,
    render_fig4_aas,
    render_fig5_policies,
    render_fig6_personalization,
    render_table1,
)

__all__ = [
    "render_fig1_completion",
    "render_fig2_sensor_accuracy",
    "render_fig3_schedules",
    "render_fig4_aas",
    "render_fig5_policies",
    "render_fig6_personalization",
    "render_table1",
]
