"""Golden-output tests for the report renderer (`repro.obs.summarize`)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.summarize import (
    _fault_ledger,
    _fleet_line,
    _kernel_line,
    _metrics_section,
    _resilience_line,
    _store_line,
    _timeline_rows,
    fleet_journal_lines,
    main,
    render_report,
    split_runs,
    timeseries_lines,
)
from repro.obs.timeline import TimeSeriesRecorder
from repro.obs.trace import TraceEvent

E = TraceEvent


@pytest.fixture()
def run_events():
    """Hand-built six-slot, two-node run exercising every glyph."""
    return [
        E(0, "run.started", None, None,
          {"policy": "origin-6", "seed": 3, "n_windows": 6, "n_nodes": 2}),
        E(1, "window.sensed", 0, 0, {}),
        E(2, "nvp.burst", 1, 0, {}),
        E(3, "inference.completed", 2, 0, {}),
        E(4, "message.dropped", 3, 1, {}),
        E(5, "fault.fired", 4, 1, {"fault": "power_down"}),
        E(6, "vote.cast", 2, None, {}),
        E(7, "run.finished", None, None, {}),
    ]


class TestTimelineRows:
    def test_golden_rows(self, run_events):
        rows = _timeline_rows(run_events, 6, 100)
        assert rows == [
            "  node 0   |aaC...|",
            "  node 1   |...d!.|",
            "  host     |  V   |",
        ]

    def test_priority_highest_glyph_wins(self):
        # Same node+slot: completed (C) outranks burst (a), fault (!)
        # outranks everything.
        events = [
            E(0, "nvp.burst", 0, 0, {}),
            E(1, "inference.completed", 0, 0, {}),
            E(2, "fault.fired", 1, 0, {"fault": "radio_off"}),
            E(3, "inference.completed", 1, 0, {}),
        ]
        assert _timeline_rows(events, 2, 100) == ["  node 0   |C!|"]

    def test_downsampling_keeps_highest_priority_per_bucket(self):
        # 12 slots into 6 columns: each column is a 2-slot bucket.
        events = [
            E(0, "window.sensed", 0, 0, {}),
            E(1, "inference.completed", 1, 0, {}),  # bucket 0 -> C
            E(2, "message.dropped", 5, 0, {}),      # bucket 2 -> d
            E(3, "fault.fired", 10, 0, {"fault": "x"}),  # bucket 5 -> !
        ]
        assert _timeline_rows(events, 12, 6) == ["  node 0   |C.d..!|"]

    def test_out_of_range_slots_ignored(self):
        events = [
            E(0, "window.sensed", 0, 0, {}),
            E(1, "inference.completed", 99, 0, {}),
        ]
        assert _timeline_rows(events, 2, 100) == ["  node 0   |a.|"]

    def test_no_votes_no_host_row(self):
        events = [E(0, "window.sensed", 0, 0, {})]
        rows = _timeline_rows(events, 1, 100)
        assert rows == ["  node 0   |a|"]


class TestFaultLedger:
    def test_golden_line(self, run_events):
        assert _fault_ledger(run_events) == [
            "  slot     4  node 1    power_down",
        ]

    def test_host_scoped_fault(self):
        events = [E(0, "fault.fired", 2, None, {"fault": "brownout"})]
        assert _fault_ledger(events) == ["  slot     2  host      brownout"]

    def test_clean_run_empty(self):
        assert _fault_ledger([E(0, "vote.cast", 0, None, {})]) == []


class TestSplitRuns:
    def test_two_runs_partitioned_at_boundaries(self, run_events):
        doubled = run_events + [
            E(e.seq + 8, e.kind, e.slot, e.node_id, e.payload)
            for e in run_events
        ]
        runs = split_runs(doubled)
        assert [len(r) for r in runs] == [8, 8]
        assert all(r[0].kind == "run.started" for r in runs)


class TestMetricLines:
    def test_store_line_golden(self):
        exported = {
            "counters": {"store.hit": 3, "store.miss": 1, "store.rebuild": 1},
            "timers": {
                "store.load": {"calls": 3, "total_s": 0.5, "min_s": 0.1, "max_s": 0.3}
            },
        }
        assert _store_line(exported) == (
            "artifact store: 3 hit(s), 1 miss(es), 1 corrupt rebuild(s), load 0.50 s"
        )

    def test_store_line_none_without_traffic(self):
        assert _store_line({"counters": {}, "timers": {}}) is None

    def test_resilience_line_golden(self):
        exported = {"counters": {"resilience.crashes": 1, "resilience.retries": 2}}
        assert _resilience_line(exported) == "resilience: 1 crash(es), 2 retry(ies)"

    def test_resilience_line_none_when_incident_free(self):
        assert _resilience_line({"counters": {"resilience.crashes": 0}}) is None

    def test_kernel_line_golden(self):
        exported = {
            "counters": {"kernel.fallback": 2, "kernel.fallback.tracing": 2}
        }
        assert _kernel_line(exported) == "kernel: 2 scalar fallback(s) (2 tracing)"

    def test_fleet_line_golden(self):
        exported = {
            "counters": {
                "fleet.users": 500,
                "fleet.shards": 2,
                "fleet.journal.hit": 1,
            },
            "timers": {
                "fleet.run": {"calls": 1, "total_s": 2.0, "min_s": 2.0, "max_s": 2.0}
            },
        }
        assert _fleet_line(exported) == (
            "fleet: 500 user(s) over 2 shard(s), 1 journal hit(s), 250 users/s"
        )

    def test_fleet_line_none_without_fleet(self):
        assert _fleet_line({"counters": {}, "timers": {}}) is None

    def test_metrics_section_orders_fleet_after_kernel(self):
        metrics = MetricsRegistry()
        metrics.inc("kernel.fallback")
        metrics.inc("fleet.users", 10)
        metrics.inc("fleet.shards", 1)
        lines = _metrics_section(metrics)
        kernel_at = next(i for i, l in enumerate(lines) if l.startswith("kernel:"))
        fleet_at = next(i for i, l in enumerate(lines) if l.startswith("fleet:"))
        assert kernel_at < fleet_at


class TestRenderReport:
    def test_full_report_contains_golden_fragments(self, run_events):
        report = render_report({"schema_version": 2, "meta": {}}, run_events)
        assert "runs in trace: 1" in report
        assert "run #0: origin-6 (seed 3, 6 slots)" in report
        assert "  node 0   |aaC...|" in report
        assert "  node 1   |...d!.|" in report
        assert "  host     |  V   |" in report
        assert "fault ledger:" in report
        assert "  slot     4  node 1    power_down" in report

    def test_run_index_out_of_range(self, run_events):
        with pytest.raises(IndexError, match="out of range"):
            render_report(
                {"schema_version": 2}, run_events, run_index=5
            )


class TestArtifactSections:
    def test_fleet_journal_lines_golden(self, tmp_path):
        path = tmp_path / "fleet.journal"
        rows = [
            {"kind": "sweep-journal", "schema_version": 1, "fingerprint": "f"},
            {"kind": "cell", "cell": "shard:0-3", "payload": {}},
            {"kind": "cell", "cell": "shard:3-6", "payload": {}},
            {"kind": "cell", "cell": "policy:origin-6:3", "payload": {}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert fleet_journal_lines(str(path)) == [
            "fleet journal: 2 shard(s) checkpointed, 6 user(s)",
            "  plus 1 non-shard cell(s) (sweep journal?)",
        ]

    def test_timeseries_lines_golden(self, tmp_path):
        clock_now = [100.0]
        metrics = MetricsRegistry()
        recorder = TimeSeriesRecorder(
            metrics,
            str(tmp_path / "ts.jsonl"),
            interval_s=0.0,
            clock=lambda: clock_now[0],
        )
        metrics.counter("fleet.progress.users").inc(2)
        recorder.sample(force=True)
        clock_now[0] += 2.0
        metrics.counter("fleet.progress.users").inc(4)
        recorder.sample(force=True)
        recorder.mark("fleet.run.finished")
        recorder.close(final_sample=False)
        assert timeseries_lines(str(tmp_path / "ts.jsonl")) == [
            "timeseries: 2 sample(s), 1 mark(s) over 2.0 s",
            "  fleet.progress.users: 6 total, 2.0 users/s",
            "  mark 2.0s: fleet.run.finished",
        ]


class TestCLI:
    def test_no_inputs_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "--metrics/--fleet-journal/--timeseries" in capsys.readouterr().err

    def test_metrics_only_report(self, tmp_path, capsys):
        metrics = MetricsRegistry()
        metrics.inc("fleet.users", 12)
        metrics.inc("fleet.shards", 3)
        snapshot = tmp_path / "metrics.json"
        snapshot.write_text(json.dumps(metrics.to_dict()))
        assert main(["--metrics", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("metrics report")
        assert "fleet: 12 user(s) over 3 shard(s)" in out

    def test_artifact_only_report_and_output_file(self, tmp_path, capsys):
        journal = tmp_path / "fleet.journal"
        journal.write_text(
            json.dumps({"kind": "sweep-journal", "schema_version": 1}) + "\n"
            + json.dumps({"kind": "cell", "cell": "shard:0-4", "payload": {}}) + "\n"
        )
        report_path = tmp_path / "report.txt"
        assert main(
            ["--fleet-journal", str(journal), "--output", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet journal: 1 shard(s) checkpointed, 4 user(s)" in out
        assert report_path.read_text().startswith("fleet journal:")
