"""Tests for repro.datasets.activities and .body."""

import pytest

from repro.datasets.activities import Activity, ActivityProfile, activity_catalog, profile_of
from repro.datasets.body import DEPLOYMENT_ORDER, BodyLocation
from repro.errors import DatasetError


class TestActivity:
    def test_six_activities(self):
        assert len(Activity) == 6

    def test_label_capitalized(self):
        assert Activity.WALKING.label == "Walking"

    def test_str(self):
        assert str(Activity.CYCLING) == "cycling"


class TestActivityProfile:
    def test_catalog_covers_all(self):
        profiles = activity_catalog(list(Activity))
        assert len(profiles) == len(Activity)
        assert all(isinstance(p, ActivityProfile) for p in profiles)

    def test_order_preserved(self):
        order = [Activity.RUNNING, Activity.WALKING]
        profiles = activity_catalog(order)
        assert [p.activity for p in profiles] == order

    def test_running_faster_than_walking(self):
        assert profile_of(Activity.RUNNING).cadence_hz > profile_of(Activity.WALKING).cadence_hz

    def test_jumping_most_intense(self):
        intensities = {a: profile_of(a).intensity for a in Activity}
        assert max(intensities, key=intensities.get) is Activity.JUMPING

    def test_positive_dwell(self):
        for activity in Activity:
            assert profile_of(activity).mean_dwell_s > 0

    @pytest.mark.parametrize(
        "kwargs", [dict(cadence_hz=0), dict(intensity=-1), dict(mean_dwell_s=0)]
    )
    def test_invalid_profile_rejected(self, kwargs):
        params = dict(cadence_hz=1.0, intensity=1.0, mean_dwell_s=10.0)
        params.update(kwargs)
        with pytest.raises(DatasetError):
            ActivityProfile(Activity.WALKING, **params)


class TestBodyLocation:
    def test_three_locations(self):
        assert len(BodyLocation) == 3

    def test_deployment_order_is_papers(self):
        assert DEPLOYMENT_ORDER == (
            BodyLocation.CHEST,
            BodyLocation.RIGHT_WRIST,
            BodyLocation.LEFT_ANKLE,
        )

    def test_labels(self):
        assert BodyLocation.LEFT_ANKLE.label == "Left Ankle"
