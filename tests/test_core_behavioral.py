"""Behavioral tests of the core mechanisms, end to end but cheap."""

import numpy as np
import pytest

from repro.core.ensemble import ConfidenceMatrix, MajorityVote, WeightedMajorityVote
from repro.core.policies import aas_policy, aasr_policy, origin_policy, rr_policy
from repro.core.scheduling import ActivityAwareScheduler, ExtendedRoundRobin, RankTable
from repro.core.scheduling.base import SchedulingContext
from repro.wsn.host import ReceivedVote


def vote(node_id, label, confidence=0.1, started_slot=0):
    return ReceivedVote(node_id, label, confidence, None, started_slot, started_slot)


class TestAnticipationDrivesSelection:
    """AAS must track the anticipated activity as it changes."""

    def make(self):
        base = ExtendedRoundRobin.from_rr_length([0, 1, 2], 3)
        table = RankTable({0: [0, 1, 2], 1: [1, 2, 0], 2: [2, 0, 1]})
        return ActivityAwareScheduler(base, table, cooldown_slots=0)

    def context(self, anticipated):
        return SchedulingContext(
            node_energy_j={n: 1.0 for n in range(3)},
            node_ready={n: True for n in range(3)},
            anticipated_label=anticipated,
        )

    def test_follows_anticipation_changes(self):
        scheduler = self.make()
        assert scheduler.active_nodes(0, self.context(0)) == [0]
        assert scheduler.active_nodes(1, self.context(1)) == [1]
        assert scheduler.active_nodes(2, self.context(2)) == [2]

    def test_sticky_best_sensor_without_cooldown(self):
        scheduler = self.make()
        chosen = [scheduler.active_nodes(s, self.context(1))[0] for s in range(6)]
        assert chosen == [1] * 6


class TestRecallEnsembleSemantics:
    def test_weighted_vote_downweights_confused_sensor(self):
        # Sensor 0 is flat/confused about class 0; sensors 1, 2 carry
        # real confidence about class 1.
        matrix = ConfidenceMatrix(
            {0: [0.001, 0.001], 1: [0.08, 0.10], 2: [0.07, 0.09]}
        )
        voter = WeightedMajorityVote(matrix, blend=0.0)
        votes = [vote(0, 0), vote(1, 1), vote(2, 1)]
        assert voter(votes, 0) == 1

    def test_weighted_differs_from_majority_when_weights_skew(self):
        matrix = ConfidenceMatrix({0: [0.2, 0.0], 1: [0.01, 0.01], 2: [0.01, 0.01]})
        weighted = WeightedMajorityVote(matrix, blend=0.0)
        naive = MajorityVote()
        votes = [
            vote(0, 0, confidence=0.2),
            vote(1, 1, confidence=0.01),
            vote(2, 1, confidence=0.01),
        ]
        assert naive(votes, 0) == 1  # two beats one
        assert weighted(votes, 0) == 0  # but node 0's weight dominates

    def test_adaptation_tracks_transmitted_confidence(self):
        matrix = ConfidenceMatrix({0: [0.05, 0.05]}, adaptation_alpha=1.0)
        matrix.update(0, 1, confidence=0.13)
        assert matrix.raw_weight(0, 1) == pytest.approx(0.13)
        # alpha=1: the matrix *is* the last transmitted confidence.


class TestPolicyLadderInvariants:
    """Cheap structural invariants of the policy specs themselves."""

    @pytest.mark.parametrize("rr_length", [3, 6, 9, 12])
    def test_ladder_shares_cadence(self, rr_length):
        table = RankTable({0: [0, 1, 2], 1: [0, 1, 2]})
        nodes = [0, 1, 2]
        schedulers = [
            spec.make_scheduler(nodes, table)
            for spec in (
                rr_policy(rr_length),
                aas_policy(rr_length),
                aasr_policy(rr_length),
                origin_policy(rr_length),
            )
        ]
        context = SchedulingContext(
            node_energy_j={n: 1.0 for n in nodes},
            node_ready={n: True for n in nodes},
            anticipated_label=None,
        )
        # Identical compute-slot cadence across the ladder: the rungs
        # differ in WHO computes and HOW results aggregate, never WHEN.
        for slot in range(2 * rr_length):
            actives = [len(s.active_nodes(slot, context)) for s in schedulers]
            assert len(set(actives)) == 1

    def test_ladder_names_match_paper_legend(self):
        assert rr_policy(9).name == "RR9"
        assert aas_policy(9).name == "RR9 AAS"
        assert aasr_policy(9).name == "RR9 AASR"
        assert origin_policy(9).name == "RR9 Origin"


class TestConfidenceSeedingProperty:
    def test_seeded_rows_reflect_model_sharpness(self, tiny_bundle):
        """A row's magnitude tracks how peaked the model's softmax is on
        the classes it predicts — never negative, never above the
        one-hot variance bound."""
        from repro.utils.stats import max_confidence

        matrix = tiny_bundle.confidence_matrix
        bound = max_confidence(matrix.n_classes)
        array = matrix.as_array()
        assert (array >= 0).all()
        assert (array <= bound + 1e-9).all()
