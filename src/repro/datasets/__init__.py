"""Synthetic multi-position HAR datasets.

The paper evaluates on MHEALTH and PAMAP2 — real IMU recordings from
body-worn sensors at three locations.  Those recordings are not available
offline, so this package synthesizes statistically similar data:

* each (activity, body location) pair has a characteristic periodic
  signature (fundamental frequency, harmonic profile, per-axis amplitude
  and gravity orientation) — see :mod:`repro.datasets.profiles`;
* per-location discriminability is calibrated to the paper's Fig. 2
  (ankle strongest overall, chest best for climbing, wrist weakest);
* subjects differ by gait transforms (frequency/amplitude scaling,
  phase, channel gains) — see :class:`SubjectProfile`;
* activity *sequences* have temporal continuity via a Markov dwell model
  — the property every Origin mechanism exploits.
"""

from repro.datasets.activities import Activity, ActivityProfile, activity_catalog
from repro.datasets.body import BodyLocation
from repro.datasets.markov import MarkovActivityModel, ActivitySegment, segments_to_window_labels
from repro.datasets.noise import add_gaussian_noise_snr
from repro.datasets.profiles import SignatureTable, mhealth_signatures, pamap2_signatures
from repro.datasets.subjects import SubjectProfile, sample_subjects
from repro.datasets.synthesis import SignalSynthesizer, StyleWobble
from repro.datasets.base import DatasetSpec, HARDataset, LabeledWindows
from repro.datasets.mhealth import MHEALTH_ACTIVITIES, make_mhealth, mhealth_spec
from repro.datasets.pamap2 import PAMAP2_ACTIVITIES, make_pamap2, pamap2_spec
from repro.datasets.windows import window_count, window_start_times

__all__ = [
    "Activity",
    "ActivityProfile",
    "activity_catalog",
    "BodyLocation",
    "MarkovActivityModel",
    "ActivitySegment",
    "segments_to_window_labels",
    "add_gaussian_noise_snr",
    "SignatureTable",
    "mhealth_signatures",
    "pamap2_signatures",
    "SubjectProfile",
    "sample_subjects",
    "SignalSynthesizer",
    "StyleWobble",
    "DatasetSpec",
    "HARDataset",
    "LabeledWindows",
    "MHEALTH_ACTIVITIES",
    "make_mhealth",
    "mhealth_spec",
    "PAMAP2_ACTIVITIES",
    "make_pamap2",
    "pamap2_spec",
    "window_count",
    "window_start_times",
]
