"""Complete system configurations.

A :class:`PolicySpec` names everything the simulator needs to run one of
the paper's configurations: the ER-r cycle length, whether scheduling is
activity-aware, how the host aggregates (last inference only, naive
majority over recall, or confidence-weighted majority), and whether the
confidence matrix adapts online.

The paper's ladder (Figs. 4-5):

=====================  ==============================================
``rr_policy(n)``       plain ER-r, last completed inference wins
``aas_policy(n)``      + activity-aware sensor selection
``aasr_policy(n)``     + recall at the host, naive majority voting
``origin_policy(n)``   + adaptive confidence-weighted voting (Origin)
=====================  ==============================================

plus the two fully-powered baselines (``Baseline1``/``Baseline2``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.scheduling.aas import ActivityAwareScheduler
from repro.core.scheduling.rank_table import RankTable
from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.core.scheduling.base import SchedulingPolicy
from repro.errors import ConfigurationError


class AggregationMode(enum.Enum):
    """How the final per-window classification is produced."""

    #: The most recent completed inference's label (no ensemble).
    LAST_INFERENCE = "last_inference"
    #: Naive majority over every node's recalled last classification.
    MAJORITY_RECALL = "majority_recall"
    #: Confidence-matrix-weighted majority over recalled votes.
    CONFIDENCE_RECALL = "confidence_recall"


@dataclass(frozen=True)
class PolicySpec:
    """One runnable system configuration.

    Attributes
    ----------
    name:
        Display name matching the paper's figure legends.
    rr_length:
        ER-r cycle length (3, 6, 9, 12 for three nodes).
    activity_aware:
        Whether AAS replaces the fixed round-robin turn order.
    aggregation:
        Host-side aggregation mode.
    adaptive_confidence:
        Whether the confidence matrix updates online (Origin only).
    """

    name: str
    rr_length: int
    activity_aware: bool
    aggregation: AggregationMode
    adaptive_confidence: bool = False
    all_on: bool = False

    def __post_init__(self) -> None:
        if self.rr_length < 1:
            raise ConfigurationError(f"rr_length must be >= 1, got {self.rr_length}")
        if (
            self.adaptive_confidence
            and self.aggregation is not AggregationMode.CONFIDENCE_RECALL
        ):
            raise ConfigurationError(
                "adaptive_confidence requires CONFIDENCE_RECALL aggregation"
            )
        if self.all_on and self.activity_aware:
            raise ConfigurationError("all_on (naive) scheduling cannot be activity-aware")

    @property
    def uses_recall(self) -> bool:
        """Whether non-active sensors vote via recall."""
        return self.aggregation is not AggregationMode.LAST_INFERENCE

    @property
    def uses_confidence_matrix(self) -> bool:
        """Whether voting is confidence-weighted."""
        return self.aggregation is AggregationMode.CONFIDENCE_RECALL

    def make_scheduler(
        self, node_ids: Sequence[int], rank_table: Optional[RankTable]
    ) -> SchedulingPolicy:
        """Instantiate this spec's scheduler for a deployment."""
        from repro.core.scheduling.naive import NaiveAllOn

        if self.all_on:
            return NaiveAllOn(list(node_ids))
        base = ExtendedRoundRobin.from_rr_length(list(node_ids), self.rr_length)
        if not self.activity_aware:
            return base
        if rank_table is None:
            raise ConfigurationError(f"{self.name} needs a rank table")
        # Recall ensembles need every sensor's recalled vote to stay
        # fresh, so they rest sensors longer (full rotation); plain AAS
        # maximizes time-on-best-sensor instead.
        cooldown = (
            ActivityAwareScheduler.cooldown_for_recall(base)
            if self.uses_recall
            else None
        )
        return ActivityAwareScheduler(base, rank_table, cooldown_slots=cooldown)


# ---------------------------------------------------------------------------
# the paper's ladder
# ---------------------------------------------------------------------------


def naive_policy(n_nodes: int = 3) -> PolicySpec:
    """Every node attempts every window (Fig. 1a's strawman)."""
    return PolicySpec(
        name="Naive all-on",
        rr_length=n_nodes,
        activity_aware=False,
        aggregation=AggregationMode.LAST_INFERENCE,
        all_on=True,
    )


def rr_policy(rr_length: int) -> PolicySpec:
    """Plain extended round-robin (``RR3`` .. ``RR12``)."""
    return PolicySpec(
        name=f"RR{rr_length}",
        rr_length=rr_length,
        activity_aware=False,
        aggregation=AggregationMode.LAST_INFERENCE,
    )


def aas_policy(rr_length: int) -> PolicySpec:
    """ER-r with activity-aware scheduling."""
    return PolicySpec(
        name=f"RR{rr_length} AAS",
        rr_length=rr_length,
        activity_aware=True,
        aggregation=AggregationMode.LAST_INFERENCE,
    )


def aasr_policy(rr_length: int) -> PolicySpec:
    """AAS plus recall with naive majority voting."""
    return PolicySpec(
        name=f"RR{rr_length} AASR",
        rr_length=rr_length,
        activity_aware=True,
        aggregation=AggregationMode.MAJORITY_RECALL,
    )


def origin_policy(rr_length: int, *, adaptive: bool = True) -> PolicySpec:
    """Origin: AASR plus the (adaptive) confidence matrix."""
    suffix = "" if adaptive else " (static)"
    return PolicySpec(
        name=f"RR{rr_length} Origin{suffix}",
        rr_length=rr_length,
        activity_aware=True,
        aggregation=AggregationMode.CONFIDENCE_RECALL,
        adaptive_confidence=adaptive,
    )


class OriginPolicy:
    """Convenience namespace: ``OriginPolicy.with_rr(12)``."""

    @staticmethod
    def with_rr(rr_length: int, *, adaptive: bool = True) -> PolicySpec:
        """Origin at the given ER-r cycle length."""
        return origin_policy(rr_length, adaptive=adaptive)


# ---------------------------------------------------------------------------
# fully-powered baselines
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineSpec:
    """A fully-powered majority-voting baseline (paper §IV-C).

    Both baselines run every sensor on every window from a steady power
    source and aggregate with naive majority voting; they differ only in
    whether the DNNs are energy-aware pruned.
    """

    name: str
    pruned: bool


#: Original (unpruned) per-location DNNs on steady power.
Baseline1 = BaselineSpec(name="Baseline-1", pruned=False)

#: DNNs pruned to the average harvested power budget, on steady power.
Baseline2 = BaselineSpec(name="Baseline-2", pruned=True)
