"""Energy-harvesting sensor node.

One node = IMU + RF harvester + capacitor + NVP compute + radio.  The
node lives in discrete scheduling slots (one IMU window per slot):

* every slot it harvests into its capacitor (and leaks);
* on an *active* slot it senses a window and runs (or resumes) an
  inference on the NVP, spending stored energy;
* a completed inference yields an :class:`InferenceOutcome` carrying the
  softmax vector and the paper's variance-of-softmax confidence score.

Because the NVP checkpoints, an inference may span several active slots;
the outcome then reports the slot whose window was actually classified
(``started_slot``), which is how recall staleness enters the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Iterable, Optional

import numpy as np

from repro.datasets.body import BodyLocation
from repro.energy.harvester import Harvester
from repro.energy.nvp import NonVolatileProcessor, TaskState
from repro.energy.storage import Capacitor
from repro.errors import SimulationError
from repro.nn.model import Sequential
from repro.obs.observer import NULL_OBS, Observability
from repro.utils.stats import confidence_from_softmax
from repro.utils.validation import check_non_negative, check_positive
from repro.wsn.comm import CommLink

#: NVP observer event -> trace kind (precomputed: the observer fires on
#: every burst, so no string formatting on the hot path).
_NVP_TRACE_KINDS = {
    "task_started": "nvp.task_started",
    "burst": "nvp.burst",
    "task_aborted": "nvp.task_aborted",
}


@dataclass(frozen=True)
class NodeCosts:
    """Per-slot energy costs besides the DNN itself."""

    sense_j: float = 8e-6  # IMU sampling + buffering for one window
    idle_j: float = 0.5e-6  # sleep-mode controller draw per slot
    result_message_bytes: int = 6  # class id + confidence + header

    def __post_init__(self) -> None:
        check_non_negative("sense_j", self.sense_j)
        check_non_negative("idle_j", self.idle_j)
        if self.result_message_bytes < 1:
            raise SimulationError("result_message_bytes must be >= 1")


@dataclass
class NodeStats:
    """Cumulative counters for one node."""

    slots: int = 0
    active_slots: int = 0
    attempts_started: int = 0
    completions: int = 0
    failed_active_slots: int = 0
    harvested_j: float = 0.0
    consumed_j: float = 0.0
    comm_j: float = 0.0
    leaked_j: float = 0.0

    @property
    def completion_rate(self) -> float:
        """Completions per active slot (0 when never active)."""
        return self.completions / self.active_slots if self.active_slots else 0.0

    @classmethod
    def merged(cls, stats: Iterable["NodeStats"]) -> "NodeStats":
        """Field-wise sum over several runs' counters for one node."""
        total = cls()
        for entry in stats:
            for field_ in fields(cls):
                setattr(
                    total,
                    field_.name,
                    getattr(total, field_.name) + getattr(entry, field_.name),
                )
        return total


@dataclass(frozen=True)
class InferenceOutcome:
    """What one active slot produced.

    ``delivered``/``reported_label`` describe what the radio link did to
    the result message: a dropped message never reaches the host (though
    its energy was spent), and a corrupted one arrives with
    ``reported_label`` in place of the true prediction.
    """

    node_id: int
    location: BodyLocation
    slot_index: int
    started_slot: int
    completed: bool
    predicted_label: Optional[int] = None
    probabilities: Optional[np.ndarray] = None
    confidence: Optional[float] = None
    energy_consumed_j: float = 0.0
    delivered: bool = True
    reported_label: Optional[int] = None

    def __post_init__(self) -> None:
        if self.completed and (self.predicted_label is None or self.probabilities is None):
            raise SimulationError("completed outcome must carry a prediction")

    @property
    def delivered_label(self) -> Optional[int]:
        """The label as the host receives it (garbled if corrupted)."""
        return self.reported_label if self.reported_label is not None else self.predicted_label


class SensorNode:
    """One energy-harvesting HAR sensor node.

    Parameters
    ----------
    node_id / location:
        Identity and body placement.
    model:
        The (possibly pruned) per-location classifier.
    inference_energy_j:
        Useful work one inference requires (from the energy model).
    harvester / capacitor / nvp / comm:
        Substrate components (each independently configurable).
    costs:
        Non-DNN energy costs.
    slot_duration_s:
        Scheduling-slot length (= IMU window duration).
    max_task_age_slots:
        Abort an in-flight inference older than this many slots (its
        window is too stale to be useful); ``None`` keeps it forever.
    """

    def __init__(
        self,
        node_id: int,
        location: BodyLocation,
        model: Sequential,
        inference_energy_j: float,
        harvester: Harvester,
        capacitor: Capacitor,
        nvp: NonVolatileProcessor,
        comm: CommLink,
        *,
        costs: NodeCosts = NodeCosts(),
        slot_duration_s: float = 2.56,
        max_task_age_slots: Optional[int] = None,
    ) -> None:
        self.node_id = int(node_id)
        self.location = location
        self.model = model
        self.inference_energy_j = check_positive("inference_energy_j", inference_energy_j)
        self.harvester = harvester
        self.capacitor = capacitor
        self.nvp = nvp
        self.comm = comm
        self.costs = costs
        self.slot_duration_s = check_positive("slot_duration_s", slot_duration_s)
        if max_task_age_slots is not None and max_task_age_slots < 1:
            raise SimulationError("max_task_age_slots must be >= 1 or None")
        self.max_task_age_slots = max_task_age_slots
        self.stats = NodeStats()
        #: Fault surface: ``online`` flips on brownout/death (driven by
        #: the fault engine), ``harvest_gate`` multiplies each slot's
        #: harvested energy (shadowing windows).
        self.online: bool = True
        self.harvest_gate: Optional[Callable[[int], float]] = None
        #: Performance surface: when the experiment precomputed this
        #: node's softmax for every slot (see repro.sim.predcache), a
        #: ``(n_slots, n_classes)`` array is installed here and a
        #: completed inference reads row ``started_slot`` instead of
        #: running a batch-of-1 forward pass.
        self.prediction_cache: Optional[np.ndarray] = None
        #: Observability surface: a disabled bundle by default; the
        #: experiment swaps in its own via :meth:`attach_obs`.
        self.obs: Observability = NULL_OBS
        self._pending_window: Optional[np.ndarray] = None
        self._pending_slot: Optional[int] = None
        self._slot_energies: Optional[np.ndarray] = None
        self._current_slot = 0
        self._slot_scope = None
        self._span_hist = None

    def attach_obs(self, obs: Observability) -> None:
        """Install an observability bundle (and the NVP's trace hook).

        The per-slot timer scope and the completion-span histogram are
        resolved once here so the per-slot path touches no registry.
        """
        self.obs = obs
        if obs.enabled:
            self._slot_scope = obs.timed("nvp.active_slot")
            self._span_hist = obs.metrics.histogram("nvp.slots_per_inference")
        else:
            self._slot_scope = None
            self._span_hist = None
        if obs.enabled and obs.tracer.enabled:
            tracer = obs.tracer

            def nvp_observer(event: str, payload: dict) -> None:
                tracer.append(
                    _NVP_TRACE_KINDS[event],
                    self._current_slot,
                    self.node_id,
                    payload,
                )

            self.nvp.observer = nvp_observer
        else:
            self.nvp.observer = None

    # ------------------------------------------------------------------
    # per-slot lifecycle
    # ------------------------------------------------------------------

    def _slot_harvest(self, slot_index: int) -> float:
        if self._slot_energies is None:
            self._slot_energies = self.harvester.slot_energies(self.slot_duration_s)
        if slot_index < self._slot_energies.size:
            return float(self._slot_energies[slot_index])
        return 0.0

    def slot_energy_vector(self, n_slots: int) -> np.ndarray:
        """Per-slot harvest energy over ``n_slots`` slots (kernel feed).

        Slots beyond the harvest trace contribute exactly 0.0 — the same
        out-of-range fallback :meth:`_slot_harvest` applies, so a lane
        fed from this vector sees byte-identical deposits.
        """
        if self._slot_energies is None:
            self._slot_energies = self.harvester.slot_energies(self.slot_duration_s)
        vec = np.asarray(self._slot_energies, dtype=np.float64)
        if vec.size >= n_slots:
            return vec[:n_slots].copy()
        # Zero-pad past the trace end (same as the harvester's
        # slot_energies(..., n_slots=...) scan-friendly form).
        out = np.zeros(n_slots, dtype=np.float64)
        out[: vec.size] = vec
        return out

    def harvest(self, slot_index: int) -> float:
        """Harvest this slot's energy into the capacitor; returns joules."""
        energy = self._slot_harvest(slot_index)
        if self.harvest_gate is not None:
            energy *= self.harvest_gate(slot_index)
        accepted = self.capacitor.deposit(energy)
        leaked = self.capacitor.leak(self.slot_duration_s)
        idle = self.capacitor.draw(min(self.costs.idle_j, self.capacitor.stored_j))
        self.stats.harvested_j += accepted
        self.stats.consumed_j += idle
        self.stats.leaked_j += leaked
        self.stats.slots += 1
        return accepted

    def idle_slot(self, slot_index: int) -> None:
        """A slot in which this node only harvests."""
        self.harvest(slot_index)

    def active_slot(self, slot_index: int, window: np.ndarray) -> InferenceOutcome:
        """Harvest, then sense/run (or resume) an inference.

        Returns the slot's outcome; ``completed=False`` means the node
        made partial progress (NVP) or lost its progress (volatile).
        """
        if self._slot_scope is None:
            return self._active_slot(slot_index, window)
        # The ROADMAP hot path: per-slot wall time lands in the
        # "nvp.active_slot" timer when observability is on.
        with self._slot_scope:
            return self._active_slot(slot_index, window)

    def _active_slot(self, slot_index: int, window: np.ndarray) -> InferenceOutcome:
        obs = self.obs
        trace = obs.tracer
        self._current_slot = slot_index
        self.harvest(slot_index)
        self.stats.active_slots += 1

        # Expire a too-stale in-flight task before deciding what to run.
        if (
            self.nvp.state is TaskState.IN_PROGRESS
            and self.max_task_age_slots is not None
            and self._pending_slot is not None
            and slot_index - self._pending_slot >= self.max_task_age_slots
        ):
            self.nvp.abort()
            self._pending_window = None
            self._pending_slot = None
            if trace.enabled:
                trace.append(
                    "inference.aborted", slot_index, self.node_id, {"reason": "stale"}
                )

        if self.nvp.state is TaskState.IDLE:
            # Fresh inference: sense the current window first.
            sense = self.capacitor.draw(min(self.costs.sense_j, self.capacitor.stored_j))
            self.stats.consumed_j += sense
            if sense < self.costs.sense_j:
                self.stats.failed_active_slots += 1
                return InferenceOutcome(
                    self.node_id, self.location, slot_index, slot_index, False,
                    energy_consumed_j=sense,
                )
            self._pending_window = np.asarray(window)
            self._pending_slot = slot_index
            if trace.enabled:
                trace.append("window.sensed", slot_index, self.node_id, {})
            self.nvp.start_task(self.inference_energy_j)
            self.stats.attempts_started += 1

        burst = self.nvp.execute_burst(self.capacitor.stored_j)
        self.capacitor.draw(burst.consumed_j)
        self.stats.consumed_j += burst.consumed_j

        if not burst.completed:
            self.stats.failed_active_slots += 1
            started = self._pending_slot if self._pending_slot is not None else slot_index
            if self.nvp.volatile:
                # A volatile MCU loses the work and must restart on a
                # fresh window next time (the Fig. 1 hardware).
                self.nvp.abort()
                self._pending_window = None
                self._pending_slot = None
                if trace.enabled:
                    trace.append(
                        "inference.aborted",
                        slot_index,
                        self.node_id,
                        {"reason": "volatile"},
                    )
            return InferenceOutcome(
                self.node_id, self.location, slot_index, started,
                False, energy_consumed_j=burst.consumed_j,
            )

        # Completed: classify the buffered window and report.  The
        # window's softmax either comes from the run's precompute (the
        # row for the slot whose window was buffered) or from the
        # model directly.
        self.nvp.acknowledge_completion()
        started_slot = self._pending_slot
        if self.prediction_cache is not None and started_slot is not None:
            probabilities = self.prediction_cache[started_slot]
        else:
            probabilities = self.model.predict_proba(self._pending_window[None, ...])[0]
        self._pending_window = None
        self._pending_slot = None
        self.stats.completions += 1

        predicted = int(probabilities.argmax())
        confidence = confidence_from_softmax(probabilities)
        sent = self.comm.transmit(
            self.costs.result_message_bytes, slot_index, predicted
        )
        paid = self.capacitor.draw(min(sent.cost_j, self.capacitor.stored_j))
        self.stats.comm_j += paid
        self.stats.consumed_j += paid

        if obs.enabled:
            # Completed-inference span: how many slots the NVP needed
            # from sensing to completion (recall staleness's source).
            span = slot_index - started_slot + 1 if started_slot is not None else 1
            self._span_hist.observe(span)
            if trace.enabled:
                trace.append(
                    "inference.completed",
                    slot_index,
                    self.node_id,
                    {
                        "started_slot": started_slot,
                        "label": predicted,
                        "confidence": float(confidence),
                        "delivered": sent.delivery.delivered,
                    },
                )
                trace.append(
                    "message.sent",
                    slot_index,
                    self.node_id,
                    {
                        "bytes": self.costs.result_message_bytes,
                        "cost_j": sent.cost_j,
                        "delivered": sent.delivery.delivered,
                        "corrupted": sent.delivery.corrupted,
                    },
                )
                if not sent.delivery.delivered:
                    trace.append("message.dropped", slot_index, self.node_id, {})

        return InferenceOutcome(
            node_id=self.node_id,
            location=self.location,
            slot_index=slot_index,
            started_slot=started_slot,
            completed=True,
            predicted_label=predicted,
            probabilities=probabilities,
            confidence=confidence,
            energy_consumed_j=burst.consumed_j + paid,
            delivered=sent.delivery.delivered,
            reported_label=(
                sent.delivery.label if sent.delivery.corrupted else None
            ),
        )

    # ------------------------------------------------------------------

    @property
    def stored_energy_j(self) -> float:
        """Current capacitor charge."""
        return self.capacitor.stored_j

    def power_down(self) -> None:
        """Brownout or death: lose in-flight work and all stored charge.

        The NVP checkpoint survives *power interruptions*, not a supply
        collapse long enough to brown the node out — the task is gone
        and the capacitor is empty when (if) power returns.
        """
        self.nvp.abort()
        self._pending_window = None
        self._pending_slot = None
        self.capacitor.draw(self.capacitor.stored_j)
        self.online = False

    def power_up(self) -> None:
        """Supply restored after a brownout (capacitor still empty)."""
        self.online = True

    def offline_slot(self, slot_index: int) -> None:
        """A slot spent dark: no harvest, no leak, no compute."""
        self.stats.slots += 1

    def can_start_inference(self) -> bool:
        """Whether a fresh inference could finish within one burst now.

        Used by activity-aware scheduling's energy check: the current
        best sensor passes the job on when it predicts it cannot finish.
        """
        needed = self.costs.sense_j + self.inference_energy_j / (
            1.0 - self.nvp.checkpoint_overhead
        )
        return self.capacitor.stored_j >= needed

    def reset(self) -> None:
        """Clear all mutable state (capacitor, NVP, stats, pending task).

        Also drops the cached per-slot harvest vector so a node reset
        after a harvester swap/re-seed re-derives it instead of silently
        replaying the old one.
        """
        self.capacitor.reset()
        self.nvp.abort()
        self.stats = NodeStats()
        self.online = True
        self._pending_window = None
        self._pending_slot = None
        self._slot_energies = None
        self._current_slot = 0
