"""Figure/table renderers (see package docstring)."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.datasets.activities import Activity
from repro.sim.completion import CompletionStudyResult
from repro.sim.personalization import PersonalizationResult
from repro.sim.sweep import SweepResult
from repro.utils.text import format_table, horizontal_bar_chart


def render_fig1_completion(study: CompletionStudyResult) -> str:
    """Fig. 1: inference completion under naive and RR3 scheduling."""
    lines = ["=== Fig. 1: inference completion on harvested energy ==="]
    lines.append(
        horizontal_bar_chart(
            {
                "All succeed": study.naive.all_fraction * 100,
                "At least one": study.naive.any_fraction * 100,
                "Failed": study.naive.failed_fraction * 100,
            },
            max_value=100,
            title="(a) naive: all sensors attempt every window",
            unit="%",
        )
    )
    lines.append(
        horizontal_bar_chart(
            {
                "Succeeded": study.round_robin.any_fraction * 100,
                "Failed": study.round_robin.failed_fraction * 100,
            },
            max_value=100,
            title="(b) plain round-robin (RR3)",
            unit="%",
        )
    )
    lines.append(
        "paper: (a) ~1% all / ~9% at-least-one / ~90% failed; (b) 28% / 72%"
    )
    return "\n\n".join(lines)


def render_fig2_sensor_accuracy(
    activities: Sequence[Activity],
    per_sensor: Mapping[str, Mapping[Activity, float]],
    majority: Mapping[Activity, float],
) -> str:
    """Fig. 2: per-sensor DNN accuracy + majority voting, per activity."""
    headers = ["Activity"] + list(per_sensor) + ["Majority Voting"]
    rows = []
    for activity in activities:
        row = [activity.label]
        row.extend(per_sensor[name][activity] * 100 for name in per_sensor)
        row.append(majority[activity] * 100)
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="=== Fig. 2: individual DNN accuracy and majority voting (%) ===",
    )


def render_fig3_schedules(node_ids: Sequence[int], rr_lengths: Sequence[int]) -> str:
    """Fig. 3: the extended round-robin cycle layouts."""
    lines = ["=== Fig. 3: extended round-robin flavors ==="]
    for rr_length in rr_lengths:
        policy = ExtendedRoundRobin.from_rr_length(list(node_ids), rr_length)
        lines.append(policy.describe())
        lines.append(
            f"  compute slots per cycle: "
            f"{sum(policy.is_compute_slot(s) for s in range(policy.cycle_length))}"
            f" / {policy.cycle_length} "
            f"(harvest window per node: {policy.cycle_length} slots)"
        )
    return "\n".join(lines)


def _policy_table(
    title: str,
    activities: Sequence[Activity],
    columns: Mapping[str, Mapping[Activity, float]],
    overall: Mapping[str, float],
) -> str:
    headers = ["Activity"] + list(columns)
    rows = []
    for activity in activities:
        row = [activity.label]
        row.extend(columns[name].get(activity, float("nan")) * 100 for name in columns)
        rows.append(row)
    rows.append(["Overall"] + [overall[name] * 100 for name in columns])
    return format_table(headers, rows, title=title)


def render_fig4_aas(
    activities: Sequence[Activity],
    columns: Mapping[str, Mapping[Activity, float]],
    overall: Mapping[str, float],
) -> str:
    """Fig. 4: ER-r with and without activity-aware scheduling (%)."""
    return _policy_table(
        "=== Fig. 4: AAS combined with extended round-robin (%) ===",
        activities,
        columns,
        overall,
    )


def render_fig5_policies(dataset_name: str, sweep: SweepResult) -> str:
    """Fig. 5: the full policy ladder plus both baselines (%)."""
    return _policy_table(
        f"=== Fig. 5: accuracy of all policies, {dataset_name} (%) ===",
        sweep.activities,
        sweep.accuracy_table(),
        sweep.overall_accuracy(),
    )


def render_table1(sweep: SweepResult, origin_name: str = "RR12 Origin") -> str:
    """Table I: RR12-Origin vs both baselines, per activity (%)."""
    origin = sweep.policy(origin_name).per_activity_event_accuracy()
    bl2 = sweep.baseline("Baseline-2").per_activity_accuracy()
    bl1 = sweep.baseline("Baseline-1").per_activity_accuracy()
    rows = []
    for activity in sweep.activities:
        rows.append(
            [
                activity.label,
                origin[activity] * 100,
                bl2[activity] * 100,
                bl1[activity] * 100,
                (origin[activity] - bl2[activity]) * 100,
                (origin[activity] - bl1[activity]) * 100,
            ]
        )
    mean = lambda index: sum(row[index] for row in rows) / len(rows)
    rows.append(["Average", mean(1), mean(2), mean(3), mean(4), mean(5)])
    return format_table(
        ["Activity", origin_name, "BL-2", "BL-1", "vs BL-2", "vs BL-1"],
        rows,
        title="=== Table I: RR12-Origin vs the baselines (%) ===",
    )


def render_fig6_personalization(result: PersonalizationResult) -> str:
    """Fig. 6: confidence-matrix adaptation for unseen users."""
    lines = ["=== Fig. 6: accuracy over time for unseen users ==="]
    lines.append(result.summary())
    lines.append(
        "paper: starts below the base accuracy under noise, recovers to "
        "base level within ~100 iterations"
    )
    return "\n".join(lines)


def render_completion_vs_rr(series: Dict[str, float]) -> str:
    """Extra diagnostic: completion rate per RR level."""
    return horizontal_bar_chart(
        {name: value * 100 for name, value in series.items()},
        max_value=100,
        title="Inference completion rate per policy",
        unit="%",
    )
