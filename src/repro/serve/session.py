"""Per-connection serving session: the decision core behind a socket.

A :class:`Session` is the server-side state machine for one connected
device.  It owns a :class:`~repro.core.engine.DecisionEngine` built from
a named :class:`ServeProfile` (dataset + trained bundle + deployment
config — the experiment's assets, minus the simulation loop) and
advances it one wire exchange at a time:

* ``hello`` → build the engine, schedule slot 0, reply ``hello_ack``;
* ``window`` → ingest the slot's reports, vote, schedule the next slot,
  reply ``decision`` (with the next active set piggybacked);
* ``bye`` → reply ``bye_ack`` with the session's counters.

The session is transport-free (it maps frames to reply frames,
synchronously), so the protocol state machine is testable without a
socket and the asyncio server stays a thin pump around it.  Fed the same
per-slot states and reports as an offline :class:`HARExperiment` run,
the engine inside produces the byte-identical decision stream — the
correctness anchor ``bench_serve --smoke`` and the test suite assert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.engine import DecisionEngine
from repro.core.policies import PolicySpec
from repro.datasets.base import HARDataset
from repro.errors import ServeError
from repro.obs.observer import NULL_OBS, Observability
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    policy_from_wire,
    report_from_wire,
    states_from_wire,
    validate_frame,
)
from repro.sim.experiment import SimulationConfig
from repro.sim.training import TrainedSensorBundle

__all__ = ["ServeProfile", "EngineCatalog", "Session", "SessionState"]


@dataclass(frozen=True)
class ServeProfile:
    """One servable deployment: dataset + trained bundle + config.

    The serving analogue of a :class:`~repro.sim.experiment.HARExperiment`
    without the simulation machinery — exactly the assets a session
    needs to build a :class:`~repro.core.engine.DecisionEngine`.
    """

    name: str
    dataset: HARDataset
    bundle: TrainedSensorBundle
    config: SimulationConfig = SimulationConfig()

    @classmethod
    def from_experiment(cls, name: str, experiment: Any) -> "ServeProfile":
        """Wrap an existing experiment's assets as a servable profile."""
        return cls(
            name=name,
            dataset=experiment.dataset,
            bundle=experiment.bundle,
            config=experiment.config,
        )

    @property
    def node_ids(self) -> List[int]:
        """Deployment node ids in construction order."""
        return [
            self.bundle.node_id_of(location)
            for location in self.dataset.spec.locations
        ]

    def build_engine(
        self, policy: PolicySpec, *, obs: Observability = NULL_OBS
    ) -> DecisionEngine:
        """A fresh decision engine for one session of ``policy``.

        Mirrors ``HARExperiment.run``'s setup: the confidence matrix is
        a per-run copy of the bundle's, adapting only under adaptive
        policies — so every session starts from the validation-seeded
        priors and personalizes independently.
        """
        alpha = (
            self.bundle.confidence_matrix.adaptation_alpha
            if policy.adaptive_confidence
            else 0.0
        )
        confidence = self.bundle.confidence_matrix.copy(adaptation_alpha=alpha)
        return DecisionEngine(
            policy,
            self.node_ids,
            self.bundle.rank_table,
            confidence,
            max_recall_age_slots=self.config.max_recall_age_slots,
            obs=obs,
        )


class EngineCatalog:
    """The profiles a server is willing to serve, by name."""

    def __init__(self, profiles: Any = ()) -> None:
        self._profiles: Dict[str, ServeProfile] = {}
        for profile in profiles:
            self.add(profile)

    def add(self, profile: ServeProfile) -> None:
        self._profiles[profile.name] = profile

    def get(self, name: str) -> ServeProfile:
        profile = self._profiles.get(name)
        if profile is None:
            raise ServeError(
                f"unknown profile {name!r}; serving {sorted(self._profiles)}"
            )
        return profile

    def names(self) -> List[str]:
        return sorted(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)


class SessionState(enum.Enum):
    AWAIT_HELLO = "await_hello"
    STREAMING = "streaming"
    CLOSED = "closed"


class Session:
    """Protocol state machine for one device connection.

    Parameters
    ----------
    catalog:
        The servable profiles.
    session_id:
        Server-assigned id, echoed in ``hello_ack``.
    metrics:
        The *server's* registry for the serving counters
        (``serve.windows`` / ``serve.decisions`` / ``serve.windows.shed``);
        sessions share it.  ``None`` counts locally only.
    obs:
        Per-session observability for the engine's decision trace
        (``slot.scheduled`` / ``vote.cast`` / ``confidence.updated`` —
        the same v2 event kinds an offline run emits).  Default: the
        zero-overhead ``NULL_OBS``.
    """

    def __init__(
        self,
        catalog: EngineCatalog,
        *,
        session_id: str = "sess-0",
        metrics: Optional[Any] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.catalog = catalog
        self.session_id = session_id
        self.metrics = metrics
        self.obs = obs
        self.state = SessionState.AWAIT_HELLO
        self.engine: Optional[DecisionEngine] = None
        self.profile: Optional[ServeProfile] = None
        self.policy: Optional[PolicySpec] = None
        self.n_windows = 0
        self.expected_slot = 0
        self.windows = 0
        self.decisions = 0
        self.shed_windows = 0
        self.completions = 0
        self._finished_emitted = False

    @property
    def closed(self) -> bool:
        return self.state is SessionState.CLOSED

    # ------------------------------------------------------------------

    def handle(
        self, frame: Dict[str, Any], *, shed: bool = False
    ) -> List[Dict[str, Any]]:
        """Advance the state machine by one frame; returns the replies.

        ``shed=True`` marks this frame as arriving over an overloaded
        session (the server's shed policy decided, not the session):
        a window frame is then ingested without voting and answered
        with the last served decision flagged ``shed``.  Raises
        :class:`~repro.errors.ServeError` on any protocol violation —
        the server answers with an ``error`` frame and drops the
        connection.
        """
        kind = validate_frame(frame)
        if kind == "hello":
            return self._handle_hello(frame)
        if kind == "window":
            return self._handle_window(frame, shed=shed)
        if kind == "bye":
            return self._handle_bye()
        raise ServeError(f"client may not send {kind!r} frames")

    # ------------------------------------------------------------------

    def _handle_hello(self, frame: Dict[str, Any]) -> List[Dict[str, Any]]:
        if self.state is not SessionState.AWAIT_HELLO:
            raise ServeError("duplicate hello")
        version = frame["version"]
        if version != PROTOCOL_VERSION:
            raise ServeError(
                f"protocol version {version!r} unsupported "
                f"(server speaks {PROTOCOL_VERSION})"
            )
        self.profile = self.catalog.get(str(frame["profile"]))
        self.policy = policy_from_wire(frame["policy"])
        n_windows = int(frame["n_windows"])
        if n_windows < 1:
            raise ServeError(f"n_windows must be >= 1, got {n_windows}")
        self.n_windows = n_windows
        self.engine = self.profile.build_engine(self.policy, obs=self.obs)
        states = self._check_states(states_from_wire(frame["states"]))
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.emit(
                "run.started",
                policy=self.policy.name,
                seed=int(frame["seed"]),
                n_windows=n_windows,
                n_nodes=len(self.profile.node_ids),
            )
        active = self.engine.begin_slot(0, states)
        self.state = SessionState.STREAMING
        self.expected_slot = 0
        return [
            {
                "type": "hello_ack",
                "version": PROTOCOL_VERSION,
                "session": self.session_id,
                "active": list(active),
            }
        ]

    def _check_states(self, states: Dict[int, Any]) -> Dict[int, Any]:
        # Scheduling tie-breaks depend on node order, so the wire must
        # present states in the deployment's construction order.
        if list(states) != self.engine.node_ids:
            raise ServeError(
                f"states must cover nodes {self.engine.node_ids} in order, "
                f"got {list(states)}"
            )
        return states

    def _handle_window(
        self, frame: Dict[str, Any], *, shed: bool
    ) -> List[Dict[str, Any]]:
        if self.state is not SessionState.STREAMING:
            raise ServeError("window before hello (or after close)")
        slot = int(frame["slot"])
        if slot != self.expected_slot:
            raise ServeError(
                f"out-of-order window: expected slot {self.expected_slot}, "
                f"got {slot}"
            )
        if slot >= self.n_windows:
            raise ServeError(
                f"slot {slot} beyond the announced n_windows={self.n_windows}"
            )
        reports = [report_from_wire(raw) for raw in frame["reports"]]
        self.windows += 1
        self.completions += sum(1 for report in reports if report.completed)
        if self.metrics is not None:
            self.metrics.inc("serve.windows")
        if shed:
            # Overload: ingest the reports (recall memory and scheduler
            # feedback stay consistent) but skip the vote; the device
            # keeps the previous decision for this window.
            self.engine.finish_slot(slot, reports, receive=True, decide=False)
            label = self.engine.last_final
            self.shed_windows += 1
            if self.metrics is not None:
                self.metrics.inc("serve.windows.shed")
        else:
            label = self.engine.finish_slot(slot, reports, receive=True)
            self.decisions += 1
            if self.metrics is not None:
                self.metrics.inc("serve.decisions")
        next_states = frame.get("states")
        if next_states is not None:
            if slot + 1 >= self.n_windows:
                raise ServeError(
                    f"states supplied with the final window (slot {slot} of "
                    f"{self.n_windows})"
                )
            active_next: Optional[List[int]] = list(
                self.engine.begin_slot(
                    slot + 1, self._check_states(states_from_wire(next_states))
                )
            )
        else:
            active_next = None
            self._emit_finished()
        self.expected_slot = slot + 1
        return [
            {
                "type": "decision",
                "slot": slot,
                "label": label,
                "shed": shed,
                "active_next": active_next,
            }
        ]

    def _handle_bye(self) -> List[Dict[str, Any]]:
        if self.state is SessionState.CLOSED:
            raise ServeError("bye after close")
        self._emit_finished()
        self.state = SessionState.CLOSED
        return [
            {
                "type": "bye_ack",
                "stats": {
                    "session": self.session_id,
                    "windows": self.windows,
                    "decisions": self.decisions,
                    "shed": self.shed_windows,
                    "completions": self.completions,
                },
            }
        ]

    def _emit_finished(self) -> None:
        tracer = self.obs.tracer
        if tracer.enabled and not self._finished_emitted and self.policy is not None:
            self._finished_emitted = True
            tracer.emit(
                "run.finished",
                policy=self.policy.name,
                completions=self.completions,
                decisions=self.decisions,
            )
