"""Population-scale cohort simulation (``repro.fleet``).

The paper evaluates one subject at a time; a deployment serves
thousands.  This package answers "what does the *population* see?" by
sampling reproducible cohorts of heterogeneous users over the
deployment knobs of :class:`~repro.sim.experiment.SimulationConfig`
and driving them through the vectorized slot kernel at fleet scale:

* :mod:`repro.fleet.spec` — :class:`CohortSpec`: per-user parameter
  distributions; user ``i`` samples identically on any shard layout.
* :mod:`repro.fleet.runner` — :class:`FleetRunner`: kernel
  mega-batching (one :class:`~repro.sim.kernel.BatchGroup` per user,
  one stacked kernel per shard), supervised multi-process sharding
  with journal checkpoint/resume, and the users/second headline.
* :mod:`repro.fleet.aggregate` — exact, order-invariant streaming
  statistics (:class:`ExactSum`, :class:`FleetDistribution`,
  :class:`FleetAggregate`) in ``O(bins)`` memory.

Quick start::

    from repro.fleet import CohortSpec, FleetRunner
    from repro.sim import HARExperiment

    experiment = HARExperiment.standard_mhealth(seed=7)
    spec = CohortSpec(size=10_000, seed=42, base=experiment.config)
    result = FleetRunner(experiment, spec, shard_size=512).run(workers=4)
    print(result.summary())

Command line: ``python -m repro.fleet run --users 10000``.
"""

from repro.fleet.aggregate import (
    DEFAULT_QUANTILES,
    ExactSum,
    FleetAggregate,
    FleetDistribution,
)
from repro.fleet.runner import (
    FleetResult,
    FleetRunner,
    default_metric_bounds,
    fleet_fingerprint,
    shard_aggregate,
    shard_cell,
    simulate_users,
    user_metrics,
)
from repro.fleet.spec import CohortSpec, ParameterDist, UserSpec

__all__ = [
    "CohortSpec",
    "ParameterDist",
    "UserSpec",
    "ExactSum",
    "FleetDistribution",
    "FleetAggregate",
    "DEFAULT_QUANTILES",
    "FleetRunner",
    "FleetResult",
    "default_metric_bounds",
    "user_metrics",
    "simulate_users",
    "shard_aggregate",
    "fleet_fingerprint",
    "shard_cell",
]
