"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.datasets.activities import Activity
from repro.datasets.markov import MarkovActivityModel
from repro.energy.storage import Capacitor
from repro.energy.traces import PowerTrace
from repro.nn.layers.activations import softmax
from repro.utils.stats import confidence_from_softmax, max_confidence

finite_floats = st.floats(
    min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestCapacitorInvariants:
    @given(
        capacity=finite_floats,
        operations=st.lists(
            st.tuples(st.sampled_from(["deposit", "draw", "leak"]), finite_floats),
            max_size=40,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_stored_energy_always_within_bounds(self, capacity, operations):
        cap = Capacitor(capacity_j=capacity)
        for op, amount in operations:
            if op == "deposit":
                cap.deposit(amount)
            elif op == "draw":
                cap.draw(amount)
            else:
                cap.leak(amount)
            assert 0.0 <= cap.stored_j <= capacity + 1e-12

    @given(capacity=finite_floats, deposits=st.lists(finite_floats, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation(self, capacity, deposits):
        cap = Capacitor(capacity_j=capacity)
        total = sum(cap.deposit(d) for d in deposits)
        assert total == cap.stored_j + 0.0  # nothing drawn or leaked yet
        assert cap.shed_j >= 0.0


class TestPowerTraceInvariants:
    @given(
        watts=st.lists(
            st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
            min_size=4,
            max_size=64,
        ),
        split=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=50, deadline=None)
    def test_energy_is_additive_over_intervals(self, watts, split):
        trace = PowerTrace(dt_s=0.5, watts=np.array(watts))
        mid = trace.duration_s * split
        total = trace.energy_between(0.0, trace.duration_s)
        parts = trace.energy_between(0.0, mid) + trace.energy_between(mid, trace.duration_s)
        assert abs(total - parts) < 1e-12

    @given(
        watts=st.lists(
            st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
            min_size=8,
            max_size=64,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_slot_energies_sum_to_total(self, watts):
        trace = PowerTrace(dt_s=0.5, watts=np.array(watts))
        slot = 1.0  # two samples per slot
        slots = trace.slot_energies(slot)
        covered = len(slots) * slot
        assert slots.sum() == np.float64(
            trace.energy_between(0.0, covered)
        ) or abs(slots.sum() - trace.energy_between(0.0, covered)) < 1e-15


class TestSoftmaxConfidenceInvariants:
    @given(
        logits=st.lists(
            st.floats(min_value=-30, max_value=30, allow_nan=False),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_softmax_simplex_and_confidence_bounds(self, logits):
        probs = softmax(np.array([logits]))[0]
        assert abs(probs.sum() - 1.0) < 1e-9
        assert (probs >= 0).all()
        conf = confidence_from_softmax(probs)
        assert 0.0 <= conf <= max_confidence(len(logits)) + 1e-12


class TestRoundRobinInvariants:
    @given(
        n_nodes=st.integers(min_value=1, max_value=5),
        noops=st.integers(min_value=0, max_value=6),
        horizon=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_node_gets_equal_turns_per_cycle(self, n_nodes, noops, horizon):
        nodes = list(range(n_nodes))
        policy = ExtendedRoundRobin(nodes, noops_per_node=noops)
        cycle = policy.cycle_length
        owners = [policy.slot_owner(s) for s in range(cycle)]
        for node in nodes:
            assert owners.count(node) == 1
        assert owners.count(None) == n_nodes * noops
        # Wrapping is periodic.
        assert policy.slot_owner(horizon) == policy.slot_owner(horizon % cycle)


class TestMarkovInvariants:
    @given(
        n_windows=st.integers(min_value=1, max_value=300),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        dwell=st.floats(min_value=0.3, max_value=8.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_labels_cover_exactly_and_are_valid(self, n_windows, seed, dwell):
        activities = [Activity.WALKING, Activity.RUNNING, Activity.JUMPING]
        model = MarkovActivityModel(activities, dwell_scale=dwell)
        labels = model.sample_labels(n_windows, seed=seed)
        assert len(labels) == n_windows
        assert set(labels) <= set(activities)


class TestConfidenceMatrixInvariants:
    @given(
        rows=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                min_size=3,
                max_size=3,
            ),
            min_size=1,
            max_size=4,
        ),
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=2),
                st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            ),
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_weights_stay_non_negative_and_bounded(self, rows, updates):
        weights = {i: row for i, row in enumerate(rows)}
        matrix = ConfidenceMatrix(weights, adaptation_alpha=0.3)
        upper = max(max(row) for row in rows)
        for node, label, conf in updates:
            if node in weights:
                matrix.update(node, label, conf)
                upper = max(upper, conf)
        array = matrix.as_array()
        assert (array >= 0).all()
        # EMA keeps values inside the convex hull of seeds and updates.
        assert (array <= upper + 1e-9).all()
