"""MHEALTH-like synthetic dataset.

The real MHEALTH dataset (Banos et al.) records 10 subjects with IMUs at
the chest, left ankle and right wrist; the paper evaluates six activities
from it.  :func:`make_mhealth` produces a synthetic stand-in with the
same sensor layout and class set — see ``DESIGN.md`` for why the
substitution preserves the behaviors Origin exploits.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.datasets.activities import Activity
from repro.datasets.base import DatasetSpec, HARDataset, synthesize_split
from repro.datasets.profiles import mhealth_signatures
from repro.datasets.subjects import sample_subjects
from repro.utils.rng import SeedSequenceFactory

#: The six MHEALTH activities the paper reports (Figs. 2, 4, 5a, Table I).
MHEALTH_ACTIVITIES: Tuple[Activity, ...] = (
    Activity.WALKING,
    Activity.CLIMBING,
    Activity.CYCLING,
    Activity.RUNNING,
    Activity.JOGGING,
    Activity.JUMPING,
)


def mhealth_spec() -> DatasetSpec:
    """The static MHEALTH-like dataset description."""
    return DatasetSpec(
        name="MHEALTH",
        activities=MHEALTH_ACTIVITIES,
        signature_factory=mhealth_signatures,
    )


def make_mhealth(
    seed: int = 0,
    *,
    train_windows_per_activity: int = 140,
    val_windows_per_activity: int = 50,
    test_windows_per_activity: int = 45,
    n_train_subjects: int = 14,
    n_eval_subjects: int = 2,
    spec: Optional[DatasetSpec] = None,
) -> HARDataset:
    """Build the full MHEALTH-like dataset.

    Training and evaluation subjects are disjoint draws; evaluation
    subjects generate both the validation and test splits (validation
    seeds rank/confidence tables, test measures final accuracy).
    """
    spec = spec or mhealth_spec()
    factory = SeedSequenceFactory(seed)
    synthesizer = spec.make_synthesizer()
    train_subjects = sample_subjects(
        n_train_subjects, factory.generator("subjects/train"), first_id=0
    )
    eval_subjects = sample_subjects(
        n_eval_subjects,
        factory.generator("subjects/eval"),
        first_id=n_train_subjects,
    )
    return HARDataset(
        spec=spec,
        train=synthesize_split(
            spec, synthesizer, train_subjects, train_windows_per_activity,
            factory.generator("split/train"),
        ),
        val=synthesize_split(
            spec, synthesizer, eval_subjects, val_windows_per_activity,
            factory.generator("split/val"),
        ),
        test=synthesize_split(
            spec, synthesizer, eval_subjects, test_windows_per_activity,
            factory.generator("split/test"),
        ),
        synthesizer=synthesizer,
        train_subjects=train_subjects,
        eval_subjects=eval_subjects,
    )
