"""Weight checkpointing.

Architectures are code (factories in :mod:`repro.nn.architectures`), so a
checkpoint only stores the weight arrays.  ``.npz`` keeps everything in
one portable file.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.errors import ModelError
from repro.nn.model import Sequential


def save_model_weights(model: Sequential, path: str) -> None:
    """Write all parameters of a built model to ``path`` (``.npz``)."""
    if not model.built:
        raise ModelError("cannot save an unbuilt model")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **model.state_dict())


def load_model_weights(model: Sequential, path: str) -> Sequential:
    """Load weights saved by :func:`save_model_weights` into ``model``.

    The model must already be built with the matching architecture;
    returns the model for chaining.  The archive's keys are validated
    against the built model's ``state_dict`` before any array is
    assigned, so an architecture/checkpoint mismatch fails with a
    :class:`~repro.errors.ModelError` naming the missing and unexpected
    keys instead of a partial load.
    """
    if not model.built:
        raise ModelError("build the model before loading weights")
    if not os.path.exists(path):
        raise ModelError(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    expected = set(model.state_dict())
    found = set(state)
    if expected != found:
        missing = sorted(expected - found)
        unexpected = sorted(found - expected)
        parts = [f"checkpoint {path} does not match model {model.name!r}:"]
        if missing:
            parts.append(f"missing keys {missing}")
        if unexpected:
            parts.append(f"unexpected keys {unexpected}")
        raise ModelError(" ".join(parts))
    model.load_state_dict(state)
    return model
