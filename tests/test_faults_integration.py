"""Experiment-level behaviour of the fault-injection subsystem.

The headline property: an *empty* ``FaultPlan`` reproduces the
fault-free run bit for bit; the PR-1 ``failures=`` shim is gone and
its ``TypeError`` points at ``FaultPlan.from_failures``.
"""

from dataclasses import replace

import pytest

from repro.core.policies import aas_policy, origin_policy, rr_policy
from repro.faults import (
    Brownout,
    FaultPlan,
    GilbertElliottLoss,
    HarvesterDropout,
    HostRestart,
    NodeDeath,
    PacketLoss,
    PayloadCorruption,
)


def _same_result(a, b):
    assert a.records == b.records
    assert a.node_stats == b.node_stats
    assert a.comm_energy_j == b.comm_energy_j
    assert a.confidence_updates == b.confidence_updates


class TestEmptyPlanDeterminism:
    @pytest.mark.parametrize(
        "policy",
        [rr_policy(3), aas_policy(6), origin_policy(6)],
        ids=lambda p: p.name,
    )
    def test_empty_plan_is_bit_identical(self, tiny_experiment, policy):
        baseline = tiny_experiment.run(policy, seed=9)
        with_plan = tiny_experiment.run(policy, seed=9, faults=FaultPlan())
        _same_result(baseline, with_plan)
        assert with_plan.fault_stats is None

    def test_faulted_runs_are_reproducible(self, tiny_experiment):
        plan = FaultPlan(
            faults=(
                GilbertElliottLoss(p_good_to_bad=0.2, p_bad_to_good=0.2),
                Brownout(node_id=1, start_slot=10, duration_slots=8),
            )
        )
        first = tiny_experiment.run(origin_policy(6), seed=9, faults=plan)
        second = tiny_experiment.run(origin_policy(6), seed=9, faults=plan)
        _same_result(first, second)
        assert first.fault_stats.summary() == second.fault_stats.summary()


class TestFailuresShim:
    def test_failures_kwarg_is_gone_with_a_pointer(self, tiny_experiment):
        # The PR-1 shim is removed: the error must name the replacement.
        with pytest.raises(TypeError, match="FaultPlan.from_failures"):
            tiny_experiment.run(rr_policy(3), seed=5, failures={0: 10})

    def test_from_failures_is_the_supported_spelling(self, tiny_experiment):
        first = tiny_experiment.run(
            rr_policy(3), seed=5, faults=FaultPlan.from_failures({0: 10})
        )
        second = tiny_experiment.run(
            rr_policy(3), seed=5, faults=FaultPlan.from_failures({0: 10})
        )
        _same_result(first, second)
        assert first.fault_stats.offline_slots == second.fault_stats.offline_slots


class TestNodeDeath:
    def test_dead_node_never_active_and_accounted(self, tiny_experiment):
        plan = FaultPlan(faults=(NodeDeath(node_id=0, at_slot=10),))
        result = tiny_experiment.run(rr_policy(3), seed=5, faults=plan)
        for record in result.records:
            if record.slot_index >= 10:
                assert 0 not in record.active_nodes
        assert result.fault_stats.offline_slots[0] == result.n_slots - 10
        assert result.fault_stats.offline_slots[1] == 0

    def test_recall_expiry_drops_dead_nodes_vote(self, tiny_experiment):
        saved = tiny_experiment.config
        try:
            tiny_experiment.config = replace(saved, max_recall_age_slots=6)
            result = tiny_experiment.run(
                origin_policy(3),
                seed=7,
                faults=FaultPlan(faults=(NodeDeath(node_id=0, at_slot=5),)),
            )
        finally:
            tiny_experiment.config = saved
        # The survivors keep producing decisions once node 0's
        # remembered vote has aged out.
        late_events = [
            r for r in result.records if r.slot_index > 15 and r.completions > 0
        ]
        assert late_events
        assert result.n_events > 0


class TestBrownout:
    def test_brownout_window_and_recovery_accounting(self, tiny_experiment):
        plan = FaultPlan(faults=(Brownout(node_id=0, start_slot=10, duration_slots=15),))
        result = tiny_experiment.run(rr_policy(3), seed=5, faults=plan)
        for record in result.records:
            if 10 <= record.slot_index < 25:
                assert 0 not in record.active_nodes
        # The node rejoins the rotation after the outage.
        assert any(
            0 in r.active_nodes for r in result.records if r.slot_index >= 25
        )
        stats = result.fault_stats
        assert stats.offline_slots[0] == 15
        assert len(stats.recoveries) == 1
        event = stats.recoveries[0]
        assert event.node_id == 0
        assert (event.start_slot, event.end_slot) == (10, 25)
        if event.recovered:
            assert event.recovered_slot >= 25
            assert stats.mean_time_to_recover() == event.time_to_recover_slots

    def test_brownout_drains_stored_energy(self, tiny_experiment):
        clean = tiny_experiment.run(rr_policy(3), seed=5)
        browned = tiny_experiment.run(
            rr_policy(3),
            seed=5,
            faults=FaultPlan(faults=(Brownout(node_id=0, start_slot=5, duration_slots=20),)),
        )
        # Offline slots neither harvest nor attempt.
        assert (
            browned.node_stats[0].harvested_j < clean.node_stats[0].harvested_j
        )
        assert (
            browned.node_stats[0].attempts_started
            <= clean.node_stats[0].attempts_started
        )


class TestLossyLinks:
    def test_packet_loss_accounting_is_consistent(self, tiny_experiment):
        plan = FaultPlan(faults=(PacketLoss(rate=0.5),))
        result = tiny_experiment.run(origin_policy(3), seed=5, faults=plan)
        stats = result.fault_stats
        assert stats.messages_dropped > 0
        assert result.total_dropped_messages == stats.messages_dropped
        assert stats.messages_sent == stats.messages_delivered + stats.messages_dropped
        # Dropped packets still cost radio energy.
        assert result.comm_energy_j > 0
        assert stats.messages_delivered < stats.messages_sent

    def test_total_loss_means_no_decisions(self, tiny_experiment):
        plan = FaultPlan(faults=(PacketLoss(rate=1.0),))
        result = tiny_experiment.run(origin_policy(3), seed=5, faults=plan)
        assert result.fault_stats.messages_delivered == 0
        assert all(r.predicted_label is None for r in result.records)
        # Nodes still burned energy computing and transmitting.
        assert result.total_completions > 0
        assert result.comm_energy_j > 0

    def test_every_delivery_corrupted_at_rate_one(self, tiny_experiment):
        plan = FaultPlan(faults=(PayloadCorruption(rate=1.0),))
        result = tiny_experiment.run(origin_policy(3), seed=5, faults=plan)
        stats = result.fault_stats
        assert stats.messages_corrupted == stats.messages_delivered > 0


class TestHarvesterDropout:
    def test_full_shadow_starves_the_node(self, tiny_experiment):
        n = tiny_experiment.config.n_windows
        plan = FaultPlan(
            faults=(HarvesterDropout(node_id=0, windows=((0, n),), factor=0.0),)
        )
        result = tiny_experiment.run(rr_policy(3), seed=5, faults=plan)
        assert result.fault_stats is not None
        assert result.node_stats[0].harvested_j == 0.0
        assert result.node_stats[1].harvested_j > 0
        # A starved node never completes, but it stays scheduled (the
        # node is up — only its harvester is shadowed).
        assert result.node_stats[0].completions == 0


class TestHostRestart:
    def test_restart_wipes_recall_and_is_counted(self, tiny_experiment):
        plan = FaultPlan(faults=(HostRestart(at_slot=30),))
        result = tiny_experiment.run(origin_policy(3), seed=5, faults=plan)
        assert result.fault_stats.host_restarts == 1
        # The system recovers: decisions resume after the wipe.
        assert any(
            r.predicted_label is not None
            for r in result.records
            if r.slot_index >= 30
        )


class TestDegradationAccounting:
    def test_degradation_vs_fault_free(self, tiny_experiment):
        clean = tiny_experiment.run(origin_policy(6), seed=5)
        faulted = tiny_experiment.run(
            origin_policy(6),
            seed=5,
            faults=FaultPlan(faults=(PacketLoss(rate=0.6),)),
        )
        report = faulted.degradation_vs(clean)
        assert set(report) == {
            "event_accuracy_delta",
            "overall_accuracy_delta",
            "retained_event_accuracy",
        }
        assert report["event_accuracy_delta"] == pytest.approx(
            clean.event_accuracy - faulted.event_accuracy
        )
        if clean.event_accuracy:
            assert report["retained_event_accuracy"] == pytest.approx(
                faulted.event_accuracy / clean.event_accuracy
            )

    def test_unresponsive_knob_keeps_system_running(self, tiny_experiment):
        plan = FaultPlan(
            faults=(NodeDeath(node_id=0, at_slot=0),),
            unresponsive_after_slots=4,
            recall_staleness_half_life_slots=8,
        )
        result = tiny_experiment.run(aas_policy(6), seed=5, faults=plan)
        assert result.fault_stats.offline_slots[0] == result.n_slots
        assert result.total_completions > 0
