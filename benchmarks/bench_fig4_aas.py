"""Fig. 4 — activity-aware scheduling combined with ER-r (MHEALTH).

Paper shape: AAS beats plain round-robin at every ER-r level, and the
combination clears ~70% for most activities.
"""

import numpy as np
import pytest

from benchmarks.conftest import SEEDS, averaged_event_accuracy, averaged_per_activity
from repro.core.policies import aas_policy, rr_policy
from repro.reporting.figures import render_fig4_aas

RR_LENGTHS = (3, 6, 9, 12)


@pytest.fixture(scope="module")
def fig4_results(mhealth_exp):
    results = {}
    for rr_length in RR_LENGTHS:
        for make in (rr_policy, aas_policy):
            spec = make(rr_length)
            mean, runs = averaged_event_accuracy(mhealth_exp, spec)
            results[spec.name] = (mean, averaged_per_activity(runs))
    return results


def test_fig4_render(fig4_results, mhealth_exp, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    columns = {name: per_act for name, (mean, per_act) in fig4_results.items()}
    overall = {name: mean for name, (mean, per_act) in fig4_results.items()}
    save_result(
        "fig4_aas",
        render_fig4_aas(mhealth_exp.dataset.spec.activities, columns, overall),
    )


def test_fig4_aas_beats_plain_rr_on_average(fig4_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    deltas = [
        fig4_results[f"RR{n} AAS"][0] - fig4_results[f"RR{n}"][0] for n in RR_LENGTHS
    ]
    assert np.mean(deltas) > 0.0, f"AAS should add accuracy on average, got {deltas}"
    # And never lose badly at any single level.
    assert min(deltas) > -0.05


def test_fig4_aas_clears_seventy_percent_band(fig4_results, benchmark):
    """Paper: 'more than 70% accuracy for most of the activities'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, per_activity = fig4_results["RR12 AAS"]
    above = sum(1 for acc in per_activity.values() if acc > 0.60)
    assert above >= len(per_activity) // 2


def test_fig4_timing(benchmark, mhealth_exp):
    benchmark.pedantic(
        lambda: mhealth_exp.run(aas_policy(12), seed=SEEDS[0], n_windows=120),
        rounds=1,
        iterations=1,
    )
