"""Command-line fleet runs.

Usage::

    python -m repro.fleet run --users 10000 [--seed 42] [--dataset mhealth]
        [--policy origin|aas|aasr|rr] [--rr-length 12] [--n-windows 600]
        [--timelines 4] [--shard-size 256] [--workers 1]
        [--journal fleet.journal] [--no-resume] [--per-user]
        [--output fleet.json] [--run-dir runs/cohort-a] [--registry DIR]
    python -m repro.fleet summarize fleet.json

``run`` trains (or store-loads) the standard experiment, simulates the
cohort and prints the users/second headline plus per-policy percentile
tables; ``--output`` also writes the exact aggregate as JSON, which
``summarize`` re-renders without re-simulating.

``--run-dir DIR`` arms the run for live observability: the journal goes
to ``DIR/fleet.journal``, a :class:`~repro.obs.timeline.TimeSeriesRecorder`
streams ``DIR/timeseries.jsonl``, and the final metrics land in
``DIR/metrics.json`` — attach ``python -m repro.obs.watch DIR`` from
another terminal while it runs.  ``--registry DIR`` registers the
finished run in a :class:`~repro.obs.runs.RunRegistry` for
``python -m repro.obs.runs ls|info|diff``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from dataclasses import replace
from datetime import datetime, timezone
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.version import __version__

_POLICIES = ("origin", "aas", "aasr", "rr")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="simulate a cohort")
    run.add_argument("--users", type=int, default=1000, help="cohort size")
    run.add_argument("--seed", type=int, default=42, help="cohort sampling seed")
    run.add_argument(
        "--dataset", choices=("mhealth", "pamap2"), default="mhealth"
    )
    run.add_argument(
        "--train-seed", type=int, default=7, help="experiment/training seed"
    )
    run.add_argument("--policy", choices=_POLICIES, default="origin")
    run.add_argument("--rr-length", type=int, default=12)
    run.add_argument("--n-windows", type=int, default=600, help="slots per user")
    run.add_argument(
        "--timelines", type=int, default=4, help="distinct activity timelines"
    )
    run.add_argument("--shard-size", type=int, default=256)
    run.add_argument("--workers", type=int, default=1)
    run.add_argument(
        "--journal", default=None, help="checkpoint shard aggregates here"
    )
    run.add_argument(
        "--no-resume",
        action="store_true",
        help="discard an existing journal instead of resuming it",
    )
    run.add_argument(
        "--per-user",
        action="store_true",
        help="reference per-user loop instead of kernel mega-batching",
    )
    run.add_argument("--output", default=None, help="write the result JSON here")
    run.add_argument(
        "--run-dir",
        default=None,
        help="watchable run directory (journal + timeseries + metrics)",
    )
    run.add_argument(
        "--timeseries-interval",
        type=float,
        default=1.0,
        help="seconds between timeseries samples (with --run-dir)",
    )
    run.add_argument(
        "--registry",
        default=None,
        help="register the finished run in this repro.obs.runs registry",
    )

    summarize = commands.add_parser(
        "summarize", help="re-render a saved fleet result"
    )
    summarize.add_argument("input", help="JSON written by `run --output`")
    return parser


def _policy(name: str, rr_length: int):
    from repro.core.policies import aas_policy, aasr_policy, origin_policy, rr_policy

    maker = {
        "origin": origin_policy,
        "aas": aas_policy,
        "aasr": aasr_policy,
        "rr": rr_policy,
    }[name]
    return maker(rr_length)


def _run(args: argparse.Namespace) -> int:
    from repro.fleet.runner import FleetRunner
    from repro.fleet.spec import CohortSpec
    from repro.sim.experiment import HARExperiment, SimulationConfig

    config = SimulationConfig(n_windows=args.n_windows)
    builder = (
        HARExperiment.standard_mhealth
        if args.dataset == "mhealth"
        else HARExperiment.standard_pamap2
    )
    print(f"building {args.dataset} experiment (seed {args.train_seed}) ...")
    experiment = builder(seed=args.train_seed, config=config)

    spec = CohortSpec(
        size=args.users,
        seed=args.seed,
        base=replace(experiment.config, n_windows=args.n_windows),
        n_timelines=args.timelines,
    )
    runner = FleetRunner(
        experiment,
        spec,
        policies=[_policy(args.policy, args.rr_length)],
        shard_size=args.shard_size,
    )

    journal = args.journal
    obs = None
    recorder = None
    if args.run_dir:
        from repro.obs import Observability
        from repro.obs.timeline import attach_recorder

        os.makedirs(args.run_dir, exist_ok=True)
        journal = journal or os.path.join(args.run_dir, "fleet.journal")
        obs = Observability()
        recorder = attach_recorder(
            obs,
            os.path.join(args.run_dir, "timeseries.jsonl"),
            interval_s=args.timeseries_interval,
            meta={
                "job": "fleet",
                "users": args.users,
                "dataset": args.dataset,
                "policy": args.policy,
                "workers": args.workers,
            },
        )
        print(f"watchable run dir: {args.run_dir}")
    elif args.registry:
        from repro.obs import Observability

        obs = Observability()

    try:
        result = runner.run(
            workers=args.workers,
            mega=not args.per_user,
            journal=journal,
            resume=not args.no_resume,
            obs=obs,
        )
    finally:
        if recorder is not None:
            recorder.close()
    print(result.summary())

    if args.run_dir and obs is not None:
        obs.export(metrics_path=os.path.join(args.run_dir, "metrics.json"))
    if args.registry and obs is not None:
        from repro.obs.runs import RunRegistry

        run_id = RunRegistry(args.registry).record(
            kind="fleet",
            metrics=obs.metrics,
            meta={
                "users": result.users,
                "policies": result.policy_names,
                "workers": args.workers,
                "elapsed_s": round(result.elapsed_s, 3),
                "users_per_second": round(result.users_per_second, 1),
            },
            timeseries=(
                os.path.join(args.run_dir, "timeseries.jsonl")
                if args.run_dir
                else None
            ),
            run_dir=args.run_dir,
        )
        print(f"registered run {run_id} in {args.registry}")

    if args.output:
        document = {
            "kind": "fleet-run",
            "schema_version": 1,
            "meta": {
                "repro_version": __version__,
                "python": platform.python_version(),
                "timestamp_utc": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "argv": list(sys.argv),
            },
            "spec": spec.to_dict(),
            "policies": result.policy_names,
            "users": result.users,
            "users_simulated": result.users_simulated,
            "shards": result.shards,
            "journal_hits": result.journal_hits,
            "failed": [list(entry) for entry in result.failed],
            "elapsed_s": round(result.elapsed_s, 3),
            "users_per_second": round(result.users_per_second, 1),
            "aggregate": result.aggregate.to_dict(),
        }
        parent = os.path.dirname(os.path.abspath(args.output))
        os.makedirs(parent, exist_ok=True)
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _summarize(args: argparse.Namespace) -> int:
    from repro.fleet.aggregate import FleetAggregate

    with open(args.input) as handle:
        document = json.load(handle)
    if document.get("kind") != "fleet-run":
        raise ReproError(f"{args.input} is not a fleet run payload")
    aggregate = FleetAggregate.from_dict(document["aggregate"])
    headline = (
        f"fleet: {document.get('users')} user(s), "
        f"{document.get('shards')} shard(s), "
        f"{document.get('elapsed_s')} s "
        f"({document.get('users_per_second')} users/s simulated)"
    )
    print(headline)
    for line in aggregate.summary_lines():
        print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    return _summarize(args)


if __name__ == "__main__":
    sys.exit(main())
