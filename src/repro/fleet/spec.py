"""Cohort specification: who the fleet's simulated users are.

A :class:`CohortSpec` describes a population of heterogeneous subjects
as per-user distributions over the deployment knobs of
:class:`~repro.sim.experiment.SimulationConfig` — harvester gains per
body location, activity dwell, trace intensity, capacitor sizing and
battery supplement.  User ``i`` is a pure function of ``(spec, i)``:
its draws come from a dedicated RNG stream labelled ``user/<i>`` under
the cohort seed, so the sampled config is identical no matter how the
cohort is sharded, ordered or resumed.

Timelines (the activity sequence a user lives through) are drawn from a
small pool of ``n_timelines`` run seeds.  Together with a *discrete*
dwell distribution this bounds the number of distinct
:class:`~repro.sim.predcache.RunMaterial` builds per worker to
``n_timelines x |dwell support|`` — the expensive part of a user is the
window/softmax material, and the fleet layer shares it across everyone
on the same (timeline, dwell) pair.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.datasets.body import BodyLocation
from repro.errors import ConfigurationError
from repro.sim.experiment import SimulationConfig
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ParameterDist", "UserSpec", "CohortSpec"]

_KINDS = ("constant", "uniform", "loguniform", "normal", "lognormal", "choice")


@dataclass(frozen=True)
class ParameterDist:
    """One per-user sampling rule for a scalar deployment knob.

    Construct via the classmethods (``ParameterDist.uniform(lo, hi)``,
    ...); ``sample(rng)`` consumes a fixed number of draws from ``rng``
    so the cohort's per-user draw order stays stable when other knobs'
    distributions change kind.

    ``low``/``high`` clip ``normal``/``lognormal`` draws (rejection
    would consume a data-dependent number of draws and break stream
    stability).
    """

    kind: str
    value: float = 0.0
    low: Optional[float] = None
    high: Optional[float] = None
    mean: float = 0.0
    sigma: float = 1.0
    choices: Tuple[float, ...] = ()
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown distribution kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind in ("uniform", "loguniform"):
            if self.low is None or self.high is None:
                raise ConfigurationError(f"{self.kind} requires low and high bounds")
            if not self.low < self.high:
                raise ConfigurationError(
                    f"{self.kind} requires low < high, got [{self.low}, {self.high}]"
                )
            if self.kind == "loguniform" and self.low <= 0:
                raise ConfigurationError(
                    f"loguniform requires low > 0, got {self.low}"
                )
        if self.kind in ("normal", "lognormal") and self.sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {self.sigma}")
        if self.kind == "choice":
            if not self.choices:
                raise ConfigurationError("choice requires at least one value")
            if self.weights is not None:
                if len(self.weights) != len(self.choices):
                    raise ConfigurationError(
                        f"{len(self.weights)} weight(s) for "
                        f"{len(self.choices)} choice(s)"
                    )
                if any(w < 0 for w in self.weights) or not sum(self.weights) > 0:
                    raise ConfigurationError("weights must be >= 0 with a positive sum")
        if (
            self.low is not None
            and self.high is not None
            and self.kind in ("normal", "lognormal")
            and not self.low <= self.high
        ):
            raise ConfigurationError(
                f"clip bounds require low <= high, got [{self.low}, {self.high}]"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def constant(cls, value: float) -> "ParameterDist":
        """Every user gets ``value``."""
        return cls(kind="constant", value=float(value))

    @classmethod
    def uniform(cls, low: float, high: float) -> "ParameterDist":
        """Uniform on ``[low, high)``."""
        return cls(kind="uniform", low=float(low), high=float(high))

    @classmethod
    def loguniform(cls, low: float, high: float) -> "ParameterDist":
        """Log-uniform on ``[low, high)`` (decades equally likely)."""
        return cls(kind="loguniform", low=float(low), high=float(high))

    @classmethod
    def normal(
        cls,
        mean: float,
        sigma: float,
        *,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> "ParameterDist":
        """Gaussian, optionally clipped to ``[low, high]``."""
        return cls(
            kind="normal",
            mean=float(mean),
            sigma=float(sigma),
            low=None if low is None else float(low),
            high=None if high is None else float(high),
        )

    @classmethod
    def lognormal(
        cls,
        mean: float,
        sigma: float,
        *,
        low: Optional[float] = None,
        high: Optional[float] = None,
    ) -> "ParameterDist":
        """``exp(Normal(mean, sigma))``, optionally clipped.

        ``lognormal(0.0, s)`` is a multiplicative spread around 1 — the
        natural shape for gain/intensity heterogeneity.
        """
        return cls(
            kind="lognormal",
            mean=float(mean),
            sigma=float(sigma),
            low=None if low is None else float(low),
            high=None if high is None else float(high),
        )

    @classmethod
    def choice(
        cls,
        choices: Tuple[float, ...],
        weights: Optional[Tuple[float, ...]] = None,
    ) -> "ParameterDist":
        """Discrete distribution over ``choices`` (uniform by default)."""
        return cls(
            kind="choice",
            choices=tuple(float(c) for c in choices),
            weights=None if weights is None else tuple(float(w) for w in weights),
        )

    # -- sampling -------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> float:
        """One draw.  Constants consume no stream state."""
        if self.kind == "constant":
            return self.value
        if self.kind == "uniform":
            return float(rng.uniform(self.low, self.high))
        if self.kind == "loguniform":
            return float(
                math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
            )
        if self.kind == "normal":
            drawn = float(rng.normal(self.mean, self.sigma))
        elif self.kind == "lognormal":
            drawn = float(math.exp(rng.normal(self.mean, self.sigma)))
        else:  # choice
            if self.weights is None:
                index = int(rng.integers(0, len(self.choices)))
            else:
                total = sum(self.weights)
                probabilities = [w / total for w in self.weights]
                index = int(rng.choice(len(self.choices), p=probabilities))
            return self.choices[index]
        if self.low is not None:
            drawn = max(drawn, self.low)
        if self.high is not None:
            drawn = min(drawn, self.high)
        return drawn

    @property
    def support(self) -> Optional[Tuple[float, ...]]:
        """The finite set of reachable values, or ``None`` (continuous)."""
        if self.kind == "constant":
            return (self.value,)
        if self.kind == "choice":
            return self.choices
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for fingerprints and run metadata."""
        return asdict(self)


@dataclass(frozen=True)
class UserSpec:
    """One sampled cohort member: who they are and how their nodes run.

    ``seed`` selects the activity timeline (shared with every user on
    the same timeline slot); ``config`` carries the five sampled knobs
    on top of the cohort's base :class:`SimulationConfig`.
    """

    index: int
    seed: int
    config: SimulationConfig

    @property
    def material_key(self) -> Tuple[int, float]:
        """The ``(seed, dwell)`` pair keying this user's run material."""
        return (self.seed, self.config.dwell_scale)


def _default_node_gain() -> ParameterDist:
    return ParameterDist.lognormal(0.0, 0.25, low=0.3, high=3.0)


def _default_dwell() -> ParameterDist:
    return ParameterDist.choice((2.5, 3.5, 5.0))


def _default_trace_scale() -> ParameterDist:
    return ParameterDist.lognormal(0.0, 0.2, low=0.4, high=2.5)


def _default_capacity() -> ParameterDist:
    return ParameterDist.loguniform(60e-6, 160e-6)


def _default_supplement() -> ParameterDist:
    return ParameterDist.constant(0.0)


@dataclass(frozen=True)
class CohortSpec:
    """A reproducible population over ``SimulationConfig`` knobs.

    The defaults model a plausible deployment spread around the paper's
    operating point: per-location harvester gains and trace intensity
    log-normal around 1, activity dwell drawn from slow/nominal/fast,
    capacitor sizing log-uniform around 100 uJ, no battery supplement.

    ``user(i)`` is shard-layout-independent: every user owns the RNG
    stream ``user/<i>`` under ``seed`` and draws its knobs in one fixed
    documented order (dwell, trace scale, capacity, supplement, then
    one gain per :class:`BodyLocation` in enum definition order).
    """

    size: int
    seed: int = 0
    base: SimulationConfig = field(default_factory=SimulationConfig)
    n_timelines: int = 4
    node_gain: ParameterDist = field(default_factory=_default_node_gain)
    dwell_scale: ParameterDist = field(default_factory=_default_dwell)
    trace_scale: ParameterDist = field(default_factory=_default_trace_scale)
    capacitor_capacity_j: ParameterDist = field(default_factory=_default_capacity)
    battery_supplement_w: ParameterDist = field(default_factory=_default_supplement)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"cohort size must be >= 1, got {self.size}")
        if self.n_timelines < 1:
            raise ConfigurationError(
                f"n_timelines must be >= 1, got {self.n_timelines}"
            )
        dwell_support = self.dwell_scale.support
        if dwell_support is not None and any(d <= 0 for d in dwell_support):
            raise ConfigurationError(
                f"dwell_scale support must be positive, got {dwell_support}"
            )

    # ------------------------------------------------------------------

    def timeline_seeds(self) -> Tuple[int, ...]:
        """The run-seed pool users cycle through (``i % n_timelines``)."""
        factory = SeedSequenceFactory(self.seed)
        return tuple(
            int(value)
            for value in factory.integers("fleet/timelines", self.n_timelines)
        )

    def user(self, index: int) -> UserSpec:
        """Sample cohort member ``index`` — identical on every shard."""
        if not 0 <= index < self.size:
            raise ConfigurationError(
                f"user index {index} outside cohort of {self.size}"
            )
        rng = SeedSequenceFactory(self.seed).generator(f"user/{index}")
        # Fixed draw order — part of the reproducibility contract.
        dwell = self.dwell_scale.sample(rng)
        trace = self.trace_scale.sample(rng)
        capacity = self.capacitor_capacity_j.sample(rng)
        supplement = self.battery_supplement_w.sample(rng)
        gains = {location: self.node_gain.sample(rng) for location in BodyLocation}
        if dwell <= 0:
            raise ConfigurationError(
                f"sampled dwell_scale must be positive, got {dwell}"
            )
        config = replace(
            self.base,
            dwell_scale=dwell,
            trace_scale=trace,
            capacitor_capacity_j=capacity,
            battery_supplement_w=supplement,
            node_gains=gains,
        )
        seeds = self.timeline_seeds()
        return UserSpec(index=index, seed=seeds[index % self.n_timelines], config=config)

    def users(self, lo: int = 0, hi: Optional[int] = None) -> Iterator[UserSpec]:
        """Lazily sample the half-open index range ``[lo, hi)``."""
        hi = self.size if hi is None else hi
        if not 0 <= lo <= hi <= self.size:
            raise ConfigurationError(
                f"invalid user range [{lo}, {hi}) for cohort of {self.size}"
            )
        for index in range(lo, hi):
            yield self.user(index)

    def material_group_bound(self) -> Optional[int]:
        """Upper bound on distinct run-material builds, if finite.

        ``None`` means the dwell distribution is continuous: every user
        then needs its own material and the fleet's material memo works
        as a bounded LRU instead of a full share.
        """
        support = self.dwell_scale.support
        if support is None:
            return None
        return self.n_timelines * len(set(support))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for the fleet journal fingerprint."""
        return {
            "size": self.size,
            "seed": self.seed,
            "n_timelines": self.n_timelines,
            "base": asdict(self.base),
            "node_gain": self.node_gain.to_dict(),
            "dwell_scale": self.dwell_scale.to_dict(),
            "trace_scale": self.trace_scale.to_dict(),
            "capacitor_capacity_j": self.capacitor_capacity_j.to_dict(),
            "battery_supplement_w": self.battery_supplement_w.to_dict(),
        }
