"""Integration tests: the full EH-WSN simulation loop."""

import numpy as np
import pytest

from repro.core.policies import (
    aas_policy,
    aasr_policy,
    naive_policy,
    origin_policy,
    rr_policy,
)
from repro.datasets.noise import add_gaussian_noise_snr
from repro.errors import ConfigurationError
from repro.sim.baselines import evaluate_baseline
from repro.sim.completion import CompletionExperiment
from repro.sim.experiment import SimulationConfig
from repro.sim.sweep import PolicySweep, paper_policy_grid
from repro.core.policies import Baseline1, Baseline2


class TestRunBasics:
    def test_rr_run_shape(self, tiny_experiment):
        result = tiny_experiment.run(rr_policy(3))
        assert result.n_slots == 60
        assert result.policy_name == "RR3"
        assert 0.0 <= result.overall_accuracy <= 1.0
        assert result.total_attempts > 0

    def test_all_policies_run(self, tiny_experiment):
        for spec in [rr_policy(6), aas_policy(6), aasr_policy(6), origin_policy(6)]:
            result = tiny_experiment.run(spec)
            assert result.n_slots == 60

    def test_noop_slots_have_no_attempts(self, tiny_experiment):
        result = tiny_experiment.run(rr_policy(12))
        noop = [r for r in result.records if not r.active_nodes]
        assert len(noop) == 60 - 60 // 4
        assert all(r.attempts == 0 for r in noop)

    def test_reproducible_given_seed(self, tiny_experiment):
        a = tiny_experiment.run(origin_policy(6), seed=4)
        b = tiny_experiment.run(origin_policy(6), seed=4)
        assert a.predicted_labels().tolist() == b.predicted_labels().tolist()

    def test_different_seeds_differ(self, tiny_experiment):
        a = tiny_experiment.run(rr_policy(3), seed=1)
        b = tiny_experiment.run(rr_policy(3), seed=2)
        assert a.true_labels().tolist() != b.true_labels().tolist()

    def test_n_windows_override(self, tiny_experiment):
        result = tiny_experiment.run(rr_policy(3), n_windows=20)
        assert result.n_slots == 20

    def test_adaptive_updates_counted(self, tiny_experiment):
        adaptive = tiny_experiment.run(origin_policy(6), seed=5)
        static = tiny_experiment.run(origin_policy(6, adaptive=False), seed=5)
        assert adaptive.confidence_updates > 0
        assert static.confidence_updates == 0

    def test_window_transform_applied(self, tiny_experiment):
        calls = []

        def transform(window):
            calls.append(1)
            return add_gaussian_noise_snr(window, 20.0, seed=0)

        tiny_experiment.run(rr_policy(3), seed=1, window_transform=transform)
        assert len(calls) > 0

    def test_external_confidence_matrix_adapts_in_place(self, tiny_experiment):
        matrix = tiny_experiment.bundle.confidence_matrix.copy(adaptation_alpha=0.5)
        before = matrix.as_array().copy()
        tiny_experiment.run(origin_policy(3), seed=2, confidence_matrix=matrix)
        assert not np.allclose(matrix.as_array(), before)

    def test_comm_energy_is_negligible(self, tiny_experiment):
        """Verify the paper's assumption: radio energy << total consumed."""
        result = tiny_experiment.run(rr_policy(3), seed=1)
        consumed = sum(s.consumed_j for s in result.node_stats.values())
        assert result.comm_energy_j < 0.15 * consumed

    def test_node_stats_populated(self, tiny_experiment):
        result = tiny_experiment.run(rr_policy(3), seed=1)
        assert set(result.node_stats) == {0, 1, 2}
        assert all(s.slots == 60 for s in result.node_stats.values())


class TestSimulationConfig:
    def test_invalid_windows(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(n_windows=0)

    def test_invalid_trace_scale(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(trace_scale=0)

    def test_gain_lookup_defaults(self):
        from repro.datasets.body import BodyLocation

        config = SimulationConfig()
        assert config.gain_for(BodyLocation.CHEST) == 1.0


class TestBaselineEvaluator:
    def test_baselines_run(self, tiny_dataset, tiny_bundle):
        for baseline in (Baseline1, Baseline2):
            result = evaluate_baseline(
                tiny_dataset, tiny_bundle, baseline, n_windows=40, seed=1
            )
            assert result.true_labels.shape == (40,)
            assert 0.0 <= result.overall_accuracy <= 1.0

    def test_same_seed_same_timeline_as_policy_run(self, tiny_experiment):
        policy_result = tiny_experiment.run(rr_policy(3), seed=6, n_windows=30)
        baseline_result = evaluate_baseline(
            tiny_experiment.dataset,
            tiny_experiment.bundle,
            Baseline2,
            n_windows=30,
            seed=6,
            dwell_scale=tiny_experiment.config.dwell_scale,
        )
        np.testing.assert_array_equal(
            policy_result.true_labels(), baseline_result.true_labels
        )

    def test_per_activity_report(self, tiny_dataset, tiny_bundle):
        result = evaluate_baseline(
            tiny_dataset, tiny_bundle, Baseline1, n_windows=30, seed=0
        )
        report = result.per_activity_accuracy()
        assert len(report) == tiny_dataset.n_classes


class TestCompletionExperiment:
    def test_runs_and_bands_are_sane(self, tiny_experiment):
        study = CompletionExperiment(tiny_experiment).run(n_windows=60, seed=2)
        naive, rr = study.naive, study.round_robin
        # Naive all-on wastes energy: it must not beat plain RR3.
        assert naive.any_fraction <= rr.any_fraction + 0.15
        assert naive.n_slots == 60
        assert "Fig. 1a" in study.summary()

    def test_config_restored_after_run(self, tiny_experiment):
        config_before = tiny_experiment.config
        CompletionExperiment(tiny_experiment).run(n_windows=30, seed=1)
        assert tiny_experiment.config is config_before


class TestPolicySweep:
    def test_grid_factory(self):
        grid = paper_policy_grid((3, 12))
        assert len(grid) == 8
        assert grid[0].name == "RR3"

    def test_sweep_runs_and_reports(self, tiny_experiment):
        sweep = PolicySweep(tiny_experiment, n_seeds=1)
        result = sweep.run([rr_policy(3), origin_policy(3)], seed=4)
        assert set(result.policies) == {"RR3", "RR3 Origin"}
        assert set(result.baselines) == {"Baseline-1", "Baseline-2"}
        table = result.accuracy_table()
        assert "Baseline-2" in table
        overall = result.overall_accuracy()
        assert all(0.0 <= v <= 1.0 for v in overall.values())

    def test_mean_improvement(self, tiny_experiment):
        sweep = PolicySweep(tiny_experiment, n_seeds=1)
        result = sweep.run([origin_policy(3)], seed=4)
        delta = result.mean_improvement("RR3 Origin", "Baseline-2")
        assert isinstance(delta, float)

    def test_multi_seed_concatenates(self, tiny_experiment):
        sweep = PolicySweep(tiny_experiment, n_seeds=2, include_baselines=False)
        result = sweep.run([rr_policy(3)], seed=4)
        assert result.policy("RR3").n_slots == 120

    def test_unknown_policy_lookup(self, tiny_experiment):
        sweep = PolicySweep(tiny_experiment, n_seeds=1, include_baselines=False)
        result = sweep.run([rr_policy(3)], seed=4)
        with pytest.raises(ConfigurationError):
            result.policy("nope")


class TestNaivePolicyInSim:
    def test_naive_activates_everyone(self, tiny_experiment):
        result = tiny_experiment.run(naive_policy(), seed=1, n_windows=20)
        assert all(len(r.active_nodes) == 3 for r in result.records)
