"""Fig. 5a — the full policy ladder on the MHEALTH-like dataset.

Paper shape: within one ER-r level the ladder orders
RR < AAS < AASR < Origin; accuracy tends to improve with the ER-r
delay for the scheduling-only policies; the baselines bracket the band.
"""

import numpy as np
import pytest

from benchmarks.conftest import DWELL, N_WINDOWS, SEEDS
from repro.core.policies import Baseline1, Baseline2
from repro.reporting import render_fig5_policies
from repro.sim.baselines import evaluate_baseline
from repro.sim.sweep import PolicySweep, paper_policy_grid

RR_LENGTHS = (3, 6, 9, 12)


@pytest.fixture(scope="module")
def sweep(mhealth_exp):
    runner = PolicySweep(mhealth_exp, n_seeds=len(SEEDS), include_baselines=True)
    return runner.run(paper_policy_grid(RR_LENGTHS), seed=SEEDS[0])


def event_overall(sweep, name):
    return sweep.policy(name).event_accuracy


def test_fig5a_render(sweep, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_result("fig5a_mhealth", render_fig5_policies("MHEALTH", sweep))


def test_fig5a_ladder_ordering_within_rr(sweep, benchmark):
    """Mean over the four ER-r levels: each rung adds accuracy."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rungs = {"rr": [], "aas": [], "aasr": [], "origin": []}
    for n in RR_LENGTHS:
        rungs["rr"].append(event_overall(sweep, f"RR{n}"))
        rungs["aas"].append(event_overall(sweep, f"RR{n} AAS"))
        rungs["aasr"].append(event_overall(sweep, f"RR{n} AASR"))
        rungs["origin"].append(event_overall(sweep, f"RR{n} Origin"))
    means = {name: float(np.mean(values)) for name, values in rungs.items()}
    assert means["aas"] > means["rr"], means
    assert means["aasr"] > means["aas"] - 0.01, means
    assert means["origin"] > means["aasr"], means


def test_fig5a_origin_beats_plain_rr_everywhere(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in RR_LENGTHS:
        assert event_overall(sweep, f"RR{n} Origin") > event_overall(sweep, f"RR{n}")


def test_fig5a_baselines_bracket(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bl1 = sweep.baseline("Baseline-1").overall_accuracy
    bl2 = sweep.baseline("Baseline-2").overall_accuracy
    assert bl1 > bl2 - 0.01, "unpruned baseline should not trail the pruned one"
    best_origin = max(event_overall(sweep, f"RR{n} Origin") for n in RR_LENGTHS)
    # Origin on harvested energy lands in the baselines' band.
    assert best_origin > bl2 - 0.05


def test_fig5a_timing(benchmark, mhealth_exp):
    from repro.core.policies import origin_policy

    benchmark.pedantic(
        lambda: mhealth_exp.run(origin_policy(12), seed=1, n_windows=120),
        rounds=1,
        iterations=1,
    )
