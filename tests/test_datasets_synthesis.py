"""Tests for repro.datasets.synthesis."""

import numpy as np
import pytest

from repro.datasets.activities import Activity
from repro.datasets.body import BodyLocation
from repro.datasets.profiles import N_CHANNELS, mhealth_signatures
from repro.datasets.subjects import SubjectProfile
from repro.datasets.synthesis import SignalSynthesizer, StyleWobble
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def synth():
    return SignalSynthesizer(mhealth_signatures())


class TestWindowGeneration:
    def test_shape_and_dtype(self, synth):
        window = synth.window(Activity.WALKING, BodyLocation.CHEST, seed=0)
        assert window.shape == (N_CHANNELS, 128)
        assert window.dtype == np.float32

    def test_batch_shape(self, synth):
        batch = synth.batch(Activity.RUNNING, BodyLocation.LEFT_ANKLE, count=5, seed=0)
        assert batch.shape == (5, N_CHANNELS, 128)

    def test_reproducible_with_seed(self, synth):
        a = synth.window(Activity.CYCLING, BodyLocation.RIGHT_WRIST, seed=3)
        b = synth.window(Activity.CYCLING, BodyLocation.RIGHT_WRIST, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_windows_differ_within_class(self, synth):
        batch = synth.batch(Activity.WALKING, BodyLocation.CHEST, count=2, seed=0)
        assert not np.allclose(batch[0], batch[1])

    def test_gravity_offset_present(self, synth):
        # Accelerometer y-axis should carry roughly 1 g on average.
        window = synth.window(Activity.WALKING, BodyLocation.LEFT_ANKLE, seed=1)
        assert 5.0 < window[1].mean() < 15.0

    def test_gyro_has_no_gravity(self, synth):
        batch = synth.batch(Activity.WALKING, BodyLocation.LEFT_ANKLE, 10, seed=1)
        assert abs(batch[:, 3:, :].mean()) < 1.0

    def test_running_more_energetic_than_cycling_at_chest(self, synth):
        run = synth.batch(Activity.RUNNING, BodyLocation.CHEST, 8, seed=2)
        cyc = synth.batch(Activity.CYCLING, BodyLocation.CHEST, 8, seed=2)
        energy = lambda x: np.var(x[:, :3, :])
        assert energy(run) > energy(cyc)

    def test_invalid_count(self, synth):
        with pytest.raises(DatasetError):
            synth.batch(Activity.WALKING, BodyLocation.CHEST, count=0)

    def test_window_duration(self, synth):
        assert synth.window_duration_s == pytest.approx(128 / 50.0)


class TestSubjectEffects:
    def test_subject_changes_signal(self, synth):
        base = synth.window(Activity.WALKING, BodyLocation.CHEST, seed=5)
        subject = SubjectProfile(
            subject_id=1, frequency_scale=1.1, amplitude_scale=1.3
        )
        shifted = synth.window(Activity.WALKING, BodyLocation.CHEST, subject, seed=5)
        assert not np.allclose(base, shifted)

    def test_noise_factor_scales_noise(self, synth):
        quiet = SubjectProfile(subject_id=1, noise_factor=0.01)
        loud = SubjectProfile(subject_id=2, noise_factor=3.0)
        a = synth.batch(Activity.CYCLING, BodyLocation.CHEST, 6, quiet, seed=7)
        b = synth.batch(Activity.CYCLING, BodyLocation.CHEST, 6, loud, seed=7)
        # High-frequency residual differs strongly with noise.
        assert np.var(np.diff(b)) > np.var(np.diff(a))


class TestStyleWobble:
    def test_identity_default(self):
        style = StyleWobble()
        assert style.amplitude_scale == 1.0

    def test_sample_positive(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            style = StyleWobble.sample(rng)
            assert style.amplitude_scale > 0
            assert style.frequency_scale > 0

    def test_invalid_rejected(self):
        with pytest.raises(DatasetError):
            StyleWobble(amplitude_scale=0.0)

    def test_shared_style_correlates_locations(self, synth):
        # The same big wobble raises energy at every location.
        big = StyleWobble(amplitude_scale=2.5)
        small = StyleWobble(amplitude_scale=0.4)
        for location in (BodyLocation.CHEST, BodyLocation.LEFT_ANKLE):
            a = synth.batch(Activity.RUNNING, location, 6, seed=1, style=big)
            b = synth.batch(Activity.RUNNING, location, 6, seed=1, style=small)
            assert np.var(a[:, :3]) > np.var(b[:, :3])


class TestConstruction:
    def test_invalid_sample_rate(self):
        with pytest.raises(DatasetError):
            SignalSynthesizer(mhealth_signatures(), sample_rate_hz=0)

    def test_tiny_window_rejected(self):
        with pytest.raises(DatasetError):
            SignalSynthesizer(mhealth_signatures(), window_size=4)
