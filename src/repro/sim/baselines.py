"""Fully-powered baseline evaluation (paper §IV-C).

Baseline-1 (unpruned DNNs) and Baseline-2 (energy-aware pruned DNNs)
both run on steady power: every sensor classifies every window and the
host takes a naive majority vote.  To compare apples to apples with the
EH policy runs, the evaluator replays the *same* Markov activity
timeline and subject that :meth:`repro.sim.experiment.HARExperiment.run`
would generate for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.policies import BaselineSpec
from repro.sim.training import TrainedSensorBundle
from repro.datasets.activities import Activity
from repro.datasets.base import HARDataset
from repro.datasets.markov import MarkovActivityModel
from repro.datasets.subjects import SubjectProfile
from repro.datasets.synthesis import StyleWobble
from repro.errors import SimulationError
from repro.utils.rng import SeedSequenceFactory


@dataclass
class BaselineResult:
    """Outcome of one fully-powered baseline run."""

    baseline_name: str
    activities: List[Activity]
    true_labels: np.ndarray
    predicted_labels: np.ndarray

    @property
    def overall_accuracy(self) -> float:
        """Fraction of windows classified correctly."""
        return float((self.true_labels == self.predicted_labels).mean())

    def per_activity_accuracy(self) -> Dict[Activity, float]:
        """Accuracy restricted to windows of each activity."""
        report = {}
        for label, activity in enumerate(self.activities):
            mask = self.true_labels == label
            report[activity] = (
                float((self.predicted_labels[mask] == label).mean())
                if mask.any()
                else float("nan")
            )
        return report


def per_sensor_accuracy(
    dataset: HARDataset,
    bundle: TrainedSensorBundle,
    *,
    pruned: bool = True,
    windows_per_class: int = 60,
    seed: int = 0,
    subject: Optional[SubjectProfile] = None,
) -> tuple:
    """Fig. 2's data: per-location per-activity accuracy + majority vote.

    Uses a *balanced, aligned* evaluation set: ``windows_per_class``
    windows per activity, with the execution-style wobble shared across
    locations per window (all sensors observe the same instant).
    Returns ``(per_sensor, majority)`` where ``per_sensor`` maps each
    location label to ``{activity: accuracy}`` and ``majority`` is the
    naive-majority ensemble's ``{activity: accuracy}``.
    """
    factory = SeedSequenceFactory(seed)
    spec = dataset.spec
    subject = subject or (
        dataset.eval_subjects[0] if dataset.eval_subjects else SubjectProfile.canonical()
    )
    labels = [
        activity for activity in spec.activities for _ in range(windows_per_class)
    ]
    n_windows = len(labels)
    true = np.array([spec.label_of(activity) for activity in labels], dtype=np.int64)
    style_rng = factory.generator("style")
    styles = [StyleWobble.sample(style_rng) for _ in range(n_windows)]

    models = bundle.models(pruned=pruned)
    votes = {}
    per_sensor: Dict[str, Dict[Activity, float]] = {}
    for location in spec.locations:
        node_id = bundle.node_id_of(location)
        rng = factory.generator(f"windows/{location.value}")
        batch = np.stack(
            [
                dataset.synthesizer.window(activity, location, subject, rng, style=style)
                for activity, style in zip(labels, styles)
            ]
        )
        votes[node_id] = models[node_id].predict(batch)
        report = {}
        for label, activity in enumerate(spec.activities):
            mask = true == label
            report[activity] = (
                float((votes[node_id][mask] == label).mean()) if mask.any() else 0.0
            )
        per_sensor[location.label] = report

    stacked = np.stack([votes[bundle.node_id_of(loc)] for loc in spec.locations])
    predicted = np.array(
        [
            int(np.bincount(stacked[:, index], minlength=spec.n_classes).argmax())
            for index in range(n_windows)
        ]
    )
    majority = {}
    for label, activity in enumerate(spec.activities):
        mask = true == label
        majority[activity] = (
            float((predicted[mask] == label).mean()) if mask.any() else 0.0
        )
    return per_sensor, majority


def evaluate_baseline(
    dataset: HARDataset,
    bundle: TrainedSensorBundle,
    baseline: BaselineSpec,
    *,
    n_windows: int = 600,
    seed: int = 0,
    subject: Optional[SubjectProfile] = None,
    dwell_scale: float = 1.0,
    window_transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> BaselineResult:
    """Run one baseline over a simulated activity timeline.

    Uses the same seed-derivation labels as the EH simulation, so for a
    given ``seed`` the baseline sees exactly the timeline the policies
    saw.
    """
    if n_windows < 1:
        raise SimulationError(f"n_windows must be >= 1, got {n_windows}")
    factory = SeedSequenceFactory(seed)
    spec = dataset.spec
    subject = subject or (
        dataset.eval_subjects[0] if dataset.eval_subjects else SubjectProfile.canonical()
    )

    markov = MarkovActivityModel(
        list(spec.activities),
        window_duration_s=spec.window_duration_s,
        dwell_scale=dwell_scale,
    )
    labels = markov.sample_labels(n_windows, factory.generator("timeline"))
    true = np.array([spec.label_of(activity) for activity in labels], dtype=np.int64)

    models = bundle.models(pruned=baseline.pruned)
    synthesizer = dataset.synthesizer

    # Shared execution style per window (same stream the EH sim uses).
    style_rng = factory.generator("style")
    styles = [StyleWobble.sample(style_rng) for _ in range(n_windows)]

    # Synthesize per-location window batches, then batch-predict.
    votes = np.empty((len(models), n_windows), dtype=np.int64)
    for row, location in enumerate(spec.locations):
        node_id = bundle.node_id_of(location)
        rng = factory.generator(f"windows/{location.value}")
        batch = np.stack(
            [
                synthesizer.window(activity, location, subject, rng, style=style)
                for activity, style in zip(labels, styles)
            ]
        )
        if window_transform is not None:
            batch = np.stack([window_transform(window) for window in batch])
        votes[row] = models[node_id].predict(batch)

    # Naive majority vote; ties resolve to the lowest label (fixed,
    # unbiased across a run).
    predicted = np.empty(n_windows, dtype=np.int64)
    for index in range(n_windows):
        counts = np.bincount(votes[:, index], minlength=spec.n_classes)
        predicted[index] = int(counts.argmax())

    return BaselineResult(
        baseline_name=baseline.name,
        activities=list(spec.activities),
        true_labels=true,
        predicted_labels=predicted,
    )
