"""Ablation B — confidence weighting: naive / static matrix / adaptive.

DESIGN.md calls out the variance-of-softmax confidence matrix and its
moving-average adaptation as Origin's accuracy lever over naive
majority voting (AASR).
"""

import numpy as np
import pytest

from benchmarks.conftest import averaged_event_accuracy
from repro.core.policies import aasr_policy, origin_policy
from repro.utils.text import format_table

RR = 12


@pytest.fixture(scope="module")
def variants(mhealth_exp):
    naive, _ = averaged_event_accuracy(mhealth_exp, aasr_policy(RR))
    static, _ = averaged_event_accuracy(
        mhealth_exp, origin_policy(RR, adaptive=False)
    )
    adaptive, _ = averaged_event_accuracy(mhealth_exp, origin_policy(RR))
    return {"naive majority (AASR)": naive, "static matrix": static, "adaptive matrix (Origin)": adaptive}


def test_ablation_confidence_render(variants, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        ["Ensemble", "Event accuracy (%)"],
        [[name, value * 100] for name, value in variants.items()],
        title=f"=== Ablation B: ensemble weighting at RR{RR} (MHEALTH) ===",
    )
    save_result("ablation_confidence", table)


def test_ablation_confidence_weighting_helps(variants, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    best_weighted = max(
        variants["static matrix"], variants["adaptive matrix (Origin)"]
    )
    assert best_weighted > variants["naive majority (AASR)"] - 0.02


def test_ablation_adaptation_not_harmful(variants, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        variants["adaptive matrix (Origin)"]
        > variants["static matrix"] - 0.05
    )


def test_ablation_timing(benchmark, mhealth_exp):
    benchmark.pedantic(
        lambda: mhealth_exp.run(origin_policy(RR), seed=4, n_windows=120),
        rounds=1,
        iterations=1,
    )
