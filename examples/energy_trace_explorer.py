#!/usr/bin/env python
"""Explore the WiFi RF harvesting environment the nodes live in.

Prints the statistics that make the paper's scheduling problem hard:
the skewed per-slot energy distribution, burst correlation across
nodes, and how many slots one (pruned vs unpruned) inference costs.

Run:  python examples/energy_trace_explorer.py
"""

import numpy as np

from repro.energy import OfficeState, PowerTraceGenerator
from repro.utils.text import format_table, horizontal_bar_chart

WINDOW_S = 2.56
HOURS = 2.0


def main() -> None:
    generator = PowerTraceGenerator()
    print(
        f"Office model: "
        + ", ".join(
            f"{state.value} {generator.DEFAULT_POWER_W[state] * 1e6:.0f} uW "
            f"(~{generator.DEFAULT_DWELL_S[state]:.0f} s dwells)"
            for state in OfficeState
        )
    )
    print(
        f"expected average: {generator.expected_average_power_w() * 1e6:.1f} uW\n"
    )

    traces = generator.generate_correlated(
        HOURS * 3600, gains=[1.0, 1.0, 1.0], seed=7
    )
    slots = [trace.slot_energies(WINDOW_S) * 1e6 for trace in traces]  # uJ

    rows = []
    for name, slot in zip(("chest", "wrist", "ankle"), slots):
        rows.append(
            [
                name,
                slot.mean(),
                float(np.median(slot)),
                float(np.percentile(slot, 90)),
                slot.max(),
            ]
        )
    print(
        format_table(
            ["node", "mean uJ/slot", "median", "p90", "max"],
            rows,
            title=f"Per-slot harvested energy over {HOURS:.0f} h (window {WINDOW_S}s)",
        )
    )

    corr = np.corrcoef(traces[0].watts, traces[1].watts)[0, 1]
    print(f"\ncross-node power correlation (shared office bursts): {corr:.2f}")

    # Histogram of slot energies (log-ish buckets).
    buckets = [0, 10, 25, 50, 100, 200, 400, 1e9]
    labels = ["<10", "10-25", "25-50", "50-100", "100-200", "200-400", ">400"]
    counts, _ = np.histogram(slots[0], bins=buckets)
    print()
    print(
        horizontal_bar_chart(
            {
                f"{label} uJ": 100.0 * count / len(slots[0])
                for label, count in zip(labels, counts)
            },
            title="Distribution of per-slot harvest (node 0)",
            unit="%",
        )
    )

    # How many slots one inference costs.
    mean_slot = slots[0].mean()
    for name, energy_uj in (("unpruned CNN", 250.0), ("pruned CNN", 60.0)):
        print(
            f"\none {name} inference (~{energy_uj:.0f} uJ) needs "
            f"~{energy_uj / mean_slot:.1f} mean slots of harvest "
            f"(and {energy_uj / np.median(slots[0]):.1f} median slots)"
        )
    print(
        "\nReading: the median slot is far below the mean — most of the "
        "energy arrives in bursts, which is why waiting (ER-r) and "
        "choosing the right sensor (AAS) beat always-on inference."
    )


if __name__ == "__main__":
    main()
