"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration mistakes from runtime simulation
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with invalid or inconsistent parameters."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an invalid state."""


class ModelError(ReproError, RuntimeError):
    """A neural-network model was used incorrectly (shape mismatch,
    predict before build, load of an incompatible checkpoint, ...)."""


class DatasetError(ReproError, ValueError):
    """A dataset request could not be satisfied (unknown activity,
    empty split, window longer than the recording, ...)."""


class EnergyModelError(ReproError, ValueError):
    """An energy-model computation received out-of-domain inputs."""


class SchedulingError(ReproError, RuntimeError):
    """A scheduling policy produced or received an invalid decision."""


class FaultError(ReproError, ValueError):
    """A fault plan is invalid (overlapping windows, unknown node id,
    negative slots, out-of-range probabilities, ...)."""


class ObservabilityError(ReproError, ValueError):
    """A trace/metrics operation was malformed (unregistered event kind,
    missing payload field, incompatible metric merge, schema drift)."""


class ResilienceError(ReproError, RuntimeError):
    """Supervised execution could not deliver the requested work (cells
    exhausted their retries with ``on_failure="raise"``, a journal was
    opened against a different sweep's fingerprint, ...)."""


class FleetError(ReproError, RuntimeError):
    """A population-scale fleet run could not deliver the requested
    cohort (shards exhausted their retries with ``on_failure="raise"``,
    incompatible aggregates were merged, a fleet journal was opened
    against a different cohort's fingerprint, ...)."""


class ServeError(ReproError, RuntimeError):
    """An online serving exchange was malformed (bad frame, protocol
    version mismatch, out-of-order window, unknown profile, oversized
    payload, ...).  Server sessions answer with an ``error`` frame and
    close instead of crashing the server."""


class StoreError(ReproError, RuntimeError):
    """An artifact-store operation failed (unwritable root, lock timeout,
    malformed manifest, key/schema mismatch, ...).  Integrity failures on
    read are *not* raised — a corrupt entry is evicted and treated as a
    miss so callers rebuild instead of crashing."""
