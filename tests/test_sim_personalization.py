"""Tests for the Fig. 6 personalization experiment (short horizon)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.personalization import PersonalizationExperiment, PersonalizationResult


@pytest.fixture(scope="module")
def study_result(tiny_experiment_module):
    experiment = PersonalizationExperiment(
        tiny_experiment_module,
        checkpoints=(1, 5, 20),
        windows_per_iteration=8,
        measure_window_iters=5,
    )
    return experiment.run(n_users=2, seed=1)


@pytest.fixture(scope="module")
def tiny_experiment_module(request):
    # Re-use the session fixtures through a module alias so the heavy
    # bundle trains once.
    return request.getfixturevalue("tiny_experiment")


class TestPersonalizationExperiment:
    def test_result_structure(self, study_result):
        assert isinstance(study_result, PersonalizationResult)
        assert study_result.checkpoints == [1, 5, 20]
        assert len(study_result.per_user_accuracy) == 2
        for trajectory in study_result.per_user_accuracy.values():
            assert len(trajectory) == 3
            assert all(0.0 <= acc <= 1.0 for acc in trajectory)

    def test_base_accuracy_in_range(self, study_result):
        assert 0.0 < study_result.base_accuracy <= 1.0

    def test_accessors(self, study_result):
        uid = next(iter(study_result.per_user_accuracy))
        assert study_result.user_final_accuracy(uid) == study_result.per_user_accuracy[uid][-1]
        assert study_result.user_initial_accuracy(uid) == study_result.per_user_accuracy[uid][0]

    def test_summary_renders(self, study_result):
        text = study_result.summary()
        assert "iteration" in text
        assert "base model accuracy" in text

    def test_adaptive_flag_controls_matrix(self, tiny_experiment_module):
        experiment = PersonalizationExperiment(
            tiny_experiment_module, checkpoints=(1, 3), windows_per_iteration=5
        )
        frozen = experiment.run(n_users=1, seed=2, adaptive=False)
        adapted = experiment.run(n_users=1, seed=2, adaptive=True)
        # Same users/seeds: trajectories exist for both, adaptation may
        # change them but never produces invalid values.
        for res in (frozen, adapted):
            for trajectory in res.per_user_accuracy.values():
                assert len(trajectory) == 2

    def test_invalid_checkpoints(self, tiny_experiment_module):
        with pytest.raises(ConfigurationError):
            PersonalizationExperiment(tiny_experiment_module, checkpoints=(5, 1))
        with pytest.raises(ConfigurationError):
            PersonalizationExperiment(tiny_experiment_module, checkpoints=())

    def test_invalid_windows_per_iteration(self, tiny_experiment_module):
        with pytest.raises(ConfigurationError):
            PersonalizationExperiment(tiny_experiment_module, windows_per_iteration=0)
