"""The observability bundle threaded through the simulation stack.

An :class:`Observability` pairs a :class:`~repro.obs.trace.Tracer` with
a :class:`~repro.obs.metrics.MetricsRegistry` and provides the scoped
wall-time profiling hook::

    obs = Observability()
    with obs.timed("nvp.active_slot"):
        ...hot path...
    obs.metrics.timer("nvp.active_slot").total_s

Every observable component takes (or is assigned) an ``obs`` and
defaults to :data:`NULL_OBS`, whose ``enabled`` flag is ``False``,
whose ``timed`` hands out a shared no-op scope and whose tracer/metrics
swallow everything — so the untraced path costs one attribute load and
a predictable branch, keeping default runs bit-identical and fast.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry, NullMetrics, TimerStat
from repro.obs.trace import NULL_TRACER, Tracer


class _TimedScope:
    """Context manager accumulating wall time into one TimerStat."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: TimerStat) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimedScope":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._timer.record(time.perf_counter() - self._start)


class _NullScope:
    """Reusable no-op scope (no clock reads, no allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SCOPE = _NullScope()


class Observability:
    """Tracer + metrics + profiling scopes, as one threadable handle."""

    enabled = True

    def __init__(
        self,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional :class:`~repro.obs.timeline.TimeSeriesRecorder`
        #: (installed by ``repro.obs.timeline.attach_recorder``).  When
        #: set, long-running paths stream cadenced metric snapshots a
        #: live watcher can tail; when ``None`` those sites skip with
        #: one attribute load.
        self.timeseries: Optional[Any] = None
        self._scopes: Dict[str, _TimedScope] = {}

    def timed(self, name: str) -> _TimedScope:
        """Scoped wall-time profiler: ``with obs.timed("sweep.run"): ...``.

        Scopes are cached per name (one allocation ever per timer), so
        the hot path pays two clock reads and a dict hit.  Consequence:
        a scope must not be nested inside itself (``timed("x")`` within
        ``timed("x")``) — the inner enter would clobber the outer start.
        No instrumentation site in the simulator self-nests.
        """
        scope = self._scopes.get(name)
        if scope is None:
            scope = self._scopes[name] = _TimedScope(self.metrics.timer(name))
        return scope

    def export(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        *,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Write the trace (JSONL) and/or metrics snapshot (JSON)."""
        if trace_path is not None:
            self.tracer.write_jsonl(trace_path, meta=meta)
        if metrics_path is not None:
            import json

            with open(metrics_path, "w") as handle:
                json.dump(self.metrics.to_dict(), handle, indent=2)
                handle.write("\n")


class NullObservability(Observability):
    """The zero-overhead default: disabled, swallows everything."""

    enabled = False

    def __init__(self) -> None:
        self.tracer = NULL_TRACER
        self.metrics = NullMetrics()
        self.timeseries = None

    def timed(self, name: str) -> _NullScope:  # noqa: ARG002
        return _NULL_SCOPE


#: Shared disabled bundle; the default ``obs`` everywhere.
NULL_OBS = NullObservability()
