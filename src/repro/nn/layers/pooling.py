"""Pooling layers for (batch, channels, length) inputs."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers.base import Layer, Shape


class MaxPool1D(Layer):
    """Non-overlapping temporal max pooling.

    Trailing samples that do not fill a whole pool window are dropped
    (floor division), matching the common framework default.
    """

    def __init__(self, pool_size: int, name: Optional[str] = None) -> None:
        super().__init__(name)
        if pool_size < 1:
            raise ModelError(f"pool_size must be >= 1, got {pool_size}")
        self.pool_size = int(pool_size)
        self._cached_argmax: Optional[np.ndarray] = None
        self._cached_shape: Optional[tuple] = None

    def _build(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 2:
            raise ModelError(f"MaxPool1D expects (channels, length), got {input_shape}")
        channels, length = input_shape
        if length < self.pool_size:
            raise ModelError(
                f"input length {length} shorter than pool_size {self.pool_size}"
            )
        return (channels, length // self.pool_size)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        batch, channels, length = x.shape
        out_len = length // self.pool_size
        trimmed = x[:, :, : out_len * self.pool_size]
        blocks = trimmed.reshape(batch, channels, out_len, self.pool_size)
        if training:
            self._cached_argmax = blocks.argmax(axis=3)
            self._cached_shape = x.shape
        return blocks.max(axis=3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_argmax is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        batch, channels, length = self._cached_shape
        out_len = grad_output.shape[2]
        grad_blocks = np.zeros(
            (batch, channels, out_len, self.pool_size), dtype=np.float64
        )
        b_idx, c_idx, l_idx = np.indices(self._cached_argmax.shape)
        grad_blocks[b_idx, c_idx, l_idx, self._cached_argmax] = grad_output
        grad_input = np.zeros((batch, channels, length), dtype=np.float64)
        grad_input[:, :, : out_len * self.pool_size] = grad_blocks.reshape(
            batch, channels, -1
        )
        return grad_input


class GlobalAvgPool1D(Layer):
    """Average over the temporal axis: ``(B, C, L) -> (B, C)``."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._cached_length: Optional[int] = None

    def _build(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 2:
            raise ModelError(f"GlobalAvgPool1D expects (channels, length), got {input_shape}")
        return (input_shape[0],)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        if training:
            self._cached_length = x.shape[2]
        return x.mean(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_length is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        length = self._cached_length
        return np.repeat(grad_output[:, :, None], length, axis=2) / length
