"""The sweep performance layer: run material, prediction cache, the
process-pool executor, and multi-seed merge accounting.

The load-bearing property throughout is *bit-transparency*: sharing the
per-seed precompute (or fanning runs out over processes) must not change
a single byte of any result.
"""

import numpy as np
import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.datasets.noise import add_gaussian_noise_snr
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, PacketLoss
from repro.faults.stats import FaultStats, LinkStats, RecoveryEvent
from repro.sim.predcache import PredictionCache, build_run_material
from repro.sim.sweep import PolicySweep, _merge_runs
from repro.wsn.node import NodeStats


# ---------------------------------------------------------------------------
# empty-batch prediction (the precompute path's edge case)
# ---------------------------------------------------------------------------


class TestEmptyBatchPredict:
    def test_empty_logits_shape(self, tiny_bundle):
        model = next(iter(tiny_bundle.models(pruned=True).values()))
        empty = np.zeros((0, 6, 128), dtype=np.float32)
        logits = model.predict_logits(empty)
        assert logits.shape == (0, model.output_shape[0])

    def test_empty_proba_and_labels(self, tiny_bundle):
        model = next(iter(tiny_bundle.models(pruned=False).values()))
        empty = np.zeros((0, 6, 128), dtype=np.float32)
        proba = model.predict_proba(empty)
        assert proba.shape == (0, model.output_shape[0])
        assert model.predict(empty).shape == (0,)


# ---------------------------------------------------------------------------
# run material + cache
# ---------------------------------------------------------------------------


class TestRunMaterial:
    def test_material_is_deterministic(self, tiny_experiment):
        kwargs = dict(n_windows=40, dwell_scale=3.5)
        a = build_run_material(
            tiny_experiment.dataset, tiny_experiment.bundle, 9, **kwargs
        )
        b = build_run_material(
            tiny_experiment.dataset, tiny_experiment.bundle, 9, **kwargs
        )
        assert a.labels == b.labels
        for node_id in a.windows:
            np.testing.assert_array_equal(a.windows[node_id], b.windows[node_id])
            np.testing.assert_array_equal(
                a.probabilities[node_id], b.probabilities[node_id]
            )

    def test_material_shapes(self, tiny_experiment):
        material = build_run_material(
            tiny_experiment.dataset,
            tiny_experiment.bundle,
            2,
            n_windows=25,
            dwell_scale=3.5,
        )
        n_classes = tiny_experiment.dataset.n_classes
        assert len(material.labels) == 25
        assert len(material.styles) == 25
        for node_id, probs in material.probabilities.items():
            assert probs.shape == (25, n_classes)
            np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_cache_memoizes_per_seed(self, tiny_experiment):
        cache = PredictionCache(tiny_experiment)
        first = cache.material(4)
        again = cache.material(4)
        other = cache.material(5)
        assert first is again
        assert first is not other
        assert cache.hits == 1 and cache.misses == 2

    def test_mismatched_material_rejected(self, tiny_experiment):
        cache = PredictionCache(tiny_experiment)
        material = cache.material(4)
        with pytest.raises(ConfigurationError):
            tiny_experiment.run(rr_policy(3), seed=5, material=material)
        with pytest.raises(ConfigurationError):
            tiny_experiment.run(
                rr_policy(3), seed=4, n_windows=10, material=material
            )


# ---------------------------------------------------------------------------
# bit-identity of cached vs uncached vs parallel runs
# ---------------------------------------------------------------------------


def _assert_results_identical(a, b):
    assert a.records == b.records
    assert a.node_stats == b.node_stats
    assert a.comm_energy_j == b.comm_energy_j
    assert a.confidence_updates == b.confidence_updates


class TestCacheBitIdentity:
    @pytest.mark.parametrize("spec", [rr_policy(3), origin_policy(6)], ids=lambda s: s.name)
    def test_cached_run_matches_uncached(self, tiny_experiment, spec):
        cache = PredictionCache(tiny_experiment)
        cached = tiny_experiment.run(spec, seed=4, material=cache.material(4))
        uncached = tiny_experiment.run(spec, seed=4)
        _assert_results_identical(cached, uncached)

    def test_cached_sweep_matches_uncached_sweep(self, tiny_experiment):
        policies = [rr_policy(3), origin_policy(3)]
        cached = PolicySweep(
            tiny_experiment, n_seeds=2, use_prediction_cache=True
        ).run(policies, seed=4)
        uncached = PolicySweep(
            tiny_experiment, n_seeds=2, use_prediction_cache=False
        ).run(policies, seed=4)
        for spec in policies:
            _assert_results_identical(
                cached.policy(spec.name), uncached.policy(spec.name)
            )
        for name in cached.baselines:
            np.testing.assert_array_equal(
                cached.baseline(name).predicted_labels,
                uncached.baseline(name).predicted_labels,
            )

    def test_window_transform_bypasses_cached_predictions(self, tiny_experiment):
        """A transform changes the sensed window, so the run must infer
        on the transformed window instead of serving stale softmax."""
        calls = []

        def transform(window):
            calls.append(1)
            return add_gaussian_noise_snr(window, 3.0, seed=0)

        cache = PredictionCache(tiny_experiment)
        clean = tiny_experiment.run(rr_policy(3), seed=4, material=cache.material(4))
        noisy = tiny_experiment.run(
            rr_policy(3), seed=4, material=cache.material(4),
            window_transform=transform,
        )
        assert calls
        assert noisy.records != clean.records


class TestParallelSweep:
    def test_workers_must_be_positive(self, tiny_experiment):
        sweep = PolicySweep(tiny_experiment, n_seeds=1)
        with pytest.raises(ConfigurationError):
            sweep.run([rr_policy(3)], seed=4, workers=0)

    def test_parallel_matches_sequential(self, tiny_experiment):
        policies = [rr_policy(3), origin_policy(3)]
        sweep = PolicySweep(tiny_experiment, n_seeds=2)
        sequential = sweep.run(policies, seed=4, workers=1)
        parallel = sweep.run(policies, seed=4, workers=4)
        assert set(parallel.policies) == set(sequential.policies)
        for spec in policies:
            _assert_results_identical(
                parallel.policy(spec.name), sequential.policy(spec.name)
            )
        for name in sequential.baselines:
            np.testing.assert_array_equal(
                parallel.baseline(name).true_labels,
                sequential.baseline(name).true_labels,
            )

    def test_odd_worker_counts_cover_the_grid(self, tiny_experiment):
        """Chunking with workers not dividing the grid loses no runs."""
        policies = [rr_policy(3), rr_policy(6), origin_policy(3)]
        sweep = PolicySweep(tiny_experiment, n_seeds=2, include_baselines=False)
        sequential = sweep.run(policies, seed=7, workers=1)
        parallel = sweep.run(policies, seed=7, workers=3)
        for spec in policies:
            _assert_results_identical(
                parallel.policy(spec.name), sequential.policy(spec.name)
            )


# ---------------------------------------------------------------------------
# multi-seed merge accounting (the bugfix)
# ---------------------------------------------------------------------------


class TestMergeRuns:
    def test_node_stats_sum_across_seeds(self, tiny_experiment):
        """Regression: merged node stats must cover *all* runs, not just
        the last one (slots double with two 60-slot seeds)."""
        runs = [
            tiny_experiment.run(rr_policy(3), seed=4),
            tiny_experiment.run(rr_policy(3), seed=5),
        ]
        merged = _merge_runs(runs)
        for node_id, stats in merged.node_stats.items():
            assert stats.slots == 120
            assert stats.completions == sum(
                run.node_stats[node_id].completions for run in runs
            )
            assert stats.harvested_j == pytest.approx(
                sum(run.node_stats[node_id].harvested_j for run in runs)
            )

    def test_sweep_reports_summed_node_stats(self, tiny_experiment):
        result = PolicySweep(
            tiny_experiment, n_seeds=2, include_baselines=False
        ).run([rr_policy(3)], seed=4)
        merged = result.policy("RR3")
        assert merged.n_slots == 120
        assert all(stats.slots == 120 for stats in merged.node_stats.values())

    def test_fault_stats_survive_merging(self, tiny_experiment):
        """Regression: a multi-seed faulted sweep must carry merged
        fault accounting instead of silently dropping it."""
        plan = FaultPlan(faults=(PacketLoss(rate=0.4),))
        runs = [
            tiny_experiment.run(rr_policy(3), seed=seed, faults=plan)
            for seed in (4, 5)
        ]
        merged = _merge_runs(runs)
        assert merged.fault_stats is not None
        assert merged.fault_stats.messages_sent == sum(
            run.fault_stats.messages_sent for run in runs
        )
        assert merged.fault_stats.messages_dropped == sum(
            run.fault_stats.messages_dropped for run in runs
        )
        assert merged.total_dropped_messages == sum(
            run.total_dropped_messages for run in runs
        )

    def test_fault_stats_merged_unit(self):
        a = FaultStats(
            per_link={0: LinkStats(10, 8, 2, 1)},
            offline_slots={0: 5},
            recoveries=(RecoveryEvent(0, 1, 2, recovered_slot=4),),
            host_restarts=1,
        )
        b = FaultStats(
            per_link={0: LinkStats(4, 4, 0, 0), 1: LinkStats(6, 3, 3, 0)},
            offline_slots={1: 7},
            recoveries=(RecoveryEvent(1, 3, 6),),
            host_restarts=2,
        )
        merged = FaultStats.merged([a, b])
        assert merged.per_link[0].messages_sent == 14
        assert merged.per_link[1].messages_dropped == 3
        assert merged.offline_slots == {0: 5, 1: 7}
        assert len(merged.recoveries) == 2
        assert merged.host_restarts == 3

    def test_node_stats_merged_unit(self):
        merged = NodeStats.merged(
            [
                NodeStats(slots=10, completions=3, harvested_j=1.5),
                NodeStats(slots=20, completions=4, harvested_j=0.5),
            ]
        )
        assert merged.slots == 30
        assert merged.completions == 7
        assert merged.harvested_j == pytest.approx(2.0)
