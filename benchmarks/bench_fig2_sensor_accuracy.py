"""Fig. 2 — per-sensor DNN accuracy and majority voting (MHEALTH).

Paper shape: the left-ankle classifier is the strongest overall, the
chest beats the ankle for climbing, the wrist is the weakest, and
majority voting is at least competitive with the best individual.
"""

import numpy as np
import pytest

from repro.datasets.activities import Activity
from repro.reporting import render_fig2_sensor_accuracy
from repro.sim.baselines import per_sensor_accuracy


@pytest.fixture(scope="module")
def fig2_data(mhealth_exp):
    per_sensor = None
    majority = None
    # Average two timelines for stability.
    collected = []
    for seed in (31, 32):
        collected.append(
            per_sensor_accuracy(
                mhealth_exp.dataset,
                mhealth_exp.bundle,
                pruned=True,
                windows_per_class=60,
                seed=seed,
            )
        )
    activities = mhealth_exp.dataset.spec.activities
    per_sensor = {
        name: {
            a: float(np.mean([c[0][name][a] for c in collected])) for a in activities
        }
        for name in collected[0][0]
    }
    majority = {
        a: float(np.mean([c[1][a] for c in collected])) for a in activities
    }
    return per_sensor, majority


def overall(report):
    return float(np.mean(list(report.values())))


def test_fig2_render(fig2_data, mhealth_exp, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_sensor, majority = fig2_data
    save_result(
        "fig2_sensor_accuracy",
        render_fig2_sensor_accuracy(
            mhealth_exp.dataset.spec.activities, per_sensor, majority
        ),
    )


def test_fig2_ankle_strongest_overall(fig2_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_sensor, _ = fig2_data
    assert overall(per_sensor["Left Ankle"]) > overall(per_sensor["Right Wrist"])
    assert overall(per_sensor["Left Ankle"]) >= overall(per_sensor["Chest"]) - 0.05


def test_fig2_chest_best_at_climbing(fig2_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_sensor, _ = fig2_data
    chest = per_sensor["Chest"][Activity.CLIMBING]
    ankle = per_sensor["Left Ankle"][Activity.CLIMBING]
    wrist = per_sensor["Right Wrist"][Activity.CLIMBING]
    assert chest >= max(ankle, wrist) - 0.02, (
        "the chest's torso-pitch signature should win climbing"
    )


def test_fig2_wrist_weakest(fig2_data, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    per_sensor, _ = fig2_data
    assert overall(per_sensor["Right Wrist"]) == min(
        overall(report) for report in per_sensor.values()
    )


def test_fig2_majority_voting_competitive(fig2_data, benchmark, mhealth_exp):
    per_sensor, majority = fig2_data
    best_individual = max(overall(report) for report in per_sensor.values())
    assert overall(majority) > best_individual - 0.05

    benchmark.pedantic(
        lambda: per_sensor_accuracy(
            mhealth_exp.dataset, mhealth_exp.bundle, windows_per_class=10, seed=1
        ),
        rounds=1,
        iterations=1,
    )
