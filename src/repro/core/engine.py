"""The policy decision core, shared by simulation and serving.

One slot of Origin's host-side logic — schedule, ingest node reports,
vote, observe — used to live inline in :meth:`HARExperiment.run`'s
scalar loop, duplicated in the vectorized kernel's per-slot epilogue,
and was therefore unusable anywhere a simulation loop was not running.
:class:`DecisionEngine` extracts it behind a two-phase per-slot API so
the same object drives all three consumers:

* the scalar experiment loop (physics stepped by ``BodyAreaNetwork``),
* the vectorized kernel (physics advanced as lane arrays),
* an online serving session (:mod:`repro.serve`), where the "physics"
  is a remote device streaming its own state and reports.

The contract is byte-identity: the engine executes the exact statements
the scalar loop executed, in the same order, so extracting it changes
no simulated result — and a served session fed the same per-slot states
and reports as an offline run produces the identical decision stream.

Per slot::

    active = engine.begin_slot(slot, states)     # scheduling decision
    ... the caller runs/receives the physics for `active` ...
    final = engine.finish_slot(slot, outcomes)   # vote + adaptation

``states`` maps node id -> :class:`NodeSlotState` in **node construction
order** (python dicts preserve insertion order; the scheduling context
dicts are rebuilt in that order, which ER-r/AAS tie-breaking depends
on).  ``outcomes`` are :class:`~repro.wsn.node.InferenceOutcome`-shaped
objects — the serving path feeds wire-decoded reports that duck-type the
same fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.ensemble.confidence import ConfidenceMatrix
from repro.core.ensemble.voting import MajorityVote, WeightedMajorityVote
from repro.core.policies import AggregationMode, PolicySpec
from repro.core.scheduling.base import SchedulingContext
from repro.core.scheduling.rank_table import RankTable
from repro.errors import SimulationError
from repro.obs.observer import NULL_OBS, Observability
from repro.wsn.host import HostDevice

__all__ = ["DecisionEngine", "NodeSlotState", "make_vote"]


@dataclass(frozen=True)
class NodeSlotState:
    """One node's scheduler-visible state at the top of a slot.

    ``online=False`` models a dead/browned-out node: the scheduler sees
    zero energy and not-ready, and the node is filtered out of the
    active set even if the policy insists on it.
    """

    energy_j: float
    ready: bool
    online: bool = True


def make_vote(spec: PolicySpec, confidence: ConfidenceMatrix):
    """The host-side vote function for a recall-aggregating policy."""
    if spec.aggregation is AggregationMode.MAJORITY_RECALL:
        return MajorityVote()
    if spec.aggregation is AggregationMode.CONFIDENCE_RECALL:
        return WeightedMajorityVote(confidence)
    raise SimulationError(f"{spec.aggregation} has no host-side vote")


class DecisionEngine:
    """Host-side per-slot decision logic for one policy run.

    Owns the scheduler, the :class:`~repro.wsn.host.HostDevice` (recall
    memory + vote) and the confidence matrix of a single run, advancing
    them one slot at a time.  It never touches node physics: callers
    hand it scheduler-visible node states and completed-inference
    reports, which is exactly what lets it serve online traffic where
    the nodes live on the other end of a socket.

    Parameters
    ----------
    policy:
        The :class:`~repro.core.policies.PolicySpec` to execute.
    node_ids:
        Deployment node ids **in construction order** (scheduling
        tie-breaks follow this order).
    rank_table:
        Per-activity sensor ranking (required by activity-aware specs).
    confidence:
        The run's confidence matrix; mutated in place by adaptive
        policies, exactly like ``HARExperiment.run(confidence_matrix=)``.
    max_recall_age_slots / staleness_half_life_slots:
        Host recall knobs (see :class:`~repro.wsn.host.HostDevice`).
    obs:
        Observability bundle; the engine emits the scalar loop's
        ``slot.scheduled`` / ``confidence.updated`` events and the host
        emits ``vote.cast`` when enabled.
    """

    def __init__(
        self,
        policy: PolicySpec,
        node_ids: Sequence[int],
        rank_table: Optional[RankTable],
        confidence: ConfidenceMatrix,
        *,
        max_recall_age_slots: Optional[int] = None,
        staleness_half_life_slots: Optional[int] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.policy = policy
        self.node_ids = list(node_ids)
        self.confidence = confidence
        self.obs = obs
        self.host = HostDevice(
            make_vote(policy, confidence)
            if policy.uses_recall
            else MajorityVote(),
            max_recall_age_slots=max_recall_age_slots,
            staleness_half_life_slots=staleness_half_life_slots,
        )
        if obs.enabled:
            self.host.attach_obs(obs)
        self.scheduler = policy.make_scheduler(self.node_ids, rank_table)
        self.scheduler.reset()
        #: The most recent final classification (the anticipated label).
        self.last_final: Optional[int] = None
        self._confidence_updates_before = confidence.updates

    @property
    def confidence_updates(self) -> int:
        """Online confidence updates applied since construction."""
        return self.confidence.updates - self._confidence_updates_before

    # ------------------------------------------------------------------
    # the two slot phases
    # ------------------------------------------------------------------

    def begin_slot(
        self,
        slot: int,
        states: Dict[int, NodeSlotState],
        *,
        node_responsive: Optional[Dict[int, bool]] = None,
    ) -> List[int]:
        """Scheduling phase: pick (and trace) this slot's active set.

        Offline nodes are masked exactly as the scalar loop masks them:
        the scheduler sees zero stored energy and not-ready, and any
        offline id it picks anyway is dropped from the returned set.
        """
        context = SchedulingContext(
            node_energy_j={
                node_id: (state.energy_j if state.online else 0.0)
                for node_id, state in states.items()
            },
            node_ready={
                node_id: (state.ready and state.online)
                for node_id, state in states.items()
            },
            anticipated_label=self.last_final,
            node_responsive=node_responsive if node_responsive is not None else {},
        )
        active = [
            node_id
            for node_id in self.scheduler.active_nodes(slot, context)
            if states[node_id].online
        ]
        trace = self.obs.tracer
        if trace.enabled:
            trace.append(
                "slot.scheduled",
                slot,
                None,
                {"active": list(active), "anticipated": self.last_final},
            )
        return active

    def finish_slot(
        self,
        slot: int,
        outcomes: Sequence,
        *,
        receive: bool = False,
        decide: bool = True,
        on_completion: Optional[Callable] = None,
    ) -> Optional[int]:
        """Decision phase: ingest reports, adapt, vote, observe.

        Parameters
        ----------
        outcomes:
            This slot's inference outcomes in node construction order
            (``InferenceOutcome`` or any object carrying its report
            fields).
        receive:
            Feed completed+delivered outcomes to the host here.  The
            scalar experiment passes ``False`` because
            ``BodyAreaNetwork.step_slot`` already delivered them; the
            kernel and serving paths pass ``True``.
        decide:
            ``False`` skips the vote (an overloaded serving session
            shedding work): reports are still ingested and the
            scheduler still observes the slot — with ``final=None`` —
            so the session stays consistent, but no decision is made
            and ``last_final`` is unchanged.
        on_completion:
            Called with each completed outcome before confidence
            adaptation (the fault engine's completion hook).
        """
        policy = self.policy
        trace = self.obs.tracer
        if receive:
            for outcome in outcomes:
                if outcome.completed and outcome.delivered:
                    self.host.receive(outcome)
        for outcome in outcomes:
            if not outcome.completed:
                continue
            if on_completion is not None:
                on_completion(outcome)
            if policy.adaptive_confidence and outcome.delivered:
                # The matrix lives on the host: it adapts on what
                # arrived, including a corrupted label.
                self.confidence.update(
                    outcome.node_id, outcome.delivered_label, outcome.confidence
                )
                if trace.enabled:
                    trace.append(
                        "confidence.updated",
                        slot,
                        outcome.node_id,
                        {
                            "label": outcome.delivered_label,
                            "confidence": float(outcome.confidence),
                        },
                    )
        final: Optional[int] = None
        if decide:
            if policy.uses_recall:
                final = self.host.classify(slot)
            else:
                completed = [o for o in outcomes if o.completed and o.delivered]
                if completed:
                    self.last_final = completed[-1].delivered_label
                final = self.last_final
            if final is not None:
                self.last_final = final
        # The scheduler is host-side: it never observes a result whose
        # message was lost in transit.
        self.scheduler.observe(
            slot, [o for o in outcomes if o.delivered], final
        )
        return final
