"""Tests for individual layers: shapes, forward semantics, errors."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1D,
    MaxPool1D,
    ReLU,
)
from repro.nn.layers.activations import softmax
from repro.nn.layers.conv import im2col_1d


class TestDense:
    def test_output_shape(self):
        layer = Dense(5, seed=0)
        assert layer.build((3,)) == (5,)

    def test_affine_map(self):
        layer = Dense(2, seed=0)
        layer.build((3,))
        layer.W[...] = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer.b[...] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[4.5, 4.5]])

    def test_rejects_conv_input(self):
        with pytest.raises(ModelError, match="Flatten"):
            Dense(4).build((3, 10))

    def test_backward_before_forward(self):
        layer = Dense(2, seed=0)
        layer.build((3,))
        with pytest.raises(ModelError):
            layer.backward(np.zeros((1, 2)))

    def test_invalid_units(self):
        with pytest.raises(ModelError):
            Dense(0)

    def test_param_count(self):
        layer = Dense(5, seed=0)
        layer.build((3,))
        assert layer.n_params() == 3 * 5 + 5


class TestConv1D:
    def test_output_shape_valid_padding(self):
        layer = Conv1D(8, 5, seed=0)
        assert layer.build((6, 128)) == (8, 124)

    def test_matches_manual_convolution(self):
        layer = Conv1D(1, 3, seed=0)
        layer.build((1, 6))
        layer.W[...] = np.array([[[1.0, 0.0, -1.0]]])
        layer.b[...] = 0.0
        x = np.arange(6, dtype=float).reshape(1, 1, 6)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [-2.0, -2.0, -2.0, -2.0])

    def test_kernel_longer_than_input(self):
        with pytest.raises(ModelError):
            Conv1D(2, 10).build((1, 5))

    def test_in_channels(self):
        layer = Conv1D(4, 3, seed=0)
        layer.build((6, 20))
        assert layer.in_channels == 6

    def test_wrong_input_shape(self):
        layer = Conv1D(4, 3, seed=0)
        layer.build((6, 20))
        with pytest.raises(ModelError):
            layer.forward(np.zeros((2, 5, 20)))


class TestIm2Col:
    def test_shape(self):
        cols = im2col_1d(np.zeros((2, 3, 10)), kernel_size=4)
        assert cols.shape == (2, 12, 7)

    def test_content(self):
        x = np.arange(5, dtype=float).reshape(1, 1, 5)
        cols = im2col_1d(x, kernel_size=2)
        np.testing.assert_allclose(cols[0], [[0, 1, 2, 3], [1, 2, 3, 4]])

    def test_rejects_2d(self):
        with pytest.raises(ModelError):
            im2col_1d(np.zeros((3, 10)), 2)


class TestMaxPool1D:
    def test_output_shape_floors(self):
        layer = MaxPool1D(4)
        assert layer.build((8, 30)) == (8, 7)

    def test_max_selection(self):
        layer = MaxPool1D(2)
        layer.build((1, 4))
        out = layer.forward(np.array([[[1.0, 3.0, 2.0, 0.0]]]))
        np.testing.assert_allclose(out, [[[3.0, 2.0]]])

    def test_too_short_input(self):
        with pytest.raises(ModelError):
            MaxPool1D(8).build((2, 5))


class TestGlobalAvgPool1D:
    def test_mean(self):
        layer = GlobalAvgPool1D()
        layer.build((2, 4))
        out = layer.forward(np.ones((1, 2, 4)) * 3.0)
        np.testing.assert_allclose(out, [[3.0, 3.0]])

    def test_shape(self):
        assert GlobalAvgPool1D().build((5, 9)) == (5,)


class TestReLU:
    def test_clamps_negatives(self):
        layer = ReLU()
        layer.build((3,))
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_shape_preserved(self):
        assert ReLU().build((4, 7)) == (4, 7)


class TestFlatten:
    def test_channel_major_order(self):
        layer = Flatten()
        layer.build((2, 3))
        x = np.arange(6).reshape(1, 2, 3)
        out = layer.forward(x)
        np.testing.assert_array_equal(out, [[0, 1, 2, 3, 4, 5]])

    def test_backward_restores_shape(self):
        layer = Flatten()
        layer.build((2, 3))
        layer.forward(np.zeros((4, 2, 3)), training=True)
        grad = layer.backward(np.ones((4, 6)))
        assert grad.shape == (4, 2, 3)


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5, seed=0)
        layer.build((10,))
        x = np.random.default_rng(0).random((4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_zeroes_fraction(self):
        layer = Dropout(0.5, seed=0)
        layer.build((1000,))
        out = layer.forward(np.ones((1, 1000)), training=True)
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6

    def test_inverted_scaling_preserves_mean(self):
        layer = Dropout(0.3, seed=1)
        layer.build((5000,))
        out = layer.forward(np.ones((1, 5000)), training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ModelError):
            Dropout(1.0)


class TestBatchNorm1D:
    def test_normalizes_training_batch(self):
        layer = BatchNorm1D()
        layer.build((4,))
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(64, 4))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_conv_shape_normalization(self):
        layer = BatchNorm1D()
        layer.build((3, 8))
        x = np.random.default_rng(0).normal(2.0, 2.0, size=(16, 3, 8))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-7)

    def test_running_stats_used_at_inference(self):
        layer = BatchNorm1D(momentum=0.0)  # running stats = last batch
        layer.build((2,))
        x = np.random.default_rng(1).normal(3.0, 1.0, size=(128, 2))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert abs(out.mean()) < 0.2

    def test_invalid_momentum(self):
        with pytest.raises(ModelError):
            BatchNorm1D(momentum=1.0)


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])
