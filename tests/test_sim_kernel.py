"""Vectorized slot kernel (``repro.sim.kernel``).

Three concerns share this file because they gate each other:

* regressions for the energy-ledger and NVP-trace bug fixes the kernel
  was built on top of (a vectorized copy of buggy physics would have
  frozen the bugs in);
* energy-conservation properties of the per-node ledger, fault-free and
  under faults;
* the kernel's byte-identity contract against the scalar slot loop —
  stage 1 (single node, fixed schedule), stage 2 (batched policy runs)
  and the sweep integration with its scalar fallback.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.policies import aas_policy, aasr_policy, origin_policy, rr_policy
from repro.datasets.body import BodyLocation
from repro.datasets.pamap2 import make_pamap2
from repro.energy.harvester import Harvester
from repro.energy.nvp import NonVolatileProcessor
from repro.energy.storage import Capacitor
from repro.energy.traces import PowerTrace
from repro.errors import ConfigurationError
from repro.faults import Brownout, FaultPlan, NodeDeath, PacketLoss
from repro.obs.observer import NULL_OBS, Observability
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.kernel import (
    SlotKernel,
    kernel_eligible,
    run_node_schedule,
    run_policy_batch,
)
from repro.sim.sweep import PolicySweep
from repro.sim.training import TrainedSensorBundle, TrainingConfig
from repro.wsn.comm import CommLink, RadioProfile
from repro.wsn.node import NodeCosts, SensorNode

SLOT_S = 2.56

GRID = [rr_policy(3), aas_policy(6), aasr_policy(9), origin_policy(12)]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _make_node(
    *,
    n_slots: int = 64,
    seed: int = 0,
    mean_slot_j: float = 30e-6,
    capacity_j: float = 60e-6,
    initial_j: float = 0.0,
    leakage_w: float = 2e-7,
    idle_j: float = 0.5e-6,
    sense_j: float = 8e-6,
    inference_j: float = 40e-6,
    checkpoint_overhead: float = 0.05,
    volatile: bool = False,
    max_task_age_slots=None,
    n_classes: int = 5,
) -> SensorNode:
    """A standalone node over a random trace, with a prediction cache."""
    rng = np.random.default_rng(seed)
    watts = rng.uniform(0.0, 2.0 * mean_slot_j / SLOT_S, size=n_slots)
    node = SensorNode(
        0,
        BodyLocation.CHEST,
        None,  # model is never consulted: a prediction cache is installed
        inference_j,
        Harvester(PowerTrace(dt_s=SLOT_S, watts=watts)),
        Capacitor(capacity_j, initial_j, leakage_w),
        NonVolatileProcessor(checkpoint_overhead, volatile=volatile),
        CommLink(RadioProfile.ble()),
        costs=NodeCosts(sense_j=sense_j, idle_j=idle_j),
        slot_duration_s=SLOT_S,
        max_task_age_slots=max_task_age_slots,
    )
    node.prediction_cache = rng.dirichlet(np.ones(n_classes), size=n_slots)
    return node


def _scalar_drive(node: SensorNode, schedule) -> list:
    """The python slot loop the kernel replaces."""
    window = np.zeros((3, 4), dtype=np.float32)
    outcomes = []
    for slot, active in enumerate(schedule):
        if active:
            outcomes.append(node.active_slot(slot, window))
        else:
            node.idle_slot(slot)
    return outcomes


def _assert_outcomes_equal(fast, slow):
    assert len(fast) == len(slow)
    for a, b in zip(fast, slow):
        assert a.node_id == b.node_id
        assert a.location is b.location
        assert a.slot_index == b.slot_index
        assert a.started_slot == b.started_slot
        assert a.completed == b.completed
        assert a.predicted_label == b.predicted_label
        assert a.confidence == b.confidence
        assert a.energy_consumed_j == b.energy_consumed_j
        assert a.delivered == b.delivered
        assert a.reported_label == b.reported_label
        if a.probabilities is None:
            assert b.probabilities is None
        else:
            np.testing.assert_array_equal(a.probabilities, b.probabilities)


def _assert_results_equal(fast, slow):
    assert fast.policy_name == slow.policy_name
    assert fast.records == slow.records
    assert fast.node_stats == slow.node_stats
    assert fast.comm_energy_j == slow.comm_energy_j
    assert fast.confidence_updates == slow.confidence_updates


def _assert_sweeps_equal(fast, slow):
    assert sorted(fast.policies) == sorted(slow.policies)
    for name in fast.policies:
        _assert_results_equal(fast.policy(name), slow.policy(name))
    assert sorted(fast.baselines) == sorted(slow.baselines)
    for name in fast.baselines:
        np.testing.assert_array_equal(
            fast.baseline(name).true_labels, slow.baseline(name).true_labels
        )
        np.testing.assert_array_equal(
            fast.baseline(name).predicted_labels,
            slow.baseline(name).predicted_labels,
        )


# ---------------------------------------------------------------------------
# regression: idle draw must appear in the consumed ledger
# ---------------------------------------------------------------------------


class TestEnergyLedger:
    def test_idle_draw_is_charged_to_consumed(self):
        # Before the fix, a node that only idled reported consumed_j=0
        # while its capacitor drained — the ledger leaked silently.
        node = _make_node(initial_j=20e-6)
        for slot in range(10):
            node.idle_slot(slot)
        assert node.stats.active_slots == 0
        assert node.stats.consumed_j == pytest.approx(10 * node.costs.idle_j)
        assert node.stats.leaked_j > 0.0

    def test_conservation_fault_free(self):
        # harvested - consumed - leaked == delta(stored), to float
        # accumulation error, over a random active/idle schedule.
        initial = 10e-6
        node = _make_node(seed=3, initial_j=initial)
        schedule = np.random.default_rng(42).random(64) < 0.6
        _scalar_drive(node, schedule)
        stats = node.stats
        balance = initial + stats.harvested_j - stats.consumed_j - stats.leaked_j
        assert balance == pytest.approx(node.capacitor.stored_j, abs=1e-15)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(volatile=True),
            dict(max_task_age_slots=2, mean_slot_j=12e-6),
            dict(capacity_j=12e-6, mean_slot_j=6e-6),
        ],
        ids=["volatile", "stale-abort", "sense-starved"],
    )
    def test_conservation_across_node_variants(self, overrides):
        node = _make_node(seed=5, initial_j=4e-6, **overrides)
        schedule = np.random.default_rng(1).random(64) < 0.8
        _scalar_drive(node, schedule)
        stats = node.stats
        balance = 4e-6 + stats.harvested_j - stats.consumed_j - stats.leaked_j
        assert balance == pytest.approx(node.capacitor.stored_j, abs=1e-15)

    def test_conservation_under_faults(self, tiny_experiment):
        # Brownouts dump stored charge without a ledger entry (the
        # supply collapsed; nothing "consumed" it), so under faults the
        # invariant weakens to "no energy is created": every node's
        # spend never exceeds its income.
        plan = FaultPlan(
            faults=(
                Brownout(node_id=0, start_slot=10, duration_slots=6),
                NodeDeath(1, at_slot=40),
                PacketLoss(rate=0.3),
            )
        )
        result = tiny_experiment.run(rr_policy(3), seed=9, faults=plan)
        for stats in result.node_stats.values():
            spend = stats.consumed_j + stats.leaked_j
            assert spend <= stats.harvested_j + 1e-12

    def test_kernel_lane_conservation(self):
        # The same invariant holds per lane inside the kernel arrays.
        initial = 15e-6
        node = _make_node(seed=5, initial_j=initial)
        kernel = SlotKernel.from_nodes([node], n_runs=3, n_slots=64)
        rng = np.random.default_rng(7)
        for slot in range(64):
            kernel.advance(slot, rng.random(3) < 0.5)
        balance = initial + kernel.harvested_j - kernel.consumed_j - kernel.leaked_j
        np.testing.assert_allclose(balance, kernel.stored, atol=1e-15)


# ---------------------------------------------------------------------------
# regression: the completing burst must trace progress_fraction = 1.0
# ---------------------------------------------------------------------------


class TestNvpProgressTrace:
    @staticmethod
    def _record(nvp):
        events = []
        nvp.observer = lambda event, payload: events.append((event, dict(payload)))
        return events

    def test_completing_burst_reports_full_progress(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.0)
        events = self._record(nvp)
        nvp.start_task(10e-6)
        nvp.execute_burst(4e-6)
        assert nvp.done_work_j == pytest.approx(4e-6)
        nvp.execute_burst(20e-6)
        bursts = [payload for event, payload in events if event == "burst"]
        assert bursts[0]["completed"] is False
        assert bursts[0]["progress_fraction"] == pytest.approx(0.4)
        # Before the fix the completing burst reported 0.0 (the state
        # had already been finalized when the observer fired).
        assert bursts[1]["completed"] is True
        assert bursts[1]["progress_fraction"] == 1.0

    def test_volatile_wipe_reports_zero(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.0, volatile=True)
        events = self._record(nvp)
        nvp.start_task(10e-6)
        nvp.execute_burst(4e-6)
        bursts = [payload for event, payload in events if event == "burst"]
        assert bursts[0]["completed"] is False
        assert bursts[0]["progress_fraction"] == 0.0
        assert nvp.done_work_j == 0.0

    def test_scan_friendly_properties(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.2)
        assert nvp.useful_fraction == pytest.approx(0.8)
        assert nvp.done_work_j == 0.0  # idle reads as zero progress
        nvp.start_task(8e-6)
        nvp.execute_burst(5e-6)
        assert nvp.done_work_j == pytest.approx(4e-6)


# ---------------------------------------------------------------------------
# regression: reset() must drop the cached harvest vector and slot cursor
# ---------------------------------------------------------------------------


class TestResetClearsScanState:
    def test_reset_clears_cached_trace_and_slot_cursor(self):
        node = _make_node(seed=1, initial_j=20e-6)
        window = np.zeros((3, 4), dtype=np.float32)
        for slot in range(4):
            node.active_slot(slot, window)
        assert node._slot_energies is not None
        assert node._current_slot == 3
        # Swap the harvester: before the fix, reset() kept the cached
        # per-slot vector and silently replayed the old trace.
        node.harvester = Harvester(
            PowerTrace(dt_s=SLOT_S, watts=np.full(16, 40e-6 / SLOT_S))
        )
        node.reset()
        assert node._slot_energies is None
        assert node._current_slot == 0
        node.idle_slot(0)
        assert node.stats.harvested_j == pytest.approx(40e-6)


# ---------------------------------------------------------------------------
# scan-friendly harvest vectors (traces/harvester/node agree)
# ---------------------------------------------------------------------------


class TestSlotEnergyVectors:
    def test_trace_pads_and_truncates(self):
        trace = PowerTrace(dt_s=SLOT_S, watts=np.arange(1, 5, dtype=float))
        full = trace.slot_energies(SLOT_S)
        assert full.size == 4
        padded = trace.slot_energies(SLOT_S, n_slots=6)
        np.testing.assert_array_equal(padded[:4], full)
        np.testing.assert_array_equal(padded[4:], 0.0)
        truncated = trace.slot_energies(SLOT_S, n_slots=2)
        np.testing.assert_array_equal(truncated, full[:2])

    def test_harvester_padding_has_no_supplemental(self):
        # Beyond the trace end a node harvests exactly 0.0 J — the
        # battery trickle stops with the trace, exactly like the scalar
        # path's out-of-range fallback.
        trace = PowerTrace(dt_s=SLOT_S, watts=np.full(3, 1e-6))
        harvester = Harvester(trace, supplemental_w=2e-6)
        vec = harvester.slot_energies(SLOT_S, n_slots=5)
        assert vec[0] == pytest.approx((1e-6 + 2e-6) * SLOT_S)
        np.testing.assert_array_equal(vec[3:], 0.0)

    def test_node_vector_matches_scalar_slot_harvest(self):
        node = _make_node(seed=8, n_slots=10)
        vec = node.slot_energy_vector(14)
        scalar = [node._slot_harvest(slot) for slot in range(14)]
        np.testing.assert_array_equal(vec, np.asarray(scalar))


# ---------------------------------------------------------------------------
# stage 1: single node, fixed schedule, byte-identical to the slot loop
# ---------------------------------------------------------------------------


STAGE1_CASES = {
    "nvp": dict(),
    "volatile": dict(volatile=True),
    "stale-abort": dict(max_task_age_slots=2, mean_slot_j=12e-6),
    "sense-starved": dict(capacity_j=12e-6, mean_slot_j=6e-6),
    "checkpoint-heavy": dict(checkpoint_overhead=0.3),
    "pre-charged": dict(initial_j=50e-6),
}


class TestStage1Identity:
    @pytest.mark.parametrize(
        "overrides", list(STAGE1_CASES.values()), ids=list(STAGE1_CASES.keys())
    )
    def test_schedule_identity(self, overrides):
        schedule = np.random.default_rng(9).random(64) < 0.7
        scalar_node = _make_node(seed=21, **overrides)
        kernel_node = _make_node(seed=21, **overrides)
        slow = _scalar_drive(scalar_node, schedule)
        fast, stats = run_node_schedule(kernel_node, schedule)
        _assert_outcomes_equal(fast, slow)
        assert stats == scalar_node.stats
        assert kernel_node.comm.messages_sent == scalar_node.comm.messages_sent
        assert kernel_node.comm.energy_spent_j == scalar_node.comm.energy_spent_j
        # The kernel scans lane state; the node's own capacitor/NVP are
        # left untouched (it remains a reusable template).
        assert kernel_node.capacitor.stored_j == overrides.get("initial_j", 0.0)

    def test_all_idle_schedule(self):
        node = _make_node(seed=2, initial_j=6e-6)
        reference = _make_node(seed=2, initial_j=6e-6)
        _scalar_drive(reference, np.zeros(32, dtype=bool))
        outcomes, stats = run_node_schedule(node, np.zeros(32, dtype=bool))
        assert outcomes == []
        assert stats == reference.stats

    def test_requires_prediction_cache(self):
        node = _make_node()
        node.prediction_cache = None
        with pytest.raises(ConfigurationError, match="prediction_cache"):
            run_node_schedule(node, [True, False])


# ---------------------------------------------------------------------------
# eligibility rules
# ---------------------------------------------------------------------------


class TestEligibility:
    _material = SimpleNamespace(probabilities={0: np.zeros((4, 3))})

    def test_eligible_run(self):
        assert kernel_eligible(
            material=self._material, window_transform=None, faults=None, obs=None
        )
        assert kernel_eligible(
            material=self._material,
            window_transform=None,
            faults=FaultPlan(),  # an empty plan changes nothing
            obs=NULL_OBS,
        )

    def test_scalar_fallback_rules(self):
        eligible = dict(
            material=self._material, window_transform=None, faults=None, obs=None
        )
        assert not kernel_eligible(**{**eligible, "obs": Observability()})
        assert not kernel_eligible(**{**eligible, "window_transform": lambda w: w})
        assert not kernel_eligible(**{**eligible, "material": None})
        assert not kernel_eligible(
            **{**eligible, "material": SimpleNamespace(probabilities=None)}
        )
        assert not kernel_eligible(
            **{**eligible, "faults": FaultPlan(faults=(NodeDeath(0, at_slot=5),))}
        )


# ---------------------------------------------------------------------------
# stage 2: batched policy runs, byte-identical to HARExperiment.run
# ---------------------------------------------------------------------------


class TestBatchIdentity:
    @pytest.mark.parametrize("seed", [7, 13])
    def test_batch_matches_scalar_grid(self, tiny_experiment, seed):
        batch = run_policy_batch(tiny_experiment, GRID, seed)
        assert len(batch) == len(GRID)
        for spec, fast in zip(GRID, batch):
            slow = tiny_experiment.run(spec, seed=seed, kernel=False)
            _assert_results_equal(fast, slow)

    def test_run_auto_routes_identically(self, tiny_experiment):
        fast = tiny_experiment.run(origin_policy(3), seed=5)  # kernel auto
        slow = tiny_experiment.run(origin_policy(3), seed=5, kernel=False)
        _assert_results_equal(fast, slow)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(volatile=True),
            dict(max_task_age_slots=2),
            dict(battery_supplement_w=2e-6),
            dict(capacitor_capacity_j=30e-6, capacitor_initial_j=10e-6),
            dict(max_recall_age_slots=6),
        ],
        ids=["volatile", "stale-abort", "hybrid", "small-cap", "recall-expiry"],
    )
    def test_config_variants_identical(self, tiny_dataset, tiny_bundle, overrides):
        config = SimulationConfig(n_windows=40, **overrides)
        experiment = HARExperiment(tiny_dataset, tiny_bundle, config=config, seed=3)
        fast = experiment.run(rr_policy(3), seed=9)
        slow = experiment.run(rr_policy(3), seed=9, kernel=False)
        _assert_results_equal(fast, slow)

    def test_confidence_matrix_threading(self, tiny_experiment):
        # A caller-threaded matrix must mutate identically on both
        # paths across consecutive runs (Fig. 6 personalization idiom).
        base = tiny_experiment.bundle.confidence_matrix
        fast_matrix = base.copy(adaptation_alpha=base.adaptation_alpha)
        slow_matrix = base.copy(adaptation_alpha=base.adaptation_alpha)
        spec = origin_policy(3)
        for seed in (3, 4):
            fast = tiny_experiment.run(spec, seed=seed, confidence_matrix=fast_matrix)
            slow = tiny_experiment.run(
                spec, seed=seed, confidence_matrix=slow_matrix, kernel=False
            )
            _assert_results_equal(fast, slow)
        np.testing.assert_array_equal(fast_matrix.as_array(), slow_matrix.as_array())
        assert fast_matrix.updates == slow_matrix.updates

    def test_batch_rejects_mismatched_matrices(self, tiny_experiment):
        with pytest.raises(ConfigurationError, match="confidence_matrices"):
            run_policy_batch(
                tiny_experiment, GRID, 3, confidence_matrices=[None]
            )


@pytest.fixture(scope="module")
def pamap2_experiment():
    """A micro PAMAP2 deployment (second dataset of the identity gate)."""
    config = TrainingConfig(
        epochs=2,
        batch_size=16,
        early_stopping_patience=2,
        finetune_epochs=1,
        final_finetune_epochs=1,
        finetune_every=8,
    )
    dataset = make_pamap2(
        seed=7,
        train_windows_per_activity=8,
        val_windows_per_activity=5,
        test_windows_per_activity=5,
        n_train_subjects=2,
        n_eval_subjects=1,
    )
    bundle = TrainedSensorBundle.train(dataset, budget_j=160e-6, seed=4, config=config)
    return HARExperiment(dataset, bundle, config=SimulationConfig(n_windows=40), seed=2)


class TestPamap2Identity:
    def test_batch_matches_scalar(self, pamap2_experiment):
        specs = [rr_policy(3), origin_policy(6)]
        batch = run_policy_batch(pamap2_experiment, specs, 11)
        for spec, fast in zip(specs, batch):
            slow = pamap2_experiment.run(spec, seed=11, kernel=False)
            _assert_results_equal(fast, slow)


# ---------------------------------------------------------------------------
# sweep integration: batched path, parallel workers, scalar fallback
# ---------------------------------------------------------------------------


SWEEP_GRID = [rr_policy(3), origin_policy(3)]


class TestSweepKernelPath:
    def test_sequential_batch_matches_scalar_sweep(self, tiny_experiment):
        fast = PolicySweep(tiny_experiment, n_seeds=2).run(SWEEP_GRID, workers=1)
        slow = PolicySweep(tiny_experiment, n_seeds=2, use_kernel=False).run(
            SWEEP_GRID, workers=1
        )
        _assert_sweeps_equal(fast, slow)

    def test_uncached_sweep_matches(self, tiny_experiment):
        # Without the prediction cache there is no shared material to
        # batch on; per-run kernel eligibility still applies and stays
        # identical to the forced-scalar sweep.
        fast = PolicySweep(
            tiny_experiment, n_seeds=1, use_prediction_cache=False
        ).run(SWEEP_GRID, workers=1)
        slow = PolicySweep(
            tiny_experiment, n_seeds=1, use_kernel=False
        ).run(SWEEP_GRID, workers=1)
        _assert_sweeps_equal(fast, slow)

    def test_parallel_kernel_matches_scalar(self, tiny_experiment):
        slow = PolicySweep(tiny_experiment, n_seeds=2, use_kernel=False).run(
            SWEEP_GRID, workers=1
        )
        fast = PolicySweep(tiny_experiment, n_seeds=2).run(SWEEP_GRID, workers=2)
        _assert_sweeps_equal(fast, slow)

    def test_batch_failure_falls_back_identically(self, tiny_experiment, monkeypatch):
        # A failing batch must degrade to the per-run loop with no
        # change in results.  Only multi-policy (batch) calls fail;
        # single-run kernel calls from experiment.run stay live.
        import repro.sim.kernel as kernel_mod

        real = kernel_mod.run_policy_batch

        def flaky_batch(experiment, policies, seed, **kwargs):
            if len(list(policies)) > 1:
                raise RuntimeError("synthetic batch failure")
            return real(experiment, policies, seed, **kwargs)

        monkeypatch.setattr(kernel_mod, "run_policy_batch", flaky_batch)
        fast = PolicySweep(tiny_experiment, n_seeds=2).run(SWEEP_GRID, workers=1)
        slow = PolicySweep(tiny_experiment, n_seeds=2, use_kernel=False).run(
            SWEEP_GRID, workers=1
        )
        _assert_sweeps_equal(fast, slow)

    def test_batch_failure_preserves_salvage_accounting(
        self, tiny_experiment, monkeypatch
    ):
        # Batch fails -> per-run fallback -> one policy's cells fail ->
        # salvage reports exactly those cells (per-cell semantics are
        # preserved through the fallback).
        import repro.sim.kernel as kernel_mod

        real_batch = kernel_mod.run_policy_batch

        def flaky_batch(experiment, policies, seed, **kwargs):
            if len(list(policies)) > 1:
                raise RuntimeError("synthetic batch failure")
            return real_batch(experiment, policies, seed, **kwargs)

        monkeypatch.setattr(kernel_mod, "run_policy_batch", flaky_batch)

        real_run = type(tiny_experiment).run

        def flaky_run(self, spec, **kwargs):
            if spec.name == SWEEP_GRID[0].name:
                raise RuntimeError("synthetic cell failure")
            return real_run(self, spec, **kwargs)

        monkeypatch.setattr(type(tiny_experiment), "run", flaky_run)
        result = PolicySweep(
            tiny_experiment, n_seeds=2, include_baselines=False
        ).run(SWEEP_GRID, workers=1, on_failure="salvage")
        report = result.degradation
        assert report is not None and report.failed_cells == 2
        assert SWEEP_GRID[0].name not in result.policies
        assert SWEEP_GRID[1].name in result.policies
        assert all(
            "synthetic cell failure" in cell.cause for cell in report.failed
        )
