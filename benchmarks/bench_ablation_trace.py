"""Ablation C — sensitivity to the harvested-power level.

Scales the RF trace and watches completion rate and accuracy respond:
richer harvest -> more completions -> higher accuracy, saturating once
nearly every scheduled inference completes (the paper's 'in case of
abundant energy supply, one can use a round robin policy fit for the
given EH source').
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import standard_config
from repro.core.policies import origin_policy
from repro.utils.text import format_table

SCALES = (0.5, 1.0, 2.0, 4.0)
SEEDS = (41, 42, 43)


@pytest.fixture(scope="module")
def scale_series(mhealth_exp):
    saved = mhealth_exp.config
    series = {}
    try:
        for scale in SCALES:
            mhealth_exp.config = replace(standard_config(), trace_scale=scale)
            runs = [
                mhealth_exp.run(origin_policy(12), seed=seed) for seed in SEEDS
            ]
            series[scale] = (
                float(np.mean([run.completion_rate for run in runs])),
                float(np.mean([run.event_accuracy for run in runs])),
            )
    finally:
        mhealth_exp.config = saved
    return series


def test_ablation_trace_render(scale_series, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        ["Trace scale", "Completion rate (%)", "Event accuracy (%)"],
        [
            [f"x{scale}", completion * 100, accuracy * 100]
            for scale, (completion, accuracy) in scale_series.items()
        ],
        title="=== Ablation C: harvested-power sensitivity (RR12 Origin) ===",
    )
    save_result("ablation_trace", table)


def test_ablation_completion_monotone_in_power(scale_series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    completions = [scale_series[s][0] for s in SCALES]
    assert all(b >= a - 0.02 for a, b in zip(completions, completions[1:]))


def test_ablation_low_power_hurts_completion(scale_series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert scale_series[0.5][0] < scale_series[4.0][0]


def test_ablation_accuracy_saturates(scale_series, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Going from 2x to 4x adds little once completions saturate.
    assert abs(scale_series[4.0][1] - scale_series[2.0][1]) < 0.10


def test_ablation_timing(benchmark, mhealth_exp):
    benchmark.pedantic(
        lambda: mhealth_exp.run(origin_policy(12), seed=5, n_windows=120),
        rounds=1,
        iterations=1,
    )
