"""Unit tests for repro.obs.metrics: primitives, registry, merge."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    TimerStat,
)


class TestPrimitives:
    def test_counter_inc_and_merge(self):
        a, b = Counter(), Counter()
        a.inc()
        a.inc(2.5)
        b.inc(4)
        a.merge(b)
        assert a.value == 7.5

    def test_gauge_merge_is_last_write_wins(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0
        assert a.updates == 2

    def test_gauge_merge_ignores_untouched_other(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        a.merge(b)
        assert a.value == 1.0

    def test_histogram_buckets_values(self):
        h = Histogram(bounds=(0, 10, 100))
        for value in (0, 5, 50, 500):
            h.observe(value)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.min == 0 and h.max == 500
        assert h.mean == pytest.approx(555 / 4)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(10, 0))

    def test_histogram_merge_sums_fields(self):
        a, b = Histogram(bounds=(0, 10)), Histogram(bounds=(0, 10))
        a.observe(5)
        b.observe(50)
        a.merge(b)
        assert a.counts == [0, 1, 1]
        assert a.count == 2
        assert a.min == 5 and a.max == 50

    def test_histogram_merge_rejects_different_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(0, 1)).merge(Histogram(bounds=(0, 2)))

    def test_timer_record_and_merge(self):
        a, b = TimerStat(), TimerStat()
        a.record(1.0)
        b.record(3.0)
        b.record(2.0)
        a.merge(b)
        assert a.calls == 3
        assert a.total_s == pytest.approx(6.0)
        assert a.min_s == 1.0 and a.max_s == 3.0
        assert a.mean_s == pytest.approx(2.0)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.timer("t") is reg.timer("t")
        assert reg.gauge("g") is reg.gauge("g")

    def test_convenience_mutators(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("h", 7)
        reg.set_gauge("g", 3.5)
        assert reg.counter("c").value == 2
        assert reg.histogram("h").count == 1
        assert reg.gauge("g").value == 3.5

    def test_merge_is_field_wise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.inc("only_b", 5)
        b.observe("h", 3)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.counter("only_b").value == 5
        assert a.histogram("h").count == 1

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 4)
        reg.observe("h", 12)
        reg.set_gauge("g", 2.0)
        reg.timer("t").record(0.5)
        rebuilt = MetricsRegistry.from_dict(reg.to_dict())
        assert rebuilt.to_dict() == reg.to_dict()

    def test_merge_order_independent_for_deterministic_subset(self):
        """Counters+histograms merge commutatively (the parallel-sweep
        contract); gauges deliberately do not."""
        parts = []
        for value in (1, 2, 3):
            reg = MetricsRegistry()
            reg.inc("c", value)
            reg.observe("h", value)
            reg.set_gauge("g", value)
            parts.append(reg)
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for part in parts:
            fwd.merge(part)
        for part in reversed(parts):
            rev.merge(part)
        assert fwd.deterministic_dict() == rev.deterministic_dict()
        assert fwd.gauge("g").value != rev.gauge("g").value

    def test_deterministic_dict_excludes_gauges_and_timers(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.timer("t").record(0.1)
        det = reg.deterministic_dict()
        assert set(det) == {"counters", "histograms"}

    def test_null_metrics_swallows_mutations(self):
        null = NullMetrics()
        null.inc("c")
        null.observe("h", 1)
        null.set_gauge("g", 1)
        exported = null.to_dict()
        assert exported["counters"] == {}
        assert exported["gauges"] == {}
        assert exported["histograms"] == {}
